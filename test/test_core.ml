(* Core analysis units: the per-edge dataflow, callee-saved save/restore
   detection, PSG statistics, call-site summary merging, and analysis
   behaviour on recursion, multiple entries, and unknown calls. *)

open Spike_support
open Spike_isa
open Spike_core
open Test_helpers

let regset = regset_testable

(* --- Edge_dataflow ------------------------------------------------------- *)

let test_edge_dataflow_algebra () =
  let a =
    {
      Edge_dataflow.may_use = rs [ 1 ];
      may_def = rs [ 2 ];
      must_def = rs [ 2; 3 ];
    }
  in
  let b =
    {
      Edge_dataflow.may_use = rs [ 4 ];
      may_def = rs [ 5 ];
      must_def = rs [ 3; 5 ];
    }
  in
  let j = Edge_dataflow.join a b in
  Alcotest.check regset "join may_use" (rs [ 1; 4 ]) j.Edge_dataflow.may_use;
  Alcotest.check regset "join may_def" (rs [ 2; 5 ]) j.Edge_dataflow.may_def;
  Alcotest.check regset "join must_def" (rs [ 3 ]) j.Edge_dataflow.must_def;
  (* Transfer: IN = UBD ∪ (OUT - DEF); DEFs accumulate. *)
  let out =
    {
      Edge_dataflow.may_use = rs [ 1; 2 ];
      may_def = rs [ 3 ];
      must_def = rs [ 3 ];
    }
  in
  let inn = Edge_dataflow.apply_block ~def:(rs [ 2; 4 ]) ~ubd:(rs [ 5 ]) out in
  Alcotest.check regset "in may_use" (rs [ 1; 5 ]) inn.Edge_dataflow.may_use;
  Alcotest.check regset "in may_def" (rs [ 2; 3; 4 ]) inn.Edge_dataflow.may_def;
  Alcotest.check regset "in must_def" (rs [ 2; 3; 4 ]) inn.Edge_dataflow.must_def

(* A loop inside a flow-summary edge subgraph: Figure 6 must converge. *)
let test_edge_dataflow_loop () =
  let g =
    routine "g"
      [
        (Some "head", use r1);
        (None, li r2 1);
        (None, bne r2 "head");
        (None, ret);
      ]
  in
  let cfg = Spike_cfg.Cfg.build g in
  let defuse = Spike_cfg.Defuse.compute cfg in
  let rpo = Spike_cfg.Cfg.reverse_postorder cfg in
  let rpo_position = Array.make (Spike_cfg.Cfg.block_count cfg) 0 in
  Array.iteri (fun i b -> rpo_position.(b) <- i) rpo;
  let blocks = Array.init (Spike_cfg.Cfg.block_count cfg) Fun.id in
  let exit_block = List.hd (Spike_cfg.Cfg.exit_blocks cfg) in
  let sol =
    Edge_dataflow.solve ~cfg ~defuse ~rpo_position ~blocks ~sink:exit_block ()
  in
  let at_entry = Edge_dataflow.in_of sol 0 in
  check_restricted "loop may_use" ~over:(rs [ r1; r2 ])
    (rs [ r1 ])
    at_entry.Edge_dataflow.may_use;
  check_restricted "loop must_def" ~over:(rs [ r1; r2 ])
    (rs [ r2 ])
    at_entry.Edge_dataflow.must_def

(* --- Callee_saved --------------------------------------------------------- *)

let frame_push n = (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -n })
let frame_pop n = (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = n })
let save r off = (None, store r ~base:Reg.sp ~offset:off)
let restore r off = (None, load r ~base:Reg.sp ~offset:off)

let detected rows =
  let r = routine "f" rows in
  Callee_saved.saved_and_restored r (Spike_cfg.Cfg.build r)

let test_callee_saved_positive () =
  let got =
    detected
      [
        frame_push 16;
        save Reg.s0 0;
        save Reg.s1 8;
        (None, li Reg.s0 1);
        (None, li Reg.s1 2);
        restore Reg.s0 0;
        restore Reg.s1 8;
        frame_pop 16;
        (None, ret);
      ]
  in
  Alcotest.check regset "s0 and s1 detected" (rs [ Reg.s0; Reg.s1 ]) got;
  (* Without any frame adjustment at all. *)
  let got =
    detected [ save Reg.s3 0; (None, li Reg.s3 9); restore Reg.s3 0; (None, ret) ]
  in
  Alcotest.check regset "frameless idiom" (rs [ Reg.s3 ]) got

let test_callee_saved_negative () =
  let check_empty msg rows = Alcotest.check regset msg Regset.empty (detected rows) in
  check_empty "missing restore"
    [ frame_push 16; save Reg.s0 0; (None, li Reg.s0 1); frame_pop 16; (None, ret) ];
  check_empty "restore from wrong slot"
    [ frame_push 16; save Reg.s0 0; restore Reg.s0 8; frame_pop 16; (None, ret) ];
  check_empty "redefined after restore"
    [
      frame_push 16; save Reg.s0 0; restore Reg.s0 0; (None, li Reg.s0 3); frame_pop 16;
      (None, ret);
    ];
  check_empty "slot stored twice"
    [
      frame_push 16;
      save Reg.s0 0;
      (None, store r1 ~base:Reg.sp ~offset:0);
      restore Reg.s0 0;
      frame_pop 16;
      (None, ret);
    ];
  check_empty "saved after definition"
    [ frame_push 16; (None, li Reg.s0 1); save Reg.s0 0; restore Reg.s0 0; frame_pop 16;
      (None, ret) ];
  check_empty "unbalanced frame"
    [ frame_push 16; save Reg.s0 0; restore Reg.s0 0; frame_pop 8; (None, ret) ];
  check_empty "caller-saved register"
    [ frame_push 16; save Reg.t0 0; restore Reg.t0 0; frame_pop 16; (None, ret) ];
  (* An unknown jump can leave without restoring. *)
  check_empty "unknown jump"
    [
      frame_push 16;
      save Reg.s0 0;
      (None, beq r1 "out");
      restore Reg.s0 0;
      frame_pop 16;
      (None, ret);
      (Some "out", Insn.Jump_unknown { target = r2 });
    ]

let test_callee_saved_multi_exit () =
  let got =
    detected
      [
        frame_push 16;
        save Reg.s0 0;
        (None, li Reg.s0 1);
        (None, beq r1 "second");
        restore Reg.s0 0;
        frame_pop 16;
        (None, ret);
        (Some "second", load Reg.s0 ~base:Reg.sp ~offset:0);
        frame_pop 16;
        (None, ret);
      ]
  in
  Alcotest.check regset "restored at both exits" (rs [ Reg.s0 ]) got;
  (* One exit missing the restore disqualifies. *)
  let got =
    detected
      [
        frame_push 16;
        save Reg.s0 0;
        (None, beq r1 "second");
        restore Reg.s0 0;
        frame_pop 16;
        (None, ret);
        (Some "second", Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
        (None, ret);
      ]
  in
  Alcotest.check regset "one bad exit disqualifies" Regset.empty got

let test_callee_saved_sites () =
  let r =
    routine "f"
      [
        frame_push 16;
        save Reg.s2 8;
        (None, li Reg.s2 1);
        restore Reg.s2 8;
        frame_pop 16;
        (None, ret);
      ]
  in
  match Callee_saved.sites r (Spike_cfg.Cfg.build r) with
  | [ site ] ->
      Alcotest.(check int) "reg" Reg.s2 site.Callee_saved.reg;
      Alcotest.(check int) "save at 1" 1 site.Callee_saved.save_index;
      Alcotest.(check (list int)) "restore at 3" [ 3 ] site.Callee_saved.restore_indexes
  | sites -> Alcotest.failf "expected one site, got %d" (List.length sites)

(* --- §3.4 effect on summaries --------------------------------------------- *)

let test_filter_in_summaries () =
  let callee =
    routine "callee"
      [
        frame_push 16;
        save Reg.s0 0;
        (None, li Reg.s0 7);
        (None, store Reg.s0 ~base:Reg.sp ~offset:8);
        restore Reg.s0 0;
        frame_pop 16;
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "callee"); (None, ret) ] in
  let analysis = Analysis.run (program ~main:"main" [ main; callee ]) in
  let c = (Option.get (Analysis.summary_of analysis "callee")).Summary.call_class in
  Alcotest.(check bool) "s0 not call-killed" false (Regset.mem Reg.s0 c.Summary.killed);
  Alcotest.(check bool) "s0 not call-used" false (Regset.mem Reg.s0 c.Summary.used);
  Alcotest.(check bool) "s0 not call-defined" false
    (Regset.mem Reg.s0 c.Summary.defined)

(* --- Call-site summary merging -------------------------------------------- *)

let test_site_class_merging () =
  (* An indirect call that may reach f (defines t0, uses a0) or g (defines
     t1): used = union, defined = intersection, killed = union. *)
  let f = routine "f" [ (None, use Reg.a0); (None, li Reg.t0 1); (None, li Reg.v0 1); (None, ret) ] in
  let g = routine "g" [ (None, li Reg.t1 2); (None, li Reg.v0 2); (None, ret) ] in
  let main =
    routine "main"
      [
        (None, li Reg.pv 0);
        (None, call_indirect ~targets:[ "f"; "g" ] Reg.pv);
        (None, ret);
      ]
  in
  let analysis = Analysis.run (program ~main:"main" [ main; f; g ]) in
  let info = analysis.Analysis.psg.Psg.calls.(0) in
  let site = Analysis.site_class analysis info in
  Alcotest.(check bool) "a0 used (from f)" true (Regset.mem Reg.a0 site.Summary.used);
  Alcotest.(check bool) "v0 defined (both)" true (Regset.mem Reg.v0 site.Summary.defined);
  Alcotest.(check bool) "t0 not must-defined (only f)" false
    (Regset.mem Reg.t0 site.Summary.defined);
  Alcotest.(check bool) "t0 killed" true (Regset.mem Reg.t0 site.Summary.killed);
  Alcotest.(check bool) "t1 killed" true (Regset.mem Reg.t1 site.Summary.killed)

let test_unknown_site_class () =
  let main =
    routine "main" [ (None, li Reg.pv 0); (None, call_indirect Reg.pv); (None, ret) ]
  in
  let analysis = Analysis.run (program ~main:"main" [ main ]) in
  let info = analysis.Analysis.psg.Psg.calls.(0) in
  let site = Analysis.site_class analysis info in
  Alcotest.check regset "assumed used" Calling_standard.unknown_call_used
    site.Summary.used;
  Alcotest.check regset "assumed defined" Calling_standard.unknown_call_defined
    site.Summary.defined;
  Alcotest.check regset "assumed killed" Calling_standard.unknown_call_killed
    site.Summary.killed

(* --- Recursion ------------------------------------------------------------ *)

let test_recursion_converges () =
  (* Mutually recursive even/odd with a conditional escape. *)
  let even =
    routine "even"
      [
        (None, beq r1 "base");
        (None, call "odd");
        (None, ret);
        (Some "base", li r2 1);
        (None, ret);
      ]
  in
  let odd =
    routine "odd"
      [
        (None, beq r1 "base");
        (None, call "even");
        (None, ret);
        (Some "base", li r3 1);
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "even"); (None, ret) ] in
  let analysis = Analysis.run (program ~main:"main" [ main; even; odd ]) in
  let even_class = (Option.get (Analysis.summary_of analysis "even")).Summary.call_class in
  check_restricted "even may-kill r2 r3" ~over:(rs [ r1; r2; r3 ])
    (rs [ r2; r3 ])
    even_class.Summary.killed;
  check_restricted "even uses r1" ~over:(rs [ r1; r2; r3 ])
    (rs [ r1 ])
    even_class.Summary.used;
  (* Nothing is must-defined: each routine can return from its base case
     defining only one of r2/r3. *)
  check_restricted "even must-def" ~over:(rs [ r2; r3 ]) Regset.empty
    even_class.Summary.defined;
  (* Agreement with the reference holds on recursion too. *)
  let reference = Spike_reference.Reference.run analysis.Analysis.program in
  Array.iteri
    (fun r (c : Summary.call_class) ->
      let d = reference.Spike_reference.Reference.call_classes.(r) in
      Alcotest.check regset "recursive used" d.Summary.used c.Summary.used;
      Alcotest.check regset "recursive defined" d.Summary.defined c.Summary.defined;
      Alcotest.check regset "recursive killed" d.Summary.killed c.Summary.killed)
    analysis.Analysis.call_classes

let test_deep_call_chain () =
  (* A 100_000-deep linear call chain.  The callee-first traversal and
     the call-graph SCC pass walk one DFS path the full depth of the
     program here — a recursive implementation would need a native stack
     frame per routine, so both are required to be iterative. *)
  let depth = 100_000 in
  let name i = Printf.sprintf "f%d" i in
  let routines =
    List.init depth (fun i ->
        if i = depth - 1 then routine (name i) [ (None, li r2 1); (None, ret) ]
        else routine (name i) [ (None, call (name (i + 1))); (None, ret) ])
  in
  let p = program ~main:(name 0) routines in
  let a = Analysis.run p in
  (* The leaf's definition propagates the whole way up as a may-kill. *)
  let c = (Option.get (Analysis.summary_of a (name 0))).Summary.call_class in
  check_restricted "chain killed" ~over:(rs [ r2 ]) (rs [ r2 ]) c.Summary.killed;
  let order = Psg.callee_first_order a.Analysis.psg in
  Alcotest.(check int) "traversal covers every routine" depth (List.length order);
  let scc = Psg.call_scc a.Analysis.psg in
  Alcotest.(check int) "chain is acyclic" depth scc.Scc.count

let test_fifo_scc_schedules_agree () =
  (* The FIFO worklist and the SCC-condensation schedule must reach the
     same (unique) fixpoint — same summaries, call classes and PSG sets —
     on straight-line call structure and on recursion knots alike. *)
  let even =
    routine "even"
      [
        (None, beq r1 "base");
        (None, call "odd");
        (None, ret);
        (Some "base", li r2 1);
        (None, ret);
      ]
  in
  let odd =
    routine "odd"
      [
        (None, beq r1 "base");
        (None, call "even");
        (None, ret);
        (Some "base", li r3 1);
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "even"); (None, ret) ] in
  List.iter
    (fun (label, p) ->
      let fifo = Analysis.run ~phase_sched:`Fifo p in
      let scc = Analysis.run ~phase_sched:`Scc p in
      Alcotest.(check string)
        (label ^ ": identical PSG solutions")
        (Format.asprintf "%a" Psg.pp fifo.Analysis.psg)
        (Format.asprintf "%a" Psg.pp scc.Analysis.psg);
      Array.iteri
        (fun r (c : Summary.call_class) ->
          let d = scc.Analysis.call_classes.(r) in
          Alcotest.check regset (label ^ ": used") c.Summary.used d.Summary.used;
          Alcotest.check regset (label ^ ": defined") c.Summary.defined
            d.Summary.defined;
          Alcotest.check regset (label ^ ": killed") c.Summary.killed
            d.Summary.killed)
        fifo.Analysis.call_classes)
    [
      ("figure2", figure2_program ());
      ("mutual recursion", program ~main:"main" [ main; even; odd ]);
    ]

(* --- Analysis determinism / misc ------------------------------------------ *)

let test_analysis_deterministic () =
  let p = figure2_program () in
  let a = Analysis.run p and b = Analysis.run p in
  Array.iteri
    (fun r (c : Summary.call_class) ->
      let d = b.Analysis.call_classes.(r) in
      Alcotest.check regset "used" d.Summary.used c.Summary.used;
      Alcotest.check regset "defined" d.Summary.defined c.Summary.defined;
      Alcotest.check regset "killed" d.Summary.killed c.Summary.killed)
    a.Analysis.call_classes;
  Alcotest.(check int) "same phase1 iterations" b.Analysis.phase1_iterations
    a.Analysis.phase1_iterations

let test_psg_stats () =
  let analysis = Analysis.run (figure2_program ()) in
  let stats = Psg_stats.of_psg analysis.Analysis.psg in
  Alcotest.(check int) "entries = routines" 4 stats.Psg_stats.entry_nodes;
  Alcotest.(check int) "calls" 4 stats.Psg_stats.call_nodes;
  Alcotest.(check int) "returns" 4 stats.Psg_stats.return_nodes;
  Alcotest.(check int) "call-return edges" 4 stats.Psg_stats.call_return_edges;
  Alcotest.(check int) "total nodes" (Psg.node_count analysis.Analysis.psg)
    stats.Psg_stats.nodes;
  Alcotest.(check int) "edge split"
    (stats.Psg_stats.flow_edges + stats.Psg_stats.call_return_edges)
    stats.Psg_stats.edges

let test_multi_entry_summaries () =
  let two =
    routine ~entries:[ "two$a"; "two$b" ] "two"
      [ (Some "two$a", li r1 1); (Some "two$b", li r2 2); (None, ret) ]
  in
  let main = routine "main" [ (None, call "two"); (None, ret) ] in
  let analysis = Analysis.run (program ~main:"main" [ main; two ]) in
  let s = Option.get (Analysis.summary_of analysis "two") in
  Alcotest.(check int) "two live-at-entry sets" 2 (List.length s.Summary.live_at_entry);
  (* The primary entry sees both defs, the secondary only the second. *)
  let c = s.Summary.call_class in
  check_restricted "primary must-def" ~over:(rs [ r1; r2 ]) (rs [ r1; r2 ])
    c.Summary.defined;
  let secondary = List.nth analysis.Analysis.psg.Psg.entry_nodes.(1) 1 in
  let node = analysis.Analysis.psg.Psg.nodes.(secondary) in
  check_restricted "secondary must-def" ~over:(rs [ r1; r2 ]) (rs [ r2 ]) node.Psg.must_def

let () =
  Alcotest.run "core-units"
    [
      ( "edge-dataflow",
        [
          Alcotest.test_case "algebra" `Quick test_edge_dataflow_algebra;
          Alcotest.test_case "loop convergence" `Quick test_edge_dataflow_loop;
        ] );
      ( "callee-saved",
        [
          Alcotest.test_case "positive" `Quick test_callee_saved_positive;
          Alcotest.test_case "negative" `Quick test_callee_saved_negative;
          Alcotest.test_case "multi-exit" `Quick test_callee_saved_multi_exit;
          Alcotest.test_case "sites" `Quick test_callee_saved_sites;
          Alcotest.test_case "filter in summaries" `Quick test_filter_in_summaries;
        ] );
      ( "call-sites",
        [
          Alcotest.test_case "target merging" `Quick test_site_class_merging;
          Alcotest.test_case "unknown assumption" `Quick test_unknown_site_class;
        ] );
      ( "fixpoints",
        [
          Alcotest.test_case "recursion" `Quick test_recursion_converges;
          Alcotest.test_case "deep call chain" `Quick test_deep_call_chain;
          Alcotest.test_case "FIFO vs SCC schedule" `Quick
            test_fifo_scc_schedules_agree;
          Alcotest.test_case "determinism" `Quick test_analysis_deterministic;
        ] );
      ( "structure",
        [
          Alcotest.test_case "psg stats" `Quick test_psg_stats;
          Alcotest.test_case "multiple entries" `Quick test_multi_entry_summaries;
        ] );
    ]
