(* Determinism of the parallel analysis front-end.

   The per-routine stages (CFG build, initialization, PSG local pass) run
   on a domain pool, but their results must not depend on the parallelism
   degree: [Analysis.run ~jobs:k] must produce bit-identical summaries,
   call classes, PSG statistics — indeed a bit-identical PSG — and the
   same phase iteration counts for every k.  This suite pins that on the
   synthetic workloads and the checked-in example program. *)

open Spike_core
open Spike_synth

let jobs_variants = [ 2; 4; 7 ]

let render_summaries (a : Analysis.t) =
  Format.asprintf "%a"
    (fun ppf summaries ->
      Array.iter (fun s -> Format.fprintf ppf "%a@." Summary.pp s) summaries)
    a.Analysis.summaries

let render_call_classes (a : Analysis.t) =
  Format.asprintf "%a"
    (fun ppf classes ->
      Array.iter
        (fun (c : Summary.call_class) ->
          Format.fprintf ppf "u=%a d=%a k=%a@." (Spike_support.Regset.pp ?name:None)
            c.Summary.used
            (Spike_support.Regset.pp ?name:None)
            c.Summary.defined
            (Spike_support.Regset.pp ?name:None)
            c.Summary.killed)
        classes)
    a.Analysis.call_classes

let render_psg_stats (a : Analysis.t) =
  Format.asprintf "%a" Psg_stats.pp (Psg_stats.of_psg a.Analysis.psg)

let render_psg (a : Analysis.t) = Format.asprintf "%a" Psg.pp a.Analysis.psg

let check_identical ?branch_nodes ?callee_saved_filter name program =
  let run jobs = Analysis.run ?branch_nodes ?callee_saved_filter ~jobs program in
  let base = run 1 in
  List.iter
    (fun jobs ->
      let tag what = Printf.sprintf "%s: %s at jobs=%d" name what jobs in
      let a = run jobs in
      Alcotest.(check int) (tag "jobs recorded") jobs a.Analysis.jobs;
      Alcotest.(check string)
        (tag "summaries")
        (render_summaries base) (render_summaries a);
      Alcotest.(check string)
        (tag "call classes")
        (render_call_classes base) (render_call_classes a);
      Alcotest.(check string)
        (tag "PSG stats")
        (render_psg_stats base) (render_psg_stats a);
      Alcotest.(check string) (tag "PSG dump") (render_psg base) (render_psg a);
      Alcotest.(check int)
        (tag "phase 1 iterations")
        base.Analysis.phase1_iterations a.Analysis.phase1_iterations;
      Alcotest.(check int)
        (tag "phase 2 iterations")
        base.Analysis.phase2_iterations a.Analysis.phase2_iterations)
    jobs_variants

let synth_program ~seed ~routines ~target_instructions =
  Generator.generate
    { Params.default with Params.seed; routines; target_instructions }

let test_synth_workloads () =
  List.iter
    (fun seed ->
      let program = synth_program ~seed ~routines:40 ~target_instructions:2500 in
      check_identical (Printf.sprintf "synth seed %d" seed) program)
    [ 1; 2; 3 ]

let test_calibrated_workload () =
  match Calibrate.find "gcc" with
  | None -> Alcotest.fail "gcc calibration row missing"
  | Some row ->
      let program = Generator.generate (Calibrate.params_of ~scale:0.02 row) in
      check_identical "calibrated gcc @ 2%" program

let test_config_variants () =
  let program = synth_program ~seed:11 ~routines:25 ~target_instructions:1500 in
  check_identical ~branch_nodes:false "without branch nodes" program;
  check_identical ~callee_saved_filter:false "without callee-saved filter" program

let fact_path =
  if Sys.file_exists "../examples/fact.s" then "../examples/fact.s"
  else "examples/fact.s"

let test_example_program () =
  let program = Spike_asm.Parser.program_of_file fact_path in
  check_identical "examples/fact.s" program

let test_fifo_serial_vs_scc_parallel () =
  (* The strongest cross-check: the sequential FIFO baseline against the
     SCC schedule running its phase fixpoints on 4 domains.  Same unique
     fixpoint, so bit-identical summaries, call classes and PSG — even
     though neither the schedule nor the executor is shared. *)
  List.iter
    (fun (name, program) ->
      let fifo = Analysis.run ~jobs:1 ~phase_sched:`Fifo program in
      let scc4 = Analysis.run ~jobs:4 ~phase_sched:`Scc program in
      let tag what = Printf.sprintf "%s: %s (FIFO j1 vs SCC j4)" name what in
      Alcotest.(check string)
        (tag "summaries")
        (render_summaries fifo) (render_summaries scc4);
      Alcotest.(check string)
        (tag "call classes")
        (render_call_classes fifo) (render_call_classes scc4);
      Alcotest.(check string) (tag "PSG dump") (render_psg fifo) (render_psg scc4))
    [
      ("synth seed 5", synth_program ~seed:5 ~routines:60 ~target_instructions:3000);
      ("examples/fact.s", Spike_asm.Parser.program_of_file fact_path);
    ]

let () =
  Alcotest.run "parallel-determinism"
    [
      ( "jobs-invariance",
        [
          Alcotest.test_case "synthetic workloads" `Quick test_synth_workloads;
          Alcotest.test_case "calibrated gcc" `Quick test_calibrated_workload;
          Alcotest.test_case "config variants" `Quick test_config_variants;
          Alcotest.test_case "example program" `Quick test_example_program;
          Alcotest.test_case "FIFO serial vs SCC parallel" `Quick
            test_fifo_serial_vs_scc_parallel;
        ] );
    ]
