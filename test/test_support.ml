(* Unit and property tests for the support library: register sets, PRNG,
   vectors, worksets, timers. *)

open Spike_support

let regset_testable = Alcotest.testable (Regset.pp ?name:None) Regset.equal

(* --- Regset ------------------------------------------------------------ *)

let arbitrary_regset =
  QCheck.map
    (fun (lo, hi) -> Regset.of_bits ~lo ~hi)
    (QCheck.pair QCheck.int QCheck.int)

let qcheck_regset name law = QCheck.Test.make ~name ~count:500 arbitrary_regset law

let qcheck_regset2 name law =
  QCheck.Test.make ~name ~count:500 (QCheck.pair arbitrary_regset arbitrary_regset) law

let qcheck_regset3 name law =
  QCheck.Test.make ~name ~count:500
    (QCheck.triple arbitrary_regset arbitrary_regset arbitrary_regset)
    law

let regset_properties =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_regset2 "union commutative" (fun (a, b) ->
          Regset.equal (Regset.union a b) (Regset.union b a));
      qcheck_regset2 "inter commutative" (fun (a, b) ->
          Regset.equal (Regset.inter a b) (Regset.inter b a));
      qcheck_regset3 "union associative" (fun (a, b, c) ->
          Regset.equal
            (Regset.union a (Regset.union b c))
            (Regset.union (Regset.union a b) c));
      qcheck_regset3 "distributivity" (fun (a, b, c) ->
          Regset.equal
            (Regset.inter a (Regset.union b c))
            (Regset.union (Regset.inter a b) (Regset.inter a c)));
      qcheck_regset "complement involutive" (fun a ->
          Regset.equal a (Regset.complement (Regset.complement a)));
      qcheck_regset "de morgan" (fun a ->
          Regset.equal
            (Regset.complement a)
            (Regset.diff Regset.full a));
      qcheck_regset2 "diff as inter-complement" (fun (a, b) ->
          Regset.equal (Regset.diff a b) (Regset.inter a (Regset.complement b)));
      qcheck_regset2 "subset iff union absorbs" (fun (a, b) ->
          Regset.subset a b = Regset.equal (Regset.union a b) b);
      qcheck_regset2 "disjoint iff empty inter" (fun (a, b) ->
          Regset.disjoint a b = Regset.is_empty (Regset.inter a b));
      qcheck_regset "to_list/of_list roundtrip" (fun a ->
          Regset.equal a (Regset.of_list (Regset.to_list a)));
      qcheck_regset "cardinal = length of to_list" (fun a ->
          Regset.cardinal a = List.length (Regset.to_list a));
      qcheck_regset "bits roundtrip" (fun a ->
          Regset.equal a
            (Regset.of_bits ~lo:(Regset.lo_bits a) ~hi:(Regset.hi_bits a)));
      qcheck_regset2 "compare consistent with equal" (fun (a, b) ->
          Regset.compare a b = 0 = Regset.equal a b);
    ]

let test_regset_basics () =
  Alcotest.(check int) "bits" 64 Regset.bits;
  Alcotest.(check bool) "empty is empty" true (Regset.is_empty Regset.empty);
  Alcotest.(check int) "full cardinal" 64 (Regset.cardinal Regset.full);
  let s = Regset.of_list [ 0; 31; 32; 63 ] in
  Alcotest.(check bool) "mem 0" true (Regset.mem 0 s);
  Alcotest.(check bool) "mem 63" true (Regset.mem 63 s);
  Alcotest.(check bool) "not mem 1" false (Regset.mem 1 s);
  Alcotest.(check (list int)) "sorted members" [ 0; 31; 32; 63 ] (Regset.to_list s);
  Alcotest.(check regset_testable) "remove" (Regset.of_list [ 0; 31; 63 ])
    (Regset.remove 32 s);
  Alcotest.(check (option int)) "choose" (Some 0) (Regset.choose s);
  Alcotest.(check (option int)) "choose empty" None (Regset.choose Regset.empty);
  Alcotest.(check regset_testable) "filter"
    (Regset.of_list [ 32; 63 ])
    (Regset.filter (fun r -> r >= 32) s);
  Alcotest.check_raises "out of range" (Invalid_argument "Regset: register 64 out of range")
    (fun () -> ignore (Regset.singleton 64));
  Alcotest.(check string) "printing" "{r1, r33}"
    (Regset.to_string (Regset.of_list [ 1; 33 ]))

(* --- Prng --------------------------------------------------------------- *)

let test_prng () =
  let g1 = Prng.create 7 and g2 = Prng.create 7 in
  let a = List.init 100 (fun _ -> Prng.next g1) in
  let b = List.init 100 (fun _ -> Prng.next g2) in
  Alcotest.(check (list int)) "deterministic" a b;
  let g3 = Prng.create 8 in
  let c = List.init 100 (fun _ -> Prng.next g3) in
  if a = c then Alcotest.fail "different seeds should differ";
  let g = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of bounds: %d" v;
    let w = Prng.int_in g 5 9 in
    if w < 5 || w > 9 then Alcotest.failf "int_in out of bounds: %d" w;
    let f = Prng.float g 2.0 in
    if f < 0.0 || f >= 2.0 then Alcotest.failf "float out of bounds: %f" f
  done;
  (* A split stream differs from its parent's continuation. *)
  let parent = Prng.create 99 in
  let child = Prng.split parent in
  let xs = List.init 50 (fun _ -> Prng.next parent) in
  let ys = List.init 50 (fun _ -> Prng.next child) in
  if xs = ys then Alcotest.fail "split stream should be independent";
  (* Shuffle permutes. *)
  let a = Array.init 50 Fun.id in
  Prng.shuffle (Prng.create 3) a;
  Alcotest.(check (list int)) "shuffle is a permutation" (List.init 50 Fun.id)
    (List.sort Int.compare (Array.to_list a))

let test_prng_chance_balance () =
  let g = Prng.create 5 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.chance g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  if rate < 0.27 || rate > 0.33 then Alcotest.failf "chance 0.3 measured %.3f" rate

(* --- Vec ---------------------------------------------------------------- *)

let test_vec () =
  let v = Vec.create () in
  Alcotest.(check bool) "fresh empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check (option int)) "last" (Some 99) (Vec.last v);
  Alcotest.(check (option int)) "pop" (Some 99) (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Alcotest.check_raises "bounds" (Invalid_argument "Vec: index 99 out of bounds (len 99)")
    (fun () -> ignore (Vec.get v 99));
  let l = [ 5; 6; 7 ] in
  Alcotest.(check (list int)) "of_list/to_list" l (Vec.to_list (Vec.of_list l));
  Alcotest.(check (list int)) "map" [ 10; 12; 14 ]
    (Vec.to_list (Vec.map (fun x -> 2 * x) (Vec.of_list l)));
  Alcotest.(check int) "fold" 18 (Vec.fold (fun acc x -> acc + x) 0 (Vec.of_list l));
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 6) (Vec.of_list l));
  Vec.clear v;
  Alcotest.(check bool) "clear" true (Vec.is_empty v)

(* --- Workset ------------------------------------------------------------ *)

let test_workset () =
  let w = Workset.create 10 in
  Alcotest.(check bool) "fresh empty" true (Workset.is_empty w);
  Workset.push w 3;
  Workset.push w 7;
  Workset.push w 3;
  (* deduplicated *)
  Alcotest.(check int) "dedup length" 2 (Workset.length w);
  Alcotest.(check int) "fifo 1" 3 (Workset.pop w);
  Workset.push w 3;
  (* re-push after pop is allowed *)
  Alcotest.(check int) "fifo 2" 7 (Workset.pop w);
  Alcotest.(check int) "fifo 3" 3 (Workset.pop w);
  Alcotest.check_raises "pop empty" (Invalid_argument "Workset.pop: empty") (fun () ->
      ignore (Workset.pop w));
  (* Wraparound: run many cycles through a small ring. *)
  let w = Workset.create 4 in
  for round = 0 to 99 do
    Workset.push w (round mod 4);
    Workset.push w ((round + 1) mod 4);
    ignore (Workset.pop w);
    ignore (Workset.pop w)
  done;
  Alcotest.(check bool) "drained" true (Workset.is_empty w)

let test_workset_bounds () =
  let w = Workset.create 4 in
  Alcotest.check_raises "push above capacity"
    (Invalid_argument "Workset.push: id 4 out of range [0, 4)") (fun () ->
      Workset.push w 4);
  Alcotest.check_raises "push negative"
    (Invalid_argument "Workset.push: id -1 out of range [0, 4)") (fun () ->
      Workset.push w (-1));
  (* The failed pushes must not have corrupted the set. *)
  Workset.push w 3;
  Alcotest.(check int) "still usable" 3 (Workset.pop w)

let test_workset_wraparound_requeue () =
  (* Drive the write cursor all the way around a full-capacity ring while
     re-queueing each popped id immediately: the head/tail wrap must keep
     FIFO order and the membership bitmap exact. *)
  let n = 5 in
  let w = Workset.create n in
  for id = 0 to n - 1 do
    Workset.push w id
  done;
  for round = 0 to (7 * n) - 1 do
    let id = Workset.pop w in
    Alcotest.(check int)
      (Printf.sprintf "fifo cycle at round %d" round)
      (round mod n) id;
    (* push-after-pop: the id was cleared from the bitmap by the pop, so
       the re-queue must succeed (and land at the tail). *)
    Workset.push w id;
    Alcotest.(check int) "ring stays full" n (Workset.length w)
  done;
  (* A queued id must still be rejected as a duplicate after wrapping. *)
  Workset.push w 2;
  Alcotest.(check int) "duplicate rejected after wrap" n (Workset.length w)

let test_workset_capacity_clear () =
  let w = Workset.create 8 in
  Alcotest.(check int) "capacity" 8 (Workset.capacity w);
  Workset.push w 1;
  Workset.push w 5;
  Workset.push w 7;
  Workset.clear w;
  Alcotest.(check bool) "clear empties" true (Workset.is_empty w);
  Alcotest.(check int) "length after clear" 0 (Workset.length w);
  (* clear must also reset membership: the cleared ids can re-enter. *)
  Workset.push w 5;
  Workset.push w 1;
  Alcotest.(check int) "re-push after clear" 2 (Workset.length w);
  Alcotest.(check int) "fifo after clear" 5 (Workset.pop w);
  Alcotest.(check int) "fifo after clear 2" 1 (Workset.pop w);
  (* Clearing an empty set is a no-op. *)
  Workset.clear w;
  Alcotest.(check bool) "clear empty" true (Workset.is_empty w)

(* --- Scc ----------------------------------------------------------------- *)

let arbitrary_digraph =
  let open QCheck in
  let gen =
    Gen.(
      int_range 1 24 >>= fun n ->
      list_size (int_range 0 (3 * n))
        (pair (int_bound (n - 1)) (int_bound (n - 1)))
      >>= fun edges ->
      let succs = Array.make n [] in
      List.iter (fun (u, v) -> succs.(u) <- v :: succs.(u)) edges;
      return (Array.map Array.of_list succs))
  in
  let print succs =
    String.concat "; "
      (Array.to_list
         (Array.mapi
            (fun u ds ->
              Printf.sprintf "%d->[%s]" u
                (String.concat ","
                   (Array.to_list (Array.map string_of_int ds))))
            succs))
  in
  QCheck.make ~print gen

(* Transitive reachability by DFS from every vertex — the specification the
   linear-time implementation is checked against (graphs are small). *)
let reachability succs =
  let n = Array.length succs in
  let r = Array.make_matrix n n false in
  for s = 0 to n - 1 do
    r.(s).(s) <- true;
    let stack = ref [ s ] in
    while !stack <> [] do
      let u = List.hd !stack in
      stack := List.tl !stack;
      Array.iter
        (fun v ->
          if not r.(s).(v) then begin
            r.(s).(v) <- true;
            stack := v :: !stack
          end)
        succs.(u)
    done
  done;
  r

let qcheck_scc name law =
  QCheck.Test.make ~name ~count:300 arbitrary_digraph law

let scc_properties =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_scc "components = mutual reachability classes" (fun succs ->
          let scc = Scc.compute ~succs in
          let r = reachability succs in
          let n = Array.length succs in
          let ok = ref true in
          for u = 0 to n - 1 do
            for v = 0 to n - 1 do
              let same = scc.Scc.comp_of.(u) = scc.Scc.comp_of.(v) in
              if same <> (r.(u).(v) && r.(v).(u)) then ok := false
            done
          done;
          !ok);
      qcheck_scc "members partition the vertices" (fun succs ->
          let scc = Scc.compute ~succs in
          let n = Array.length succs in
          let seen = Array.make n 0 in
          Array.iteri
            (fun c ms ->
              Array.iter
                (fun v ->
                  seen.(v) <- seen.(v) + 1;
                  if scc.Scc.comp_of.(v) <> c then raise Exit)
                ms)
            scc.Scc.members;
          Array.for_all (fun k -> k = 1) seen);
      qcheck_scc "numbering is reverse topological" (fun succs ->
          (* Every edge crossing components points at a smaller component:
             the condensation is acyclic and ascending order is a
             topological (successors-first) order. *)
          let scc = Scc.compute ~succs in
          let ok = ref true in
          Array.iteri
            (fun u ds ->
              Array.iter
                (fun v ->
                  if
                    scc.Scc.comp_of.(u) <> scc.Scc.comp_of.(v)
                    && not (scc.Scc.comp_of.(v) < scc.Scc.comp_of.(u))
                  then ok := false)
                ds)
            succs;
          !ok);
      qcheck_scc "condensation adjacency matches the edges" (fun succs ->
          let scc = Scc.compute ~succs in
          let expect = Array.make scc.Scc.count [] in
          Array.iteri
            (fun u ds ->
              Array.iter
                (fun v ->
                  let cu = scc.Scc.comp_of.(u) and cv = scc.Scc.comp_of.(v) in
                  if cu <> cv && not (List.mem cv expect.(cu)) then
                    expect.(cu) <- cv :: expect.(cu))
                ds)
            succs;
          Array.for_all2
            (fun got want -> Array.to_list got = List.sort Int.compare want)
            scc.Scc.succs expect
          && Array.for_all2
               (fun c preds ->
                 Array.for_all
                   (fun p -> Array.exists (fun s -> s = c) scc.Scc.succs.(p))
                   preds)
               (Array.init scc.Scc.count Fun.id)
               scc.Scc.preds);
      qcheck_scc "topological respects cross-component edges" (fun succs ->
          let scc = Scc.compute ~succs in
          let n = Array.length succs in
          let order = Scc.topological scc in
          let pos = Array.make n (-1) in
          List.iteri (fun k v -> pos.(v) <- k) order;
          List.length order = n
          && Array.for_all (fun p -> p >= 0) pos
          && begin
               let ok = ref true in
               Array.iteri
                 (fun u ds ->
                   Array.iter
                     (fun v ->
                       if
                         scc.Scc.comp_of.(u) <> scc.Scc.comp_of.(v)
                         && pos.(v) > pos.(u)
                       then ok := false)
                     ds)
                 succs;
               !ok
             end);
    ]

let test_scc_basics () =
  (* Two mutually recursive pairs and an isolated vertex:
     0 <-> 1 -> 2 <-> 3, 4 alone. *)
  let succs = [| [| 1 |]; [| 0; 2 |]; [| 3 |]; [| 2 |]; [||] |] in
  let scc = Scc.compute ~succs in
  Alcotest.(check int) "count" 3 scc.Scc.count;
  Alcotest.(check bool) "not trivial" false (Scc.is_trivial scc);
  Alcotest.(check int) "largest" 2 (Scc.largest scc);
  Alcotest.(check bool) "pair together"
    true
    (scc.Scc.comp_of.(0) = scc.Scc.comp_of.(1)
    && scc.Scc.comp_of.(2) = scc.Scc.comp_of.(3)
    && scc.Scc.comp_of.(0) <> scc.Scc.comp_of.(2));
  (* {0,1} calls into {2,3}: callee numbered first. *)
  Alcotest.(check bool) "callee first" true
    (scc.Scc.comp_of.(2) < scc.Scc.comp_of.(0));
  let acyclic = Scc.compute ~succs:[| [| 1 |]; [| 2 |]; [||] |] in
  Alcotest.(check bool) "chain trivial" true (Scc.is_trivial acyclic);
  let empty = Scc.compute ~succs:[||] in
  Alcotest.(check int) "empty graph" 0 empty.Scc.count;
  Alcotest.(check int) "empty largest" 0 (Scc.largest empty)

let test_scc_deep_chain () =
  (* A 200k-vertex path: a recursive Tarjan would overflow the runtime
     stack here; the explicit-stack one must not. *)
  let n = 200_000 in
  let succs = Array.init n (fun v -> if v + 1 < n then [| v + 1 |] else [||]) in
  let scc = Scc.compute ~succs in
  Alcotest.(check int) "one component per vertex" n scc.Scc.count;
  Alcotest.(check bool) "trivial" true (Scc.is_trivial scc);
  (* The sink of every edge gets the smaller number. *)
  Alcotest.(check int) "sink numbered 0" 0 scc.Scc.comp_of.(n - 1);
  Alcotest.(check int) "source numbered last" (n - 1) scc.Scc.comp_of.(0);
  (* And one giant cycle: a single component, every vertex a member. *)
  let succs = Array.init n (fun v -> [| (v + 1) mod n |]) in
  let scc = Scc.compute ~succs in
  Alcotest.(check int) "cycle: one component" 1 scc.Scc.count;
  Alcotest.(check int) "cycle: all members" n (Scc.largest scc)

(* --- Pool ---------------------------------------------------------------- *)

let test_pool_ordering () =
  (* Results land at their input's index whatever the parallelism. *)
  let input = Array.init 1000 (fun i -> i) in
  let expected = Array.map (fun x -> (x * x) + 1 ) input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let got = Pool.parallel_map_array pool (fun x -> (x * x) + 1) input in
          Alcotest.(check (array int))
            (Printf.sprintf "map ordered at jobs=%d" jobs)
            expected got;
          let got = Pool.parallel_init pool 1000 (fun i -> (i * i) + 1) in
          Alcotest.(check (array int))
            (Printf.sprintf "init ordered at jobs=%d" jobs)
            expected got))
    [ 1; 2; 4; 7 ]

let test_pool_exception () =
  (* The worker's exception resurfaces on the calling domain, whether the
     failing index runs on a worker or on the caller itself. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "propagates at jobs=%d" jobs)
            (Failure "boom") (fun () ->
              ignore
                (Pool.parallel_init pool 500 (fun i ->
                     if i = 311 then failwith "boom" else i)));
          (* The pool survives a failed operation. *)
          Alcotest.(check (array int)) "usable after failure" [| 0; 1; 2 |]
            (Pool.parallel_init pool 3 Fun.id)))
    [ 1; 4 ]

let test_pool_empty_and_small () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int)) "empty input" [||]
        (Pool.parallel_map_array pool (fun x -> x) [||]);
      Alcotest.(check (array int)) "empty init" [||] (Pool.parallel_init pool 0 Fun.id);
      (* More domains than items: every item still computed exactly once. *)
      let hits = Array.make 3 0 in
      let got =
        Pool.parallel_init pool 3 (fun i ->
            hits.(i) <- hits.(i) + 1;
            i * 10)
      in
      Alcotest.(check (array int)) "jobs > items result" [| 0; 10; 20 |] got;
      Alcotest.(check (array int)) "each item once" [| 1; 1; 1 |] hits)

let test_pool_lifecycle () =
  let pool = Pool.create ~jobs:3 in
  Alcotest.(check int) "jobs clamped low" 1 Pool.(jobs (create ~jobs:0));
  Alcotest.(check int) "jobs accessor" 3 (Pool.jobs pool);
  Alcotest.(check (array int)) "works" [| 0; 1 |] (Pool.parallel_init pool 2 Fun.id);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* with_pool shuts down even when the body raises *)
  Alcotest.check_raises "with_pool reraises" Exit (fun () ->
      Pool.with_pool ~jobs:2 (fun _ -> raise Exit))

let test_pool_run_dag () =
  (* A diamond lattice: task i depends on i-1 and i/2.  Whatever the
     parallelism, every task runs exactly once and never before its
     dependencies. *)
  let n = 60 in
  let deps =
    Array.init n (fun i ->
        if i = 0 then [] else List.sort_uniq Int.compare [ i - 1; i / 2 ])
  in
  let dependents = Array.make n [] in
  Array.iteri
    (fun i ds -> List.iter (fun d -> dependents.(d) <- i :: dependents.(d)) ds)
    deps;
  let dependents = Array.map Array.of_list dependents in
  let dep_counts = Array.map List.length deps in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let m = Mutex.create () in
          let order = ref [] in
          Pool.run_dag pool ~dependents ~dep_counts (fun i ->
              Mutex.lock m;
              order := i :: !order;
              Mutex.unlock m);
          let order = List.rev !order in
          Alcotest.(check (list int))
            (Printf.sprintf "each task exactly once at jobs=%d" jobs)
            (List.init n Fun.id)
            (List.sort Int.compare order);
          let pos = Array.make n (-1) in
          List.iteri (fun k i -> pos.(i) <- k) order;
          Array.iteri
            (fun i ds ->
              List.iter
                (fun d ->
                  if pos.(d) > pos.(i) then
                    Alcotest.failf "task %d ran before its dependency %d (jobs=%d)"
                      i d jobs)
                ds)
            deps;
          (* Empty graph: a no-op. *)
          Pool.run_dag pool ~dependents:[||] ~dep_counts:[||] (fun _ ->
              Alcotest.fail "body called on empty graph")))
    [ 1; 4 ]

let test_pool_run_dag_errors () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          (* A 2-cycle (0 <-> 1) behind a completed prefix. *)
          Alcotest.check_raises
            (Printf.sprintf "cycle detected at jobs=%d" jobs)
            (Invalid_argument "Pool.run_dag: dependency graph has a cycle")
            (fun () ->
              Pool.run_dag pool
                ~dependents:[| [| 1 |]; [| 2 |]; [| 1 |] |]
                ~dep_counts:[| 0; 2; 1 |]
                (fun _ -> ()));
          Alcotest.check_raises "length mismatch"
            (Invalid_argument "Pool.run_dag: dependents and dep_counts lengths differ")
            (fun () ->
              Pool.run_dag pool ~dependents:[| [||] |] ~dep_counts:[||] (fun _ -> ()));
          (* A task's exception resurfaces on the calling domain and the
             pool stays usable. *)
          Alcotest.check_raises
            (Printf.sprintf "task exception at jobs=%d" jobs)
            (Failure "dag-boom") (fun () ->
              Pool.run_dag pool
                ~dependents:(Array.init 20 (fun i -> if i + 1 < 20 then [| i + 1 |] else [||]))
                ~dep_counts:(Array.init 20 (fun i -> if i = 0 then 0 else 1))
                (fun i -> if i = 13 then failwith "dag-boom"));
          Alcotest.(check (array int)) "usable after failure" [| 0; 1; 2 |]
            (Pool.parallel_init pool 3 Fun.id)))
    [ 1; 4 ]

(* --- Timer and Memmeter -------------------------------------------------- *)

let test_timer () =
  let t = Timer.create () in
  let x = Timer.record t "stage-a" (fun () -> 21 * 2) in
  Alcotest.(check int) "record returns" 42 x;
  Timer.add t "stage-b" 1.5;
  Timer.add t "stage-a" 0.0;
  Alcotest.(check (list string)) "stage order" [ "stage-a"; "stage-b" ]
    (List.map fst (Timer.stages t));
  if Timer.get t "stage-b" <> 1.5 then Alcotest.fail "stage-b total";
  if Timer.total t < 1.5 then Alcotest.fail "total should include stage-b";
  Timer.reset t;
  Alcotest.(check (list string)) "reset" [] (List.map fst (Timer.stages t))

let test_memmeter () =
  let data, bytes = Memmeter.measure (fun () -> Array.make 100_000 0) in
  Alcotest.(check int) "computed" 100_000 (Array.length data);
  (* 100k words is ~800KB on 64-bit. *)
  if bytes < 700_000 || bytes > 1_000_000 then
    Alcotest.failf "unexpected measured growth: %d bytes" bytes

let () =
  Alcotest.run "support"
    [
      ( "regset",
        Alcotest.test_case "basics" `Quick test_regset_basics :: regset_properties );
      ( "prng",
        [
          Alcotest.test_case "determinism and bounds" `Quick test_prng;
          Alcotest.test_case "chance balance" `Quick test_prng_chance_balance;
        ] );
      ("vec", [ Alcotest.test_case "operations" `Quick test_vec ]);
      ( "workset",
        [
          Alcotest.test_case "fifo + dedup + ring" `Quick test_workset;
          Alcotest.test_case "out-of-range push" `Quick test_workset_bounds;
          Alcotest.test_case "wraparound + push-after-pop" `Quick
            test_workset_wraparound_requeue;
          Alcotest.test_case "capacity and clear" `Quick test_workset_capacity_clear;
        ] );
      ( "scc",
        Alcotest.test_case "basics" `Quick test_scc_basics
        :: Alcotest.test_case "deep chain and giant cycle" `Quick test_scc_deep_chain
        :: scc_properties );
      ( "pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "empty and jobs > items" `Quick test_pool_empty_and_small;
          Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
          Alcotest.test_case "run_dag scheduling" `Quick test_pool_run_dag;
          Alcotest.test_case "run_dag errors" `Quick test_pool_run_dag_errors;
        ] );
      ("timer", [ Alcotest.test_case "stages" `Quick test_timer ]);
      ("memmeter", [ Alcotest.test_case "measure" `Quick test_memmeter ]);
    ]
