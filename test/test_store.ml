(* The persistent summary store: incremental equivalence and robustness.

   The store's one hard guarantee is that a warm-started analysis is
   bit-identical to a cold one — whatever was edited between the runs,
   whatever the parallelism degree, and whatever state the store file is
   in.  The equivalence tests sweep a mutation matrix (edit a body, add a
   call edge, remove a call edge, add/delete a routine, change an
   external summary) over synthetic programs at jobs 1 and 4, comparing
   the rendered summaries byte for byte, on both the disk path
   (save/load) and the in-memory path (retain/replan).  The robustness
   tests corrupt the file every way the header guards against and expect
   a counted, non-fatal degradation to a cold plan. *)

open Spike_support
open Spike_isa
open Spike_ir
open Spike_core
open Spike_synth
open Spike_store
open Test_helpers

let jobs_matrix = [ 1; 4 ]

let gen ?(seed = 42) () =
  Generator.generate
    { Params.default with Params.seed; routines = 24; target_instructions = 1200 }

let render (a : Analysis.t) =
  Format.asprintf "%a"
    (fun ppf summaries ->
      Array.iter (fun s -> Format.fprintf ppf "%a@." Summary.pp s) summaries)
    a.Analysis.summaries

(* Fresh store directory per test; the suite runs from a sandboxed cwd. *)
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Printf.sprintf "store-test-%d-%d" (Unix.getpid ()) !dir_counter

let store_path dir = Filename.concat dir Store.file_name

let cleanup dir =
  (try Sys.remove (store_path dir) with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()

(* --- The mutation matrix ------------------------------------------------- *)

let remake program routines =
  Program.make ~main:(Program.main program) (Array.to_list routines)

(* Replace instruction [i] of routine [r]. *)
let replace_insn program ~r ~i insn =
  let routines = Array.copy (Program.routines program) in
  let insns = Array.copy routines.(r).Routine.insns in
  insns.(i) <- insn;
  routines.(r) <- { (routines.(r)) with Routine.insns };
  remake program routines

let find_insn program p =
  let found = ref None in
  Program.iter
    (fun r (routine : Routine.t) ->
      if !found = None then
        Array.iteri
          (fun i insn -> if !found = None && p insn then found := Some (r, i))
          routine.Routine.insns)
    program;
  match !found with
  | Some ri -> ri
  | None -> Alcotest.fail "mutation matrix: no matching instruction in program"

let edit_body program =
  let r, i =
    find_insn program (function Insn.Li _ -> true | _ -> false)
  in
  match (Program.get program r).Routine.insns.(i) with
  | Insn.Li { dst; imm } -> replace_insn program ~r ~i (Insn.Li { dst; imm = imm + 1 })
  | _ -> assert false

let remove_call_edge program =
  let r, i =
    find_insn program (function
      | Insn.Call { callee = Insn.Direct _ } -> true
      | _ -> false)
  in
  replace_insn program ~r ~i Insn.Nop

let add_call_edge program =
  let target = (Program.get program (Program.routine_count program - 1)).Routine.name in
  let r, i =
    find_insn program (function Insn.Li _ -> true | _ -> false)
  in
  replace_insn program ~r ~i (call target)

(* Prepending a routine shifts every index in the program — the cached
   fragments' routine and call-target indices are all stale and must be
   remapped by name. *)
let add_routine program =
  let extra =
    Routine.make ~name:"aaa_store_test_pad" ~entries:[ "aaa_store_test_pad" ]
      ~labels:[ ("aaa_store_test_pad", 0) ]
      [| li r0 7; ret |]
  in
  Program.make ~main:(Program.main program)
    (extra :: Array.to_list (Program.routines program))

(* Deleting a called routine turns its callers' direct calls unknown
   (fingerprints change) and orphans its own entry — whose recorded
   callees must still re-seed their exits. *)
let delete_routine program =
  let r, _ =
    find_insn program (function
      | Insn.Call { callee = Insn.Direct _ } -> true
      | _ -> false)
  in
  let victim =
    match (Program.get program r).Routine.insns |> Array.find_map (function
            | Insn.Call { callee = Insn.Direct name } when name <> Program.main program
              -> Some name
            | _ -> None)
    with
    | Some name -> name
    | None -> Alcotest.fail "mutation matrix: no deletable callee"
  in
  Program.make ~main:(Program.main program)
    (List.filter
       (fun (r : Routine.t) -> not (String.equal r.Routine.name victim))
       (Array.to_list (Program.routines program)))

let mutations =
  [
    ("identity", fun p -> p);
    ("edit body", edit_body);
    ("remove call edge", remove_call_edge);
    ("add call edge", add_call_edge);
    ("add routine", add_routine);
    ("delete routine", delete_routine);
  ]

(* --- Incremental equivalence --------------------------------------------- *)

let test_disk_equivalence () =
  let program = gen () in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> cleanup dir) @@ fun () ->
  Store.save ~dir (Analysis.run ~jobs:1 ~capture:true program);
  List.iter
    (fun (name, mutate) ->
      let mutated = mutate program in
      List.iter
        (fun jobs ->
          let cold = Analysis.run ~jobs mutated in
          let loaded = Store.load ~dir mutated in
          Alcotest.(check (option string))
            (name ^ ": not degraded") None loaded.Store.degraded;
          let warm = Analysis.run ~jobs ~warm:loaded.Store.plan mutated in
          Alcotest.(check string)
            (Printf.sprintf "%s: warm = cold at jobs=%d" name jobs)
            (render cold) (render warm))
        jobs_matrix;
      (* Every mutation except the identity must dirty something. *)
      let loaded = Store.load ~dir mutated in
      if String.equal name "identity" then begin
        Alcotest.(check int)
          "identity: all hits"
          (Program.routine_count program)
          loaded.Store.hits;
        Alcotest.(check int) "identity: no invalidations" 0 loaded.Store.invalidated
      end
      else
        Alcotest.(check bool)
          (name ^ ": dirties at least one routine")
          true
          (loaded.Store.invalidated + loaded.Store.misses > 0))
    mutations

let test_memory_equivalence () =
  let program = gen ~seed:43 () in
  let session = Store.retain (Analysis.run ~jobs:1 ~capture:true program) in
  List.iter
    (fun (name, mutate) ->
      let mutated = mutate program in
      List.iter
        (fun jobs ->
          let cold = Analysis.run ~jobs mutated in
          let replanned = Store.replan session mutated in
          Alcotest.(check (option string))
            (name ^ ": not degraded") None replanned.Store.degraded;
          let warm = Analysis.run ~jobs ~warm:replanned.Store.plan mutated in
          Alcotest.(check string)
            (Printf.sprintf "%s: replan warm = cold at jobs=%d" name jobs)
            (render cold) (render warm))
        jobs_matrix)
    mutations;
  (* A session retained under one configuration refuses to warm another. *)
  let off = Store.replan session ~branch_nodes:false program in
  Alcotest.(check bool) "config mismatch degrades" true (off.Store.degraded <> None);
  let warm = Analysis.run ~branch_nodes:false ~warm:off.Store.plan program in
  Alcotest.(check string)
    "degraded replan still sound"
    (render (Analysis.run ~branch_nodes:false program))
    (render warm)

(* --- Solution lifting ----------------------------------------------------- *)

let counter snapshot name =
  match Spike_obs.Metrics.find snapshot name with
  | Some (Spike_obs.Metrics.Count n) -> n
  | _ -> 0

(* The donor fast path: a body edit that keeps the equation system intact
   must lift the stale entry's cached solutions, while a call-shape edit
   must fall back to the honest cone. *)
let test_solution_lift () =
  let program = gen ~seed:47 () in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> cleanup dir) @@ fun () ->
  Store.save ~dir (Analysis.run ~jobs:1 ~capture:true program);
  let check_lift name mutate expect =
    let mutated = mutate program in
    let loaded = Store.load ~dir mutated in
    Alcotest.(check bool)
      (name ^ ": stale entry kept as donor") true
      (Array.exists (fun d -> d <> None) loaded.Store.plan.Warm.donors);
    Spike_obs.Metrics.enable ();
    let warm = Analysis.run ~jobs:1 ~warm:loaded.Store.plan mutated in
    let n = counter (Spike_obs.Metrics.snapshot ()) "warm.solutions.lifted" in
    Spike_obs.Metrics.disable ();
    Alcotest.(check int) (name ^ ": lift count") expect n;
    Alcotest.(check string)
      (name ^ ": warm = cold")
      (render (Analysis.run ~jobs:1 mutated))
      (render warm)
  in
  check_lift "edit body" edit_body 1;
  check_lift "remove call edge" remove_call_edge 0

(* --- External summaries -------------------------------------------------- *)

let ext_class killed =
  { Psg.x_used = rs [ Reg.a0 ]; x_defined = rs [ Reg.v0 ]; x_killed = killed }

let ext_program =
  let helper =
    Routine.make ~name:"helper" ~entries:[ "helper" ] ~labels:[ ("helper", 0) ]
      [| call "memcpy"; ret |]
  in
  let main =
    Routine.make ~name:"main" ~entries:[ "main" ] ~labels:[ ("main", 0) ]
      [| call "helper"; li r0 0; ret |]
  in
  Program.make ~main:"main" [ main; helper ]

let test_external_change () =
  let ext_a name = if name = "memcpy" then Some (ext_class (rs [ Reg.v0 ])) else None in
  let ext_b name =
    if name = "memcpy" then Some (ext_class (rs [ Reg.v0; Reg.t0 ])) else None
  in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> cleanup dir) @@ fun () ->
  Store.save ~dir (Analysis.run ~externals:ext_a ~capture:true ext_program);
  (* Same externals: everything hits. *)
  let same = Store.load ~dir ~externals:ext_a ext_program in
  Alcotest.(check int) "same externals hit" 2 same.Store.hits;
  (* Changed external class: the transitively affected routine re-runs and
     the result matches a cold analysis under the new environment. *)
  let loaded = Store.load ~dir ~externals:ext_b ext_program in
  Alcotest.(check bool) "changed external invalidates" true (loaded.Store.invalidated >= 1);
  let cold = Analysis.run ~externals:ext_b ext_program in
  let warm = Analysis.run ~externals:ext_b ~warm:loaded.Store.plan ext_program in
  Alcotest.(check string) "warm = cold under new externals" (render cold) (render warm);
  let killed =
    (Summary.find warm.Analysis.summaries ext_program "helper" |> Option.get)
      .Summary.call_class.Summary.killed
  in
  Alcotest.(check bool) "new killed set visible through the call" true
    (Regset.mem Reg.t0 killed)

(* --- Robustness ----------------------------------------------------------- *)

let degradations () =
  match Spike_obs.Metrics.find (Spike_obs.Metrics.snapshot ()) "store.degradations" with
  | Some (Spike_obs.Metrics.Count n) -> n
  | _ -> 0

let corrupt_cases =
  [
    (* magic(8) version(1) config(16) checksum(8)... *)
    ("truncated", fun data -> String.sub data 0 (String.length data / 2));
    ( "bit-flipped payload",
      fun data ->
        let b = Bytes.of_string data in
        let i = String.length data / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        Bytes.to_string b );
    ( "wrong version",
      fun data ->
        let b = Bytes.of_string data in
        (* zigzag varint of [format_version + 1] still fits one byte *)
        Bytes.set b 8 (Char.chr ((Fingerprint.format_version + 1) * 2));
        Bytes.to_string b );
    ( "wrong config",
      fun data ->
        let b = Bytes.of_string data in
        Bytes.set b 9 (Char.chr (Char.code (Bytes.get b 9) lxor 0x01));
        Bytes.to_string b );
    ("empty file", fun _ -> "");
    ("wrong magic", fun data -> "NOTSTORE" ^ String.sub data 8 (String.length data - 8));
  ]

let test_robustness () =
  let program = gen ~seed:44 () in
  let cold = Analysis.run program in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> cleanup dir) @@ fun () ->
  Store.save ~dir (Analysis.run ~capture:true program);
  let pristine = In_channel.with_open_bin (store_path dir) In_channel.input_all in
  List.iter
    (fun (name, corrupt) ->
      Out_channel.with_open_bin (store_path dir) (fun oc ->
          Out_channel.output_string oc (corrupt pristine));
      Spike_obs.Metrics.enable ();
      let loaded = Store.load ~dir program in
      let counted = degradations () in
      Spike_obs.Metrics.disable ();
      Alcotest.(check bool) (name ^ ": degraded") true (loaded.Store.degraded <> None);
      Alcotest.(check int) (name ^ ": counted") 1 counted;
      Alcotest.(check int) (name ^ ": no hits") 0 loaded.Store.hits;
      Alcotest.(check int)
        (name ^ ": all misses")
        (Program.routine_count program)
        loaded.Store.misses;
      (* The degraded plan is an honest cold plan. *)
      let warm = Analysis.run ~warm:loaded.Store.plan program in
      Alcotest.(check string) (name ^ ": still correct") (render cold) (render warm))
    corrupt_cases;
  (* And a healthy file degrades nothing. *)
  Out_channel.with_open_bin (store_path dir) (fun oc ->
      Out_channel.output_string oc pristine);
  Spike_obs.Metrics.enable ();
  let loaded = Store.load ~dir program in
  let snapshot = Spike_obs.Metrics.snapshot () in
  Spike_obs.Metrics.disable ();
  Alcotest.(check (option string)) "healthy: not degraded" None loaded.Store.degraded;
  Alcotest.(check (option bool))
    "healthy: hits counted"
    (Some true)
    (Option.map
       (fun v -> v = Spike_obs.Metrics.Count (Program.routine_count program))
       (Spike_obs.Metrics.find snapshot "store.load.hits"))

let test_missing_store_is_cold () =
  let program = gen ~seed:45 () in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> cleanup dir) @@ fun () ->
  Spike_obs.Metrics.enable ();
  let loaded = Store.load ~dir program in
  let counted = degradations () in
  Spike_obs.Metrics.disable ();
  Alcotest.(check (option string)) "missing file is not a degradation" None
    loaded.Store.degraded;
  Alcotest.(check int) "no degradation counted" 0 counted;
  Alcotest.(check int) "all misses" (Program.routine_count program) loaded.Store.misses

let test_save_is_atomic () =
  (* A save must leave no temp droppings next to the store. *)
  let program = gen ~seed:46 () in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> cleanup dir) @@ fun () ->
  Store.save ~dir (Analysis.run ~capture:true program);
  let siblings = Sys.readdir dir in
  Alcotest.(check (array string)) "only the store file" [| Store.file_name |] siblings

let () =
  Alcotest.run "store"
    [
      ( "equivalence",
        [
          Alcotest.test_case "disk: mutation matrix, jobs 1 and 4" `Slow
            test_disk_equivalence;
          Alcotest.test_case "memory: mutation matrix, jobs 1 and 4" `Slow
            test_memory_equivalence;
          Alcotest.test_case "solution lift fires only when exact" `Quick
            test_solution_lift;
          Alcotest.test_case "external summary change" `Quick test_external_change;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "corrupt files degrade to cold" `Slow test_robustness;
          Alcotest.test_case "missing store is a plain cold start" `Quick
            test_missing_store_is_cold;
          Alcotest.test_case "save leaves no temp files" `Quick test_save_is_atomic;
        ] );
    ]
