(* QCheck property tests: the deep invariants, sampled over random
   generator parameter vectors rather than fixed seeds. *)

open Spike_support
open Spike_ir
open Spike_core
open Spike_synth

(* Arbitrary generator parameters: small programs (the reference oracle is
   O(routines^2)-ish), but with every structural feature dialable. *)
let arbitrary_params =
  let open QCheck.Gen in
  let pfloat_b x = map (fun f -> Float.abs f *. x) (float_bound_inclusive 1.0) in
  let gen =
    int_bound 1_000_000 >>= fun seed ->
    int_range 2 16 >>= fun routines ->
    int_range 100 900 >>= fun target_instructions ->
    pfloat_b 6.0 >>= fun calls_per_routine ->
    pfloat_b 8.0 >>= fun branches_per_routine ->
    pfloat_b 1.0 >>= fun switches_per_routine ->
    int_range 2 8 >>= fun switch_fanout ->
    pfloat_b 1.0 >>= fun switch_loop_prob ->
    pfloat_b 1.0 >>= fun switch_arm_calls ->
    pfloat_b 1.0 >>= fun recursion_prob ->
    pfloat_b 0.3 >>= fun indirect_known_prob ->
    pfloat_b 0.3 >>= fun unknown_call_prob ->
    pfloat_b 1.0 >>= fun save_restore_prob ->
    pfloat_b 1.5 >>= fun loops_per_routine ->
    pfloat_b 0.8 >>= fun loop_call_prob ->
    pfloat_b 0.5 >>= fun spill_prob ->
    pfloat_b 0.2 >>= fun extra_entry_prob ->
    pfloat_b 2.0 >>= fun exits_extra ->
    return
      {
        Params.seed;
        routines;
        target_instructions;
        calls_per_routine;
        branches_per_routine;
        switches_per_routine;
        switch_fanout;
        switch_loop_prob;
        switch_arm_calls;
        exits_per_routine = 1.0 +. exits_extra;
        extra_entry_prob;
        recursion_prob;
        indirect_known_prob;
        unknown_call_prob;
        unknown_jump_prob = 0.0;
        exported_prob = 0.1;
        save_restore_prob;
        loops_per_routine;
        loop_call_prob;
        spill_prob;
        guard_calls = true;
      }
  in
  let print (p : Params.t) =
    Printf.sprintf
      "{seed=%d; routines=%d; insns=%d; calls=%f; branches=%f; switches=%f; \
       fanout=%d; sw_loop=%f; sw_arm=%f; exits=%f; extra_entry=%f; rec=%f; \
       ind=%f; unk=%f; save=%f; loops=%f; loop_call=%f; spill=%f}"
      p.Params.seed p.Params.routines p.Params.target_instructions
      p.Params.calls_per_routine p.Params.branches_per_routine
      p.Params.switches_per_routine p.Params.switch_fanout p.Params.switch_loop_prob
      p.Params.switch_arm_calls p.Params.exits_per_routine p.Params.extra_entry_prob
      p.Params.recursion_prob p.Params.indirect_known_prob p.Params.unknown_call_prob
      p.Params.save_restore_prob p.Params.loops_per_routine p.Params.loop_call_prob
      p.Params.spill_prob
  in
  QCheck.make ~print gen

let class_equal (a : Summary.call_class) (b : Summary.call_class) =
  Regset.equal a.Summary.used b.Summary.used
  && Regset.equal a.Summary.defined b.Summary.defined
  && Regset.equal a.Summary.killed b.Summary.killed

let prop_generated_valid =
  QCheck.Test.make ~name:"generated programs validate" ~count:60 arbitrary_params
    (fun params ->
      match Validate.check (Generator.generate params) with
      | Ok () -> true
      | Error _ -> false)

let prop_psg_equals_reference =
  QCheck.Test.make ~name:"psg analysis = reference fixpoint" ~count:40
    arbitrary_params (fun params ->
      let p = Generator.generate params in
      let analysis = Analysis.run p in
      let reference = Spike_reference.Reference.run p in
      let classes_ok =
        Array.for_all2 class_equal analysis.Analysis.call_classes
          reference.Spike_reference.Reference.call_classes
      in
      let liveness_ok = ref true in
      Array.iteri
        (fun r (s : Summary.t) ->
          (match s.Summary.live_at_entry with
          | (_, live) :: _ ->
              if
                not
                  (Regset.equal live
                     reference.Spike_reference.Reference.live_at_entry.(r))
              then liveness_ok := false
          | [] -> ());
          List.iter
            (fun (block, live) ->
              match
                List.assoc_opt block
                  reference.Spike_reference.Reference.live_at_exit.(r)
              with
              | Some expected -> if not (Regset.equal live expected) then liveness_ok := false
              | None -> liveness_ok := false)
            s.Summary.live_at_exit)
        analysis.Analysis.summaries;
      classes_ok && !liveness_ok)

let prop_branch_nodes_invariant =
  QCheck.Test.make ~name:"branch nodes never change the solution" ~count:40
    arbitrary_params (fun params ->
      let p = Generator.generate params in
      let a = Analysis.run ~branch_nodes:true p in
      let b = Analysis.run ~branch_nodes:false p in
      Array.for_all2 class_equal a.Analysis.call_classes b.Analysis.call_classes)

let prop_asm_roundtrip =
  QCheck.Test.make ~name:"assembly print/parse roundtrip" ~count:60 arbitrary_params
    (fun params ->
      let p = Generator.generate params in
      let text = Spike_asm.Printer.to_string p in
      let p' = Spike_asm.Parser.program_of_string text in
      String.equal text (Spike_asm.Printer.to_string p'))

let prop_opt_preserves_outcome =
  QCheck.Test.make ~name:"optimizations preserve the exit status" ~count:25
    arbitrary_params (fun params ->
      let p = Generator.generate params in
      let optimized, _ = Spike_opt.Opt.run (Analysis.run p) in
      match
        ( Spike_interp.Machine.execute ~fuel:2_000_000 p,
          Spike_interp.Machine.execute ~fuel:2_000_000 optimized )
      with
      | Spike_interp.Machine.Halted a, Spike_interp.Machine.Halted b -> a = b
      | Spike_interp.Machine.Trapped Spike_interp.Machine.Out_of_fuel,
        Spike_interp.Machine.Trapped Spike_interp.Machine.Out_of_fuel ->
          true
      | _, _ -> false)

(* External-summary files must round-trip through their concrete syntax:
   the sets are rebuilt from rendered register names, so this exercises
   name/of_name agreement for every register, empty sets, and inputs that
   list the same register more than once (sets collapse them). *)
let arbitrary_summaries =
  let open QCheck.Gen in
  let reg = oneofl Spike_isa.Reg.all in
  let regset =
    (* duplicates on purpose: [of_list] must collapse them *)
    map Regset.of_list (list_size (int_bound 8) reg)
  in
  let entry i =
    map3
      (fun used defined killed ->
        (Printf.sprintf "ext_%d" i, { Psg.x_used = used; x_defined = defined; x_killed = killed }))
      regset regset regset
  in
  let gen =
    int_bound 8 >>= fun n ->
    let rec go i = if i >= n then return [] else
      entry i >>= fun e -> map (fun rest -> e :: rest) (go (i + 1))
    in
    go 0
  in
  let print entries = Spike_asm.Summaries.to_string entries in
  QCheck.make ~print gen

let prop_summaries_roundtrip =
  QCheck.Test.make ~name:"external summaries print/parse roundtrip" ~count:200
    arbitrary_summaries (fun entries ->
      let again =
        Spike_asm.Summaries.of_string (Spike_asm.Summaries.to_string entries)
      in
      List.length entries = List.length again
      && List.for_all2
           (fun (n1, (c1 : Psg.external_class)) (n2, (c2 : Psg.external_class)) ->
             String.equal n1 n2
             && Regset.equal c1.Psg.x_used c2.Psg.x_used
             && Regset.equal c1.Psg.x_defined c2.Psg.x_defined
             && Regset.equal c1.Psg.x_killed c2.Psg.x_killed)
           entries again)

let prop_dynamic_soundness =
  QCheck.Test.make ~name:"summaries sound on executions" ~count:25 arbitrary_params
    (fun params ->
      let p = Generator.generate params in
      let analysis = Analysis.run p in
      let _, violations = Spike_interp.Oracle.check ~fuel:2_000_000 analysis in
      violations = [])

let () =
  Alcotest.run "properties"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_generated_valid;
            prop_psg_equals_reference;
            prop_branch_nodes_invariant;
            prop_asm_roundtrip;
            prop_summaries_roundtrip;
            prop_opt_preserves_outcome;
            prop_dynamic_soundness;
          ] );
    ]
