(* The observability layer: span tracing, the metrics registry, and the
   exporters.

   The load-bearing properties are (1) recording is jobs-invariant —
   counter totals and analysis results do not depend on the parallelism
   degree or on whether collection is enabled — and (2) the exported
   artifacts are well-formed: the Chrome trace parses, begin/end match,
   spans nest, and the metrics JSON round-trips through the validator
   with the iteration counters equal to what [Analysis.run] reports. *)

open Spike_support
open Spike_core
open Spike_synth
module Clock = Spike_obs.Clock
module Trace = Spike_obs.Trace
module Metrics = Spike_obs.Metrics
module Trace_check = Spike_obs.Trace_check

let test_program =
  lazy
    (Generator.generate
       {
         Params.default with
         Params.seed = 5;
         routines = 25;
         target_instructions = 1500;
       })

(* --- Clocks -------------------------------------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "Clock.now_ns went backwards: %Ld then %Ld" !prev t;
    prev := t
  done;
  let a = Timer.now () in
  let b = Timer.now () in
  Alcotest.(check bool) "Timer.now nondecreasing" true (b >= a)

let test_sample_bytes () =
  let s = Memmeter.sample_bytes () in
  Alcotest.(check bool) "sample_bytes non-negative" true (s >= 0);
  Alcotest.(check bool)
    "sample_bytes bounds the collected live heap" true
    (Memmeter.sample_bytes () >= 0 && Memmeter.live_bytes () > 0)

(* --- Spans --------------------------------------------------------------- *)

let test_span_nesting () =
  Trace.enable ();
  let r =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "inner" (fun () -> 41) + 1)
  in
  Trace.with_span "later" ignore;
  Trace.disable ();
  Alcotest.(check int) "with_span returns the body's result" 42 r;
  match Trace.events () with
  | [ outer; inner; later ] ->
      let open Trace in
      Alcotest.(check string) "outermost first" "outer" outer.name;
      Alcotest.(check string) "nested second" "inner" inner.name;
      Alcotest.(check string) "sequential last" "later" later.name;
      Alcotest.(check bool) "same lane" true
        (outer.lane = inner.lane && inner.lane = later.lane);
      Alcotest.(check bool) "inner starts inside outer" true
        (Int64.compare inner.ts_ns outer.ts_ns >= 0);
      Alcotest.(check bool) "inner ends inside outer" true
        (Int64.compare
           (Int64.add inner.ts_ns inner.dur_ns)
           (Int64.add outer.ts_ns outer.dur_ns)
        <= 0);
      Alcotest.(check bool) "later starts after outer ends" true
        (Int64.compare later.ts_ns (Int64.add outer.ts_ns outer.dur_ns) >= 0)
  | events -> Alcotest.failf "expected 3 events, got %d" (List.length events)

let test_span_disabled_and_raise () =
  Trace.enable ();
  Trace.disable ();
  Alcotest.(check int) "disabled with_span is transparent" 7
    (Trace.with_span "ignored" (fun () -> 7));
  Alcotest.(check int) "disabled spans are not recorded" 0
    (List.length (Trace.events ()));
  Trace.enable ();
  (try Trace.with_span "boom" (fun () -> raise Exit) with Exit -> ());
  Trace.disable ();
  match Trace.events () with
  | [ e ] -> Alcotest.(check string) "raising span still recorded" "boom" e.Trace.name
  | events -> Alcotest.failf "expected 1 event, got %d" (List.length events)

(* --- Counters under the pool --------------------------------------------- *)

let c_test = Metrics.counter "test.obs.increments"

let pool_totals jobs =
  Metrics.enable ();
  Pool.with_pool ~jobs (fun pool ->
      ignore
        (Pool.parallel_init pool 10_000 (fun i ->
             Metrics.incr c_test;
             i)));
  let snap = Metrics.snapshot () in
  Metrics.disable ();
  snap

let count snap name =
  match Metrics.find snap name with
  | Some (Metrics.Count n) -> n
  | Some (Metrics.Value _) -> Alcotest.failf "%s is a gauge" name
  | None -> Alcotest.failf "%s missing from snapshot" name

let test_counters_jobs_invariant () =
  List.iter
    (fun jobs ->
      let snap = pool_totals jobs in
      Alcotest.(check int)
        (Printf.sprintf "increments at jobs=%d" jobs)
        10_000
        (count snap "test.obs.increments");
      Alcotest.(check int)
        (Printf.sprintf "pool.items at jobs=%d" jobs)
        10_000 (count snap "pool.items"))
    [ 1; 4 ]

(* --- Whole-analysis metrics ---------------------------------------------- *)

(* Counters only: gauges are heap samples, partition-dependent noise;
   pool.chunks depends on how the atomic chunk counter dealt the work,
   and pool.tasks counts DAG dispatches through the pool executor, which
   the serial (jobs=1) phase path never uses. *)
let counters_of snap =
  List.filter_map
    (function
      | "pool.chunks", _ | "pool.tasks", _ | _, Metrics.Value _ -> None
      | name, Metrics.Count n -> Some (name, n))
    snap

let analysis_with_metrics jobs =
  Metrics.enable ();
  let a = Analysis.run ~jobs (Lazy.force test_program) in
  let snap = Metrics.snapshot () in
  Metrics.disable ();
  (a, snap)

let test_analysis_metrics_jobs_invariant () =
  let a1, snap1 = analysis_with_metrics 1 in
  let a4, snap4 = analysis_with_metrics 4 in
  Alcotest.(check (list (pair string int)))
    "counter totals identical at jobs=1 and jobs=4" (counters_of snap1)
    (counters_of snap4);
  Alcotest.(check int) "phase1.iterations matches the result (jobs=1)"
    a1.Analysis.phase1_iterations
    (count snap1 "phase1.iterations");
  Alcotest.(check int) "phase2.iterations matches the result (jobs=1)"
    a1.Analysis.phase2_iterations
    (count snap1 "phase2.iterations");
  Alcotest.(check int) "phase1.iterations matches the result (jobs=4)"
    a4.Analysis.phase1_iterations
    (count snap4 "phase1.iterations");
  Alcotest.(check bool) "analysis.runs counted" true
    (count snap1 "analysis.runs" = 1)

(* --- Exported artifacts -------------------------------------------------- *)

let stage_names =
  [
    Analysis.stage_cfg_build;
    Analysis.stage_init;
    Analysis.stage_psg_build;
    Analysis.stage_phase1;
    Analysis.stage_phase2;
  ]

let test_chrome_trace_valid () =
  Trace.enable ();
  ignore (Analysis.run ~jobs:4 (Lazy.force test_program));
  Trace.disable ();
  let json = Trace.chrome_json () in
  match Trace_check.validate_trace json with
  | Error msg -> Alcotest.failf "exported trace rejected: %s" msg
  | Ok s ->
      Alcotest.(check bool) "spans recorded" true (s.Trace_check.events > 0);
      Alcotest.(check bool) "at least one lane" true (s.Trace_check.lanes >= 1);
      List.iter
        (fun stage ->
          Alcotest.(check bool)
            (Printf.sprintf "trace names %S" stage)
            true
            (List.mem stage s.Trace_check.names))
        stage_names;
      Alcotest.(check bool) "pool chunks traced" true
        (List.mem "pool.chunk" s.Trace_check.names)

let test_metrics_json_roundtrip () =
  let a, _ = analysis_with_metrics 2 in
  (* snapshot again through the JSON exporter before disabling *)
  Metrics.enable ();
  let a2 = Analysis.run ~jobs:2 (Lazy.force test_program) in
  let path = Filename.temp_file "spike_metrics" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Metrics.write_json oc;
      close_out oc;
      Metrics.disable ();
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Trace_check.validate_metrics text with
      | Error msg -> Alcotest.failf "exported metrics rejected: %s" msg
      | Ok metrics ->
          let get name =
            match List.assoc_opt name metrics with
            | Some v -> int_of_float v
            | None -> Alcotest.failf "%s missing from metrics JSON" name
          in
          Alcotest.(check int) "phase1.iterations in JSON"
            a2.Analysis.phase1_iterations (get "phase1.iterations");
          Alcotest.(check int) "phase2.iterations in JSON"
            a2.Analysis.phase2_iterations (get "phase2.iterations");
          Alcotest.(check int) "stable across runs" a.Analysis.phase1_iterations
            a2.Analysis.phase1_iterations)

(* --- Observation does not perturb the analysis ---------------------------- *)

let render (a : Analysis.t) =
  Format.asprintf "%a|%a|%d|%d"
    (fun ppf summaries ->
      Array.iter (fun s -> Format.fprintf ppf "%a@." Summary.pp s) summaries)
    a.Analysis.summaries Psg_stats.pp
    (Psg_stats.of_psg a.Analysis.psg)
    a.Analysis.phase1_iterations a.Analysis.phase2_iterations

let test_observation_is_transparent () =
  let program = Lazy.force test_program in
  let plain = render (Analysis.run ~jobs:4 program) in
  Trace.enable ();
  Metrics.enable ();
  let observed = render (Analysis.run ~jobs:4 program) in
  Metrics.disable ();
  Trace.disable ();
  Alcotest.(check string) "tracing + metrics leave results unchanged" plain
    observed

(* --- Validator rejects malformed input ------------------------------------ *)

let check_rejected what text =
  match Trace_check.validate_trace text with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "validator accepted %s" what

let xev ?(tid = 0) name ts dur =
  Printf.sprintf
    {|{"name":"%s","cat":"span","ph":"X","pid":1,"tid":%d,"ts":%f,"dur":%f}|}
    name tid ts dur

let trace_doc events =
  Printf.sprintf {|{"traceEvents":[%s]}|} (String.concat "," events)

let test_validator_negative () =
  check_rejected "truncated JSON" {|{"traceEvents":[|};
  check_rejected "no traceEvents" {|{"events":[]}|};
  check_rejected "B without E"
    (trace_doc [ {|{"name":"a","ph":"B","pid":1,"tid":0,"ts":0}|} ]);
  check_rejected "partially overlapping spans"
    (trace_doc [ xev "a" 0.0 100.0; xev "b" 50.0 150.0 ]);
  (match Trace_check.validate_trace (trace_doc [ xev "a" 0.0 100.0; xev "b" 10.0 20.0 ]) with
  | Ok s -> Alcotest.(check int) "nested spans accepted" 2 s.Trace_check.events
  | Error msg -> Alcotest.failf "nested spans rejected: %s" msg);
  (match Trace_check.validate_metrics {|{"schema":"other","metrics":{}}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "validator accepted a foreign metrics schema")

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "heap sampling" `Quick test_sample_bytes;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "disabled / raising" `Quick
            test_span_disabled_and_raise;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "pool counters jobs-invariant" `Quick
            test_counters_jobs_invariant;
          Alcotest.test_case "analysis counters jobs-invariant" `Quick
            test_analysis_metrics_jobs_invariant;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace validates" `Quick
            test_chrome_trace_valid;
          Alcotest.test_case "metrics JSON round-trips" `Quick
            test_metrics_json_roundtrip;
          Alcotest.test_case "validator rejects malformed input" `Quick
            test_validator_negative;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "observation does not change results" `Quick
            test_observation_is_transparent;
        ] );
    ]
