(* The multicore scaling study: how the analysis front-end speeds up with
   the domain count, and the machine-readable BENCH_psg.json record that
   lets the performance trajectory be compared across revisions.

   Each calibrated workload is generated once, then analysed end to end at
   jobs = 1, 2, 4, 8.  The front-end columns (CFG build + initialization +
   PSG build) isolate the per-routine part; since schema v4 the phase
   fixpoints run under the SCC-condensation schedule too, and the [scc]
   section compares their iteration counts and stage times against the
   FIFO baseline and across jobs settings. *)

open Spike_support
open Spike_core
open Spike_synth

let jobs_list = [ 1; 2; 4; 8 ]
let workload_names = [ "gcc"; "acad" ]

type lane = { lane : int; busy_s : float; chunks : int }

type point = {
  workload : string;
  jobs : int;
  routines : int;
  instructions : int;
  total_s : float;
  front_end_s : float;
  stages : (string * float) list;
  per_domain : lane list;
  psg_nodes : int;
  psg_edges : int;
  phase1_iterations : int;
  phase2_iterations : int;
}

let front_end_stages =
  [ Analysis.stage_cfg_build; Analysis.stage_init; Analysis.stage_psg_build ]

(* Per-domain utilization comes from a second, traced, run of the same
   point: the timing run stays untraced so the recorded seconds keep the
   disabled-path overhead (a branch per probe), comparable with earlier
   revisions of this file.  Lane ids are renumbered from 0 because every
   Analysis.run spawns a fresh pool of domains, and only the chunk spans
   of the front-end are summed — that is the busy time of each domain. *)
let trace_per_domain ~program jobs =
  Spike_obs.Trace.enable ();
  ignore (Analysis.run ~jobs program);
  Spike_obs.Trace.disable ();
  List.mapi
    (fun i (_, busy_s, chunks) -> { lane = i; busy_s; chunks })
    (Spike_obs.Trace.lane_seconds ~name:"pool.chunk" ())

let measure_point ~workload ~program jobs =
  let analysis = Analysis.run ~jobs program in
  let stages = Timer.stages analysis.Analysis.timer in
  let stage_get name = try List.assoc name stages with Not_found -> 0.0 in
  {
    workload;
    jobs;
    routines = Spike_ir.Program.routine_count program;
    instructions = Spike_ir.Program.instruction_count program;
    total_s = Analysis.total_seconds analysis;
    front_end_s = List.fold_left (fun s n -> s +. stage_get n) 0.0 front_end_stages;
    stages;
    per_domain = trace_per_domain ~program jobs;
    psg_nodes = Psg.node_count analysis.Analysis.psg;
    psg_edges = Psg.edge_count analysis.Analysis.psg;
    phase1_iterations = analysis.Analysis.phase1_iterations;
    phase2_iterations = analysis.Analysis.phase2_iterations;
  }

let measure ~scale =
  List.concat_map
    (fun name ->
      match Calibrate.find name with
      | None -> []
      | Some row ->
          let program = Generator.generate (Calibrate.params_of ~scale row) in
          List.map (fun jobs -> measure_point ~workload:name ~program jobs) jobs_list)
    workload_names

(* --- The SCC-schedule study --------------------------------------------- *)

(* What the condensation schedule buys over the FIFO worklists, in the
   schedule-independent currency of node recomputations, and what the
   parallel dispatch of independent components does to the phase-stage
   wall clock.  Iteration counts are deterministic per component, so the
   SCC serial and SCC parallel columns must agree exactly — asserted
   here, along with bit-identical summaries across all three drivers. *)

type scc_phase_point = { sp_jobs : int; sp_phase1_s : float; sp_phase2_s : float }

type scc_study = {
  scc_workload : string;
  scc_count : int;
  largest_scc : int;
  p1_fifo : int;
  p2_fifo : int;
  p1_scc : int;
  p2_scc : int;
  p1_par : int;
  p2_par : int;
  phase_points : scc_phase_point list;
}

let scc_jobs_list = [ 1; 2; 4 ]

let measure_scc ~workload ~program =
  let fifo = Analysis.run ~jobs:1 ~phase_sched:`Fifo program in
  let scc1 = Analysis.run ~jobs:1 ~phase_sched:`Scc program in
  let par = Analysis.run ~jobs:4 ~phase_sched:`Scc program in
  (* The fixpoint is unique: every driver must land on the same summaries,
     and the per-component iteration counts must not depend on jobs. *)
  assert (scc1.Analysis.summaries = fifo.Analysis.summaries);
  assert (par.Analysis.summaries = fifo.Analysis.summaries);
  assert (scc1.Analysis.phase1_iterations = par.Analysis.phase1_iterations);
  assert (scc1.Analysis.phase2_iterations = par.Analysis.phase2_iterations);
  let scc = Psg.call_scc fifo.Analysis.psg in
  let phase_points =
    List.map
      (fun jobs ->
        let best = ref None in
        for _ = 1 to 3 do
          let a = Analysis.run ~jobs program in
          let stages = Timer.stages a.Analysis.timer in
          let get n = try List.assoc n stages with Not_found -> 0.0 in
          let p1 = get Analysis.stage_phase1 and p2 = get Analysis.stage_phase2 in
          match !best with
          | Some (b1, b2) when b1 +. b2 <= p1 +. p2 -> ()
          | _ -> best := Some (p1, p2)
        done;
        let sp_phase1_s, sp_phase2_s = Option.get !best in
        { sp_jobs = jobs; sp_phase1_s; sp_phase2_s })
      scc_jobs_list
  in
  {
    scc_workload = workload;
    scc_count = scc.Scc.count;
    largest_scc = Scc.largest scc;
    p1_fifo = fifo.Analysis.phase1_iterations;
    p2_fifo = fifo.Analysis.phase2_iterations;
    p1_scc = scc1.Analysis.phase1_iterations;
    p2_scc = scc1.Analysis.phase2_iterations;
    p1_par = par.Analysis.phase1_iterations;
    p2_par = par.Analysis.phase2_iterations;
    phase_points;
  }

(* --- The persistent-store warm-start study ------------------------------ *)

(* How much of a re-analysis the summary store saves, as a function of how
   much of the program an edit dirtied.  The workload is analysed cold and
   persisted once; each sweep point then mutates k routines (bumping an
   immediate, which changes the fingerprint without changing the program
   shape) and re-analyses warm, along both store paths:

   - warm_ms: disk — Store.load + analysis, what a fresh process pays.
     Bounded below by decoding the artifact graph back into boxed records
     (allocation + write-barrier bound, see DESIGN.md), so it flattens
     out well above the pure analysis cost.
   - warm_mem_ms: resident — Store.replan from a retained session +
     analysis, what a watch-mode driver that keeps the previous run alive
     pays.  Skips the decode entirely; only re-fingerprinting and the
     cone re-analysis remain.

   Both exclude the re-save. *)

type store_point = {
  dirty_routines : int;
  dirty_fraction : float;
  warm_ms : float;
  speedup : float;
  warm_mem_ms : float;
  mem_speedup : float;
}

type store_study = {
  store_workload : string;
  cold_ms : float;
  sweep : store_point list;
}

let dirty_fractions = [ 0.0; 0.001; 0.01; 0.05; 0.25 ]

let mutate_routine (r : Spike_ir.Routine.t) =
  let insns = Array.copy r.Spike_ir.Routine.insns in
  let rec go i =
    if i >= Array.length insns then false
    else
      match insns.(i) with
      | Spike_isa.Insn.Li { dst; imm } ->
          insns.(i) <- Spike_isa.Insn.Li { dst; imm = imm + 1 };
          true
      | Spike_isa.Insn.Lda { dst; base; offset } ->
          insns.(i) <- Spike_isa.Insn.Lda { dst; base; offset = offset + 1 };
          true
      | _ -> go (i + 1)
  in
  if go 0 then { r with Spike_ir.Routine.insns } else r

(* Mutate [k] routines spread evenly across the program; returns the
   program and how many actually changed (a routine with no immediate to
   bump stays clean). *)
let mutate_program program k =
  let routines = Spike_ir.Program.routines program in
  let n = Array.length routines in
  let k = min k n in
  let step = if k = 0 then n + 1 else max 1 (n / k) in
  let changed = ref 0 in
  let mutated =
    Array.mapi
      (fun i r ->
        if k > 0 && i mod step = 0 && i / step < k then begin
          let r' = mutate_routine r in
          if r' != r then incr changed;
          r'
        end
        else r)
      routines
  in
  (Spike_ir.Program.make ~main:(Spike_ir.Program.main program)
     (Array.to_list mutated),
   !changed)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, (Unix.gettimeofday () -. t0) *. 1000.0)

let best_of_ms runs f =
  let best = ref infinity in
  let value = ref None in
  for _ = 1 to runs do
    let v, ms = time_ms f in
    if ms < !best then best := ms;
    value := Some v
  done;
  (Option.get !value, !best)

let measure_store ~workload ~program =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spike-store-bench-%d" (Unix.getpid ()))
  in
  let jobs = 1 in
  let cold_baseline, cold_ms =
    best_of_ms 3 (fun () -> Analysis.run ~jobs program)
  in
  let captured = Analysis.run ~jobs ~capture:true program in
  Spike_store.Store.save ~dir captured;
  let session = Spike_store.Store.retain captured in
  let checked = ref false in
  let sweep =
    List.filter_map
      (fun f ->
        let k =
          int_of_float (Float.round (f *. float_of_int (Spike_ir.Program.routine_count program)))
        in
        let k = if f > 0.0 then max 1 k else 0 in
        let mutated, dirty_routines = mutate_program program k in
        let analysis, warm_ms =
          best_of_ms 3 (fun () ->
              let loaded = Spike_store.Store.load ~dir mutated in
              Analysis.run ~jobs ~warm:loaded.Spike_store.Store.plan mutated)
        in
        let analysis_mem, warm_mem_ms =
          best_of_ms 3 (fun () ->
              let replanned = Spike_store.Store.replan session mutated in
              Analysis.run ~jobs ~warm:replanned.Spike_store.Store.plan mutated)
        in
        (* Sanity: a warm re-analysis of the unmutated program must
           reproduce the cold summaries bit for bit, on both paths. *)
        if dirty_routines = 0 && not !checked then begin
          checked := true;
          assert (analysis.Analysis.summaries = cold_baseline.Analysis.summaries);
          assert (
            analysis_mem.Analysis.summaries = cold_baseline.Analysis.summaries)
        end;
        Some
          {
            dirty_routines;
            dirty_fraction =
              float_of_int dirty_routines
              /. float_of_int (Spike_ir.Program.routine_count program);
            warm_ms;
            speedup = (if warm_ms > 0.0 then cold_ms /. warm_ms else 0.0);
            warm_mem_ms;
            mem_speedup =
              (if warm_mem_ms > 0.0 then cold_ms /. warm_mem_ms else 0.0);
          })
      dirty_fractions
  in
  (try
     Sys.remove (Filename.concat dir Spike_store.Store.file_name);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error (_, _, _) -> ());
  { store_workload = workload; cold_ms; sweep }

(* --- BENCH_psg.json ----------------------------------------------------- *)

let json_of_points buf ~scale points sccs stores =
  let field_sep = ref "" in
  let addf fmt = Printf.bprintf buf fmt in
  addf "{\n";
  addf "  \"schema\": \"spike-bench-psg/4\",\n";
  addf "  \"scale\": %.4f,\n" scale;
  addf "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  addf
    "  \"recommended_domains_note\": \"Domain.recommended_domain_count on \
     this machine; 1 means the container exposes a single core, so every \
     jobs > 1 point pays domain spawn + scheduling overhead with no extra \
     hardware parallelism and the speedup columns are expected at or below \
     1.0x.  The iteration columns of the scc section are \
     schedule-independent and comparable across machines.\",\n";
  addf "  \"points\": [";
  List.iter
    (fun p ->
      addf "%s\n    {" !field_sep;
      field_sep := ",";
      addf " \"workload\": \"%s\", \"jobs\": %d," p.workload p.jobs;
      addf " \"routines\": %d, \"instructions\": %d," p.routines p.instructions;
      addf " \"total_s\": %.6f, \"front_end_s\": %.6f," p.total_s p.front_end_s;
      addf " \"stages\": {";
      List.iteri
        (fun i (name, secs) ->
          addf "%s\"%s\": %.6f" (if i = 0 then " " else ", ") name secs)
        p.stages;
      addf " },";
      addf " \"per_domain\": [";
      List.iteri
        (fun i l ->
          addf "%s{ \"lane\": %d, \"busy_s\": %.6f, \"chunks\": %d }"
            (if i = 0 then " " else ", ")
            l.lane l.busy_s l.chunks)
        p.per_domain;
      addf " ],";
      addf " \"psg_nodes\": %d, \"psg_edges\": %d," p.psg_nodes p.psg_edges;
      addf " \"phase1_iterations\": %d, \"phase2_iterations\": %d }" p.phase1_iterations
        p.phase2_iterations)
    points;
  addf "\n  ],\n";
  addf "  \"scc\": [";
  let scc_sep = ref "" in
  List.iter
    (fun s ->
      addf "%s\n    {" !scc_sep;
      scc_sep := ",";
      addf " \"workload\": \"%s\", \"scc_count\": %d, \"largest_scc\": %d,"
        s.scc_workload s.scc_count s.largest_scc;
      addf "\n      \"phase1_iterations\": { \"fifo\": %d, \"scc\": %d, \"parallel_jobs4\": %d },"
        s.p1_fifo s.p1_scc s.p1_par;
      addf "\n      \"phase2_iterations\": { \"fifo\": %d, \"scc\": %d, \"parallel_jobs4\": %d },"
        s.p2_fifo s.p2_scc s.p2_par;
      let fifo_total = s.p1_fifo + s.p2_fifo and scc_total = s.p1_scc + s.p2_scc in
      addf "\n      \"iteration_reduction\": %.4f,"
        (if fifo_total > 0 then
           1.0 -. (float_of_int scc_total /. float_of_int fifo_total)
         else 0.0);
      addf "\n      \"phase_stage\": [";
      let base =
        match s.phase_points with
        | p :: _ -> p.sp_phase1_s +. p.sp_phase2_s
        | [] -> 0.0
      in
      List.iteri
        (fun i p ->
          let t = p.sp_phase1_s +. p.sp_phase2_s in
          addf
            "%s{ \"jobs\": %d, \"phase1_s\": %.6f, \"phase2_s\": %.6f, \
             \"speedup\": %.2f }"
            (if i = 0 then " " else ", ")
            p.sp_jobs p.sp_phase1_s p.sp_phase2_s
            (if t > 0.0 then base /. t else 0.0))
        s.phase_points;
      addf " ] }")
    sccs;
  addf "\n  ],\n";
  addf "  \"store\": [";
  let store_sep = ref "" in
  List.iter
    (fun s ->
      addf "%s\n    { \"workload\": \"%s\", \"cold_ms\": %.3f, \"sweep\": ["
        !store_sep s.store_workload s.cold_ms;
      store_sep := ",";
      List.iteri
        (fun i p ->
          addf
            "%s{ \"dirty_routines\": %d, \"dirty_fraction\": %.4f, \
             \"warm_ms\": %.3f, \"speedup\": %.2f, \"warm_mem_ms\": %.3f, \
             \"mem_speedup\": %.2f }"
            (if i = 0 then " " else ", ")
            p.dirty_routines p.dirty_fraction p.warm_ms p.speedup p.warm_mem_ms
            p.mem_speedup)
        s.sweep;
      addf " ] }")
    stores;
  addf "\n  ]\n}\n"

let write_json path ~scale points sccs stores =
  let buf = Buffer.create 4096 in
  json_of_points buf ~scale points sccs stores;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf))

(* --- The scaling table --------------------------------------------------- *)

let print ?(json_path = "BENCH_psg.json") ppf ~scale () =
  Format.fprintf ppf "@.=== Front-end scaling on OCaml 5 domains@.";
  Format.fprintf ppf
    "(workloads generated once and re-analysed per jobs setting; phases 1-2 \
     run under the SCC schedule; this machine recommends %d domains)@."
    (Domain.recommended_domain_count ());
  (* The store study runs first, on a clean heap: timed after the scaling
     sweep it would inherit that sweep's major heap, and the GC marking
     tax inflates every allocation-heavy run by 2-3x on this box — a
     fresh process re-running analyze is the shape being modelled. *)
  let stores =
    List.filter_map
      (fun name ->
        match Calibrate.find name with
        | None -> None
        | Some row ->
            let program = Generator.generate (Calibrate.params_of ~scale row) in
            Some (measure_store ~workload:name ~program))
      [ "gcc" ]
  in
  Gc.compact ();
  let sccs =
    List.filter_map
      (fun name ->
        match Calibrate.find name with
        | None -> None
        | Some row ->
            let program = Generator.generate (Calibrate.params_of ~scale row) in
            Some (measure_scc ~workload:name ~program))
      workload_names
  in
  Gc.compact ();
  let points = measure ~scale in
  let by_workload =
    List.filter
      (fun name -> List.exists (fun p -> String.equal p.workload name) points)
      workload_names
  in
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf "%-10s %5s %10s %10s %10s %10s@." "workload" "jobs" "total(s)"
    "frontend(s)" "speedup" "fe-speedup";
  List.iter
    (fun name ->
      let ps = List.filter (fun p -> String.equal p.workload name) points in
      let base = List.find (fun p -> p.jobs = 1) ps in
      List.iter
        (fun p ->
          let speedup t base_t = if t > 0.0 then base_t /. t else 0.0 in
          Format.fprintf ppf "%-10s %5d %10.4f %10.4f %9.2fx %9.2fx@." p.workload
            p.jobs p.total_s p.front_end_s
            (speedup p.total_s base.total_s)
            (speedup p.front_end_s base.front_end_s))
        ps;
      Format.fprintf ppf "%s@." (String.make 78 '-'))
    by_workload;
  Format.fprintf ppf "@.=== SCC-condensation schedule vs. the FIFO worklists@.";
  Format.fprintf ppf
    "(iterations = node recomputations, deterministic per component, so \
     the scc column is identical at every jobs setting; phase times are \
     best of 3)@.";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf "%-10s %6s %8s %12s %12s %9s@." "workload" "sccs" "largest"
    "p1+p2 fifo" "p1+p2 scc" "reduction";
  List.iter
    (fun s ->
      let fifo_total = s.p1_fifo + s.p2_fifo and scc_total = s.p1_scc + s.p2_scc in
      Format.fprintf ppf "%-10s %6d %8d %12d %12d %8.1f%%@." s.scc_workload
        s.scc_count s.largest_scc fifo_total scc_total
        (if fifo_total > 0 then
           100.0 *. (1.0 -. (float_of_int scc_total /. float_of_int fifo_total))
         else 0.0);
      List.iter
        (fun p ->
          Format.fprintf ppf "%-10s   jobs=%d  phase1 %.4fs  phase2 %.4fs@."
            "" p.sp_jobs p.sp_phase1_s p.sp_phase2_s)
        s.phase_points;
      Format.fprintf ppf "%s@." (String.make 78 '-'))
    sccs;
  Format.fprintf ppf "@.=== Warm-start re-analysis through the summary store@.";
  Format.fprintf ppf
    "(store written once, then k routines mutated and re-analysed warm; \
     disk = store load + analysis, mem = in-process replan + analysis)@.";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf "%-10s %8s %8s %9s %8s %9s %8s@." "workload" "dirty" "frac"
    "disk(ms)" "speedup" "mem(ms)" "speedup";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-10s %8s %8s %9.2f %8s %9s %8s@." s.store_workload
        "cold" "-" s.cold_ms "1.00x" "-" "-";
      List.iter
        (fun p ->
          Format.fprintf ppf "%-10s %8d %7.2f%% %9.2f %7.2fx %9.2f %7.2fx@."
            s.store_workload p.dirty_routines
            (100.0 *. p.dirty_fraction)
            p.warm_ms p.speedup p.warm_mem_ms p.mem_speedup)
        s.sweep;
      Format.fprintf ppf "%s@." (String.make 78 '-'))
    stores;
  write_json json_path ~scale points sccs stores;
  Format.fprintf ppf "wrote %s@." json_path
