(* The multicore scaling study: how the analysis front-end speeds up with
   the domain count, and the machine-readable BENCH_psg.json record that
   lets the performance trajectory be compared across revisions.

   Each calibrated workload is generated once, then analysed end to end at
   jobs = 1, 2, 4, 8.  Phases 1 and 2 are sequential at every setting, so
   the front-end columns (CFG build + initialization + PSG build) isolate
   the part that is expected to scale. *)

open Spike_support
open Spike_core
open Spike_synth

let jobs_list = [ 1; 2; 4; 8 ]
let workload_names = [ "gcc"; "acad" ]

type lane = { lane : int; busy_s : float; chunks : int }

type point = {
  workload : string;
  jobs : int;
  routines : int;
  instructions : int;
  total_s : float;
  front_end_s : float;
  stages : (string * float) list;
  per_domain : lane list;
  psg_nodes : int;
  psg_edges : int;
  phase1_iterations : int;
  phase2_iterations : int;
}

let front_end_stages =
  [ Analysis.stage_cfg_build; Analysis.stage_init; Analysis.stage_psg_build ]

(* Per-domain utilization comes from a second, traced, run of the same
   point: the timing run stays untraced so the recorded seconds keep the
   disabled-path overhead (a branch per probe), comparable with earlier
   revisions of this file.  Lane ids are renumbered from 0 because every
   Analysis.run spawns a fresh pool of domains, and only the chunk spans
   of the front-end are summed — that is the busy time of each domain. *)
let trace_per_domain ~program jobs =
  Spike_obs.Trace.enable ();
  ignore (Analysis.run ~jobs program);
  Spike_obs.Trace.disable ();
  List.mapi
    (fun i (_, busy_s, chunks) -> { lane = i; busy_s; chunks })
    (Spike_obs.Trace.lane_seconds ~name:"pool.chunk" ())

let measure_point ~workload ~program jobs =
  let analysis = Analysis.run ~jobs program in
  let stages = Timer.stages analysis.Analysis.timer in
  let stage_get name = try List.assoc name stages with Not_found -> 0.0 in
  {
    workload;
    jobs;
    routines = Spike_ir.Program.routine_count program;
    instructions = Spike_ir.Program.instruction_count program;
    total_s = Analysis.total_seconds analysis;
    front_end_s = List.fold_left (fun s n -> s +. stage_get n) 0.0 front_end_stages;
    stages;
    per_domain = trace_per_domain ~program jobs;
    psg_nodes = Psg.node_count analysis.Analysis.psg;
    psg_edges = Psg.edge_count analysis.Analysis.psg;
    phase1_iterations = analysis.Analysis.phase1_iterations;
    phase2_iterations = analysis.Analysis.phase2_iterations;
  }

let measure ~scale =
  List.concat_map
    (fun name ->
      match Calibrate.find name with
      | None -> []
      | Some row ->
          let program = Generator.generate (Calibrate.params_of ~scale row) in
          List.map (fun jobs -> measure_point ~workload:name ~program jobs) jobs_list)
    workload_names

(* --- BENCH_psg.json ----------------------------------------------------- *)

let json_of_points buf ~scale points =
  let field_sep = ref "" in
  let addf fmt = Printf.bprintf buf fmt in
  addf "{\n";
  addf "  \"schema\": \"spike-bench-psg/2\",\n";
  addf "  \"scale\": %.4f,\n" scale;
  addf "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  addf "  \"points\": [";
  List.iter
    (fun p ->
      addf "%s\n    {" !field_sep;
      field_sep := ",";
      addf " \"workload\": \"%s\", \"jobs\": %d," p.workload p.jobs;
      addf " \"routines\": %d, \"instructions\": %d," p.routines p.instructions;
      addf " \"total_s\": %.6f, \"front_end_s\": %.6f," p.total_s p.front_end_s;
      addf " \"stages\": {";
      List.iteri
        (fun i (name, secs) ->
          addf "%s\"%s\": %.6f" (if i = 0 then " " else ", ") name secs)
        p.stages;
      addf " },";
      addf " \"per_domain\": [";
      List.iteri
        (fun i l ->
          addf "%s{ \"lane\": %d, \"busy_s\": %.6f, \"chunks\": %d }"
            (if i = 0 then " " else ", ")
            l.lane l.busy_s l.chunks)
        p.per_domain;
      addf " ],";
      addf " \"psg_nodes\": %d, \"psg_edges\": %d," p.psg_nodes p.psg_edges;
      addf " \"phase1_iterations\": %d, \"phase2_iterations\": %d }" p.phase1_iterations
        p.phase2_iterations)
    points;
  addf "\n  ]\n}\n"

let write_json path ~scale points =
  let buf = Buffer.create 4096 in
  json_of_points buf ~scale points;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf))

(* --- The scaling table --------------------------------------------------- *)

let print ?(json_path = "BENCH_psg.json") ppf ~scale () =
  Format.fprintf ppf "@.=== Front-end scaling on OCaml 5 domains@.";
  Format.fprintf ppf
    "(workloads generated once and re-analysed per jobs setting; phases 1-2 \
     stay sequential; this machine recommends %d domains)@."
    (Domain.recommended_domain_count ());
  let points = measure ~scale in
  let by_workload =
    List.filter
      (fun name -> List.exists (fun p -> String.equal p.workload name) points)
      workload_names
  in
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf "%-10s %5s %10s %10s %10s %10s@." "workload" "jobs" "total(s)"
    "frontend(s)" "speedup" "fe-speedup";
  List.iter
    (fun name ->
      let ps = List.filter (fun p -> String.equal p.workload name) points in
      let base = List.find (fun p -> p.jobs = 1) ps in
      List.iter
        (fun p ->
          let speedup t base_t = if t > 0.0 then base_t /. t else 0.0 in
          Format.fprintf ppf "%-10s %5d %10.4f %10.4f %9.2fx %9.2fx@." p.workload
            p.jobs p.total_s p.front_end_s
            (speedup p.total_s base.total_s)
            (speedup p.front_end_s base.front_end_s))
        ps;
      Format.fprintf ppf "%s@." (String.make 78 '-'))
    by_workload;
  write_json json_path ~scale points;
  Format.fprintf ppf "wrote %s@." json_path
