(* Workload measurement: generate a calibrated synthetic program, run the
   full interprocedural analysis on it, and collect everything the paper's
   tables and figures report. *)

open Spike_support
open Spike_isa
open Spike_ir
open Spike_core
open Spike_synth

type t = {
  row : Calibrate.paper_row;
  scale : float;
  routines : int;
  blocks : int;
  instructions : int;
  supergraph_arcs : int;
  time_s : float;
  memory_mb : float;
  stages : (string * float) list;  (* stage -> seconds *)
  psg : Psg_stats.t;
  psg_nodes_without_bn : int;
  psg_edges_without_bn : int;
  entrances_per_routine : float;
  exits_per_routine : float;
  calls_per_routine : float;
  branches_per_routine : float;
  phase1_iterations : int;
  phase2_iterations : int;
}

let count_insn_kind program pred =
  Array.fold_left
    (fun n (r : Routine.t) ->
      Array.fold_left (fun n insn -> if pred insn then n + 1 else n) n r.Routine.insns)
    0 (Program.routines program)

let is_branch = function
  | Insn.Br _ | Insn.Bcond _ | Insn.Switch _ -> true
  | Insn.Li _ | Insn.Lda _ | Insn.Mov _ | Insn.Binop _ | Insn.Load _ | Insn.Store _
  | Insn.Jump_unknown _ | Insn.Call _ | Insn.Ret | Insn.Nop ->
      false

let run_benchmark ?(scale = 1.0) ?jobs (row : Calibrate.paper_row) =
  let params = Calibrate.params_of ~scale row in
  let program = Generator.generate params in
  let analysis, bytes = Memmeter.measure (fun () -> Analysis.run ?jobs program) in
  let nroutines = Program.routine_count program in
  let blocks =
    Array.fold_left (fun n cfg -> n + Spike_cfg.Cfg.block_count cfg) 0
      analysis.Analysis.cfgs
  in
  let super = Spike_supercfg.Supercfg.build program analysis.Analysis.cfgs in
  (* Rebuild the PSG without branch nodes for the Table 4 comparison
     (reusing the already-built CFGs; untimed). *)
  let psg_without =
    Psg_build.build ~branch_nodes:false
      ~entry_filters:analysis.Analysis.psg.Psg.entry_filter program
      analysis.Analysis.cfgs analysis.Analysis.defuses
  in
  let fl = float_of_int in
  let per x = fl x /. fl nroutines in
  let entrances =
    Array.fold_left (fun n (r : Routine.t) -> n + List.length r.Routine.entries) 0
      (Program.routines program)
  in
  let exits =
    Array.fold_left (fun n r -> n + Routine.exit_count r) 0 (Program.routines program)
  in
  let calls = count_insn_kind program Insn.is_call in
  let branches = count_insn_kind program is_branch in
  {
    row;
    scale;
    routines = nroutines;
    blocks;
    instructions = Program.instruction_count program;
    supergraph_arcs = Spike_supercfg.Supercfg.arc_count super;
    time_s = Analysis.total_seconds analysis;
    memory_mb = Memmeter.megabytes bytes;
    stages = Timer.stages analysis.Analysis.timer;
    psg = Psg_stats.of_psg analysis.Analysis.psg;
    psg_nodes_without_bn = Psg.node_count psg_without;
    psg_edges_without_bn = Psg.edge_count psg_without;
    entrances_per_routine = per entrances;
    exits_per_routine = per exits;
    calls_per_routine = per calls;
    branches_per_routine = per branches;
    phase1_iterations = analysis.Analysis.phase1_iterations;
    phase2_iterations = analysis.Analysis.phase2_iterations;
  }

let edge_reduction_pct m =
  if m.psg_edges_without_bn = 0 then 0.0
  else
    100.0
    *. float_of_int (m.psg_edges_without_bn - m.psg.Psg_stats.edges)
    /. float_of_int m.psg_edges_without_bn

let node_increase_pct m =
  if m.psg_nodes_without_bn = 0 then 0.0
  else
    100.0
    *. float_of_int (m.psg.Psg_stats.nodes - m.psg_nodes_without_bn)
    /. float_of_int m.psg_nodes_without_bn
