(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation on calibrated synthetic workloads, and runs a
   Bechamel micro-benchmark per table/figure code path.

   Usage:
     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- --quick      # everything at 10% scale
     dune exec bench/main.exe -- --scale 0.5
     dune exec bench/main.exe -- --table 4    # a single table
     dune exec bench/main.exe -- --figure 13
     dune exec bench/main.exe -- --jobs 4     # domains for the analysis front-end
     dune exec bench/main.exe -- --scaling    # jobs = 1/2/4/8 study + BENCH_psg.json
     dune exec bench/main.exe -- --no-bechamel *)

open Spike_synth

let scale = ref 1.0
let only_table = ref None
let only_figure = ref None
let only_ablations = ref false
let only_layout = ref false
let only_scaling = ref false
let run_bechamel = ref true
let jobs = ref None
let scaling_out = ref "BENCH_psg.json"

let args =
  [
    ("--scale", Arg.Set_float scale, "FACTOR scale workload sizes (default 1.0)");
    ("--quick", Arg.Unit (fun () -> scale := 0.1), " shorthand for --scale 0.1");
    ("--table", Arg.Int (fun n -> only_table := Some n), "N print only table N (1-5)");
    ( "--figure",
      Arg.Int (fun n -> only_figure := Some n),
      "N print only figure N (1, 13, 14, 15)" );
    ("--ablations", Arg.Set only_ablations, " print only the ablation studies");
    ("--layout", Arg.Set only_layout, " print only the code-layout study");
    ( "--scaling",
      Arg.Set only_scaling,
      " print only the multicore scaling study (writes BENCH_psg.json)" );
    ( "--scaling-out",
      Arg.Set_string scaling_out,
      "PATH where the scaling study writes its JSON (default BENCH_psg.json)" );
    ( "--jobs",
      Arg.Int (fun n -> jobs := Some n),
      "N domains for the analysis front-end (default: recommended count)" );
    ("--no-bechamel", Arg.Clear run_bechamel, " skip the Bechamel micro-benchmarks");
  ]

let narrowed () = !only_ablations || !only_layout || !only_scaling

let wants_table n =
  match (!only_table, !only_figure, narrowed ()) with
  | None, None, false -> true
  | Some t, _, _ -> t = n
  | None, _, _ -> false

let wants_figure n =
  match (!only_table, !only_figure, narrowed ()) with
  | None, None, false -> true
  | _, Some f, _ -> f = n
  | Some _, None, _ -> false
  | None, None, true -> false

let wants_ablations () =
  match (!only_table, !only_figure) with
  | None, None -> !only_ablations || not (narrowed ())
  | _ -> !only_ablations

let wants_layout () =
  match (!only_table, !only_figure) with
  | None, None -> !only_layout || not (narrowed ())
  | _ -> !only_layout

let wants_scaling () =
  match (!only_table, !only_figure) with
  | None, None -> !only_scaling || not (narrowed ())
  | _ -> !only_scaling

let measurements () =
  List.map
    (fun row ->
      Format.eprintf "measuring %-10s ...@?" row.Calibrate.name;
      let t0 = Unix.gettimeofday () in
      let m = Measure.run_benchmark ~scale:!scale ?jobs:!jobs row in
      Format.eprintf " done (%.1fs)@." (Unix.gettimeofday () -. t0);
      m)
    Calibrate.benchmarks

let sweep () =
  match Calibrate.find "gcc" with
  | None -> []
  | Some gcc ->
      List.map
        (fun factor ->
          (factor, Measure.run_benchmark ~scale:(factor *. !scale) ?jobs:!jobs gcc))
        [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

(* --- Bechamel micro-benchmarks: one Test.make per table/figure --------- *)

let bechamel_tests () =
  let open Bechamel in
  let small = Calibrate.params_of ~scale:0.02 (Option.get (Calibrate.find "gcc")) in
  let program = Generator.generate small in
  let analysis = Spike_core.Analysis.run program in
  let cfgs = analysis.Spike_core.Analysis.cfgs in
  let defuses = analysis.Spike_core.Analysis.defuses in
  let filters = analysis.Spike_core.Analysis.psg.Spike_core.Psg.entry_filter in
  let exe = Generator.generate { Params.default with Params.seed = 5 } in
  let exe_analysis = Spike_core.Analysis.run exe in
  [
    Test.make ~name:"table2/full-analysis" (Staged.stage (fun () ->
        ignore (Spike_core.Analysis.run program)));
    Test.make ~name:"table3/cfg-and-defuse" (Staged.stage (fun () ->
        Array.iter
          (fun r -> ignore (Spike_cfg.Defuse.compute (Spike_cfg.Cfg.build r)))
          (Spike_ir.Program.routines program)));
    Test.make ~name:"table4/psg-without-branch-nodes" (Staged.stage (fun () ->
        ignore
          (Spike_core.Psg_build.build ~branch_nodes:false ~entry_filters:filters
             program cfgs defuses)));
    Test.make ~name:"table5/supergraph" (Staged.stage (fun () ->
        ignore (Spike_supercfg.Supercfg.build program cfgs)));
    Test.make ~name:"figure13/psg+phases" (Staged.stage (fun () ->
        let psg =
          Spike_core.Psg_build.build ~entry_filters:filters program cfgs defuses
        in
        ignore (Spike_core.Phase1.run psg);
        ignore (Spike_core.Phase2.run psg)));
    Test.make ~name:"figure14/analysis-2x-scale" (Staged.stage (fun () ->
        let p =
          Generator.generate
            (Calibrate.params_of ~scale:0.04 (Option.get (Calibrate.find "gcc")))
        in
        ignore (Spike_core.Analysis.run p)));
    Test.make ~name:"figure15/memory-measure" (Staged.stage (fun () ->
        ignore (Spike_support.Memmeter.measure (fun () -> Spike_core.Analysis.run program))));
    Test.make ~name:"figure1/optimize" (Staged.stage (fun () ->
        ignore (Spike_opt.Opt.run exe_analysis)));
  ]

let run_bechamel_suite ppf =
  let open Bechamel in
  Format.fprintf ppf "@.=== Bechamel micro-benchmarks (one per table/figure)@.";
  Format.fprintf ppf "%s@." (String.make 100 '-');
  let tests = bechamel_tests () in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> Printf.sprintf "%12.0f ns/run" e
            | Some _ | None -> "(no estimate)"
          in
          Format.fprintf ppf "%-40s %s@." name estimate)
        analyzed)
    tests

let () =
  Arg.parse args (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) "bench";
  let ppf = Format.std_formatter in
  Format.fprintf ppf "Spike interprocedural dataflow analysis - benchmark harness@.";
  Format.fprintf ppf "(workload scale %.2f; paper numbers from a 466MHz Alpha 21164)@."
    !scale;
  if wants_table 1 then Tables.table1 ppf;
  let need_measurements =
    List.exists wants_table [ 2; 3; 4; 5 ] || List.exists wants_figure [ 13; 14; 15 ]
  in
  let ms = if need_measurements then measurements () else [] in
  if wants_table 2 then Tables.table2 ppf ms;
  if wants_table 3 then Tables.table3 ppf ms;
  if wants_table 4 then Tables.table4 ppf ms;
  if wants_table 5 then Tables.table5 ppf ms;
  if wants_figure 13 then
    Tables.figure13 ppf
      (List.filter
         (fun (m : Measure.t) ->
           String.equal m.Measure.row.Calibrate.suite "PC"
           || String.equal m.Measure.row.Calibrate.name "gcc")
         ms);
  let sw =
    if wants_figure 14 || wants_figure 15 then sweep () else []
  in
  if wants_figure 14 then Tables.figure14 ppf ms sw;
  if wants_figure 15 then Tables.figure15 ppf ms sw;
  if wants_figure 1 then Figure1.print ppf;
  if wants_ablations () then Ablations.print ppf;
  if wants_layout () then Layout_bench.print ppf;
  if wants_scaling () then Scaling.print ~json_path:!scaling_out ppf ~scale:!scale ();
  if !run_bechamel && !only_table = None && !only_figure = None && not (narrowed ())
  then run_bechamel_suite ppf
