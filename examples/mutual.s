# Hand-written example with a cyclic call graph: a mutually recursive
# even/odd pair (one recursion knot in the call graph) plus an ordinary
# helper called from inside the knot and a straight-line caller around
# it.  Exercises the SCC-condensation schedule on a non-trivial
# condensation — {even, odd} collapses to one component that both main
# and halve depend on — including the phase-parallel executor, whose
# summaries must match the sequential ones byte for byte.
.main main

.routine main .exported
  # v0 = even(10) + parity_bit(7)
  li a0, 10
  bsr ra, even
  mov v0, s1
  li a0, 7
  bsr ra, parity_bit
  addq v0, s1, v0
  ret
.end

.routine even
  # even(n) = n == 0 ? 1 : odd(n - 1)
  lda sp, -8(sp)
  stq ra, 0(sp)
  bne a0, recurse
  li v0, 1
  br out
recurse:
  subq a0, 1, a0
  bsr ra, odd
out:
  ldq ra, 0(sp)
  lda sp, 8(sp)
  ret
.end

.routine odd
  # odd(n) = n == 0 ? 0 : even(n - 1), with the zero case delegated to
  # the helper so the knot has an edge leaving the component.
  lda sp, -8(sp)
  stq ra, 0(sp)
  bne a0, recurse
  bsr ra, zero
  br out
recurse:
  subq a0, 1, a0
  bsr ra, even
out:
  ldq ra, 0(sp)
  lda sp, 8(sp)
  ret
.end

.routine zero
  li v0, 0
  ret
.end

.routine parity_bit
  # parity via the knot from a second entry point into it
  lda sp, -8(sp)
  stq ra, 0(sp)
  bsr ra, odd
  ldq ra, 0(sp)
  lda sp, 8(sp)
  ret
.end
