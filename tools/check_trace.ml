(* CI smoke checker for the observability exporters.

   check_trace TRACE.json [--metrics METRICS.json]

   Validates that TRACE.json is a well-formed Chrome trace-event file
   (parseable JSON, required fields on every event, matched begin/end,
   properly nested complete events per lane) and, when given, that
   METRICS.json matches the spike-metrics/1 schema.  Prints a one-line
   summary per file and exits non-zero on the first problem — small
   enough to run on every CI push. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Format.kasprintf (fun msg -> prerr_endline msg; exit 1) fmt

let check_trace path =
  let text = try read_file path with Sys_error msg -> fail "check_trace: %s" msg in
  match Spike_obs.Trace_check.validate_trace text with
  | Error msg -> fail "check_trace: %s: %s" path msg
  | Ok s ->
      Printf.printf "%s: ok (%d events, %d lanes, %d span names)\n" path
        s.Spike_obs.Trace_check.events s.Spike_obs.Trace_check.lanes
        (List.length s.Spike_obs.Trace_check.names)

let check_metrics path =
  let text = try read_file path with Sys_error msg -> fail "check_trace: %s" msg in
  match Spike_obs.Trace_check.validate_metrics text with
  | Error msg -> fail "check_trace: %s: %s" path msg
  | Ok metrics -> Printf.printf "%s: ok (%d metrics)\n" path (List.length metrics)

let () =
  match Array.to_list Sys.argv with
  | [ _; trace ] -> check_trace trace
  | [ _; trace; "--metrics"; metrics ] ->
      check_trace trace;
      check_metrics metrics
  | _ ->
      prerr_endline "usage: check_trace TRACE.json [--metrics METRICS.json]";
      exit 2
