lib/support/timer.mli:
