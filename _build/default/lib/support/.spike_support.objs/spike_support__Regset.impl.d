lib/support/regset.ml: Format Int List Printf String
