lib/support/timer.ml: Hashtbl Unix Vec
