lib/support/prng.mli:
