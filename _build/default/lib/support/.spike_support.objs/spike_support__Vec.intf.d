lib/support/vec.mli:
