lib/support/workset.ml: Array Bytes
