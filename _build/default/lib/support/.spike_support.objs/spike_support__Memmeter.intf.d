lib/support/memmeter.mli:
