lib/support/memmeter.ml: Gc Sys
