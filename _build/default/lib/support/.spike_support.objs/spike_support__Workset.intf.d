lib/support/workset.mli:
