lib/support/regset.mli: Format
