(** Deterministic SplitMix64 pseudo-random number generator.

    The synthetic workload generator must be reproducible across runs and
    machines, so it never touches [Random]; every stream is derived from an
    explicit seed.  SplitMix64 passes BigCrush and supports cheap stream
    splitting, which the generator uses to give each routine an independent
    stream (so changing one routine's parameters does not perturb others). *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val split : t -> t
(** [split g] derives an independent generator; [g] advances. *)

val next : t -> int
(** [next g] is a uniformly distributed non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0 .. bound - 1].  [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [lo .. hi] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p]. *)

val float : t -> float -> float
(** [float g x] is uniform in [0.0 .. x). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
