(* SplitMix64 specialised to OCaml's 63-bit ints: state updates use Int64
   arithmetic for faithfulness to the reference algorithm, outputs are
   truncated to 62 non-negative bits. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next64 g =
  g.state <- Int64.add g.state gamma;
  mix g.state

let create seed = { state = mix (Int64.of_int seed) }
let split g = { state = next64 g }

let next g =
  (* Mask to 62 bits so the result is a non-negative OCaml int everywhere. *)
  Int64.to_int (Int64.logand (next64 g) 0x3FFF_FFFF_FFFF_FFFFL)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next g mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let bool g = next g land 1 = 1
let float g x = Int64.to_float (Int64.shift_right_logical (next64 g) 11) /. 9007199254740992.0 *. x
let chance g p = float g 1.0 < p

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
