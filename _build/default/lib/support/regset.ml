(* Two immediate 32-bit halves.  OCaml ints are 63-bit on 64-bit platforms,
   so each half fits with room to spare; [mask32] keeps complements from
   leaking into the unused high bits. *)

type t = { lo : int; hi : int }

let bits = 64
let mask32 = 0xFFFF_FFFF
let empty = { lo = 0; hi = 0 }
let full = { lo = mask32; hi = mask32 }

let check r =
  if r < 0 || r >= bits then
    invalid_arg (Printf.sprintf "Regset: register %d out of range" r)

let singleton r =
  check r;
  if r < 32 then { lo = 1 lsl r; hi = 0 } else { lo = 0; hi = 1 lsl (r - 32) }

let add r s =
  check r;
  if r < 32 then { s with lo = s.lo lor (1 lsl r) }
  else { s with hi = s.hi lor (1 lsl (r - 32)) }

let remove r s =
  check r;
  if r < 32 then { s with lo = s.lo land lnot (1 lsl r) }
  else { s with hi = s.hi land lnot (1 lsl (r - 32)) }

let mem r s =
  check r;
  if r < 32 then s.lo land (1 lsl r) <> 0 else s.hi land (1 lsl (r - 32)) <> 0

let union a b = { lo = a.lo lor b.lo; hi = a.hi lor b.hi }
let inter a b = { lo = a.lo land b.lo; hi = a.hi land b.hi }
let diff a b = { lo = a.lo land lnot b.lo; hi = a.hi land lnot b.hi }
let complement a = { lo = mask32 land lnot a.lo; hi = mask32 land lnot a.hi }
let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  let c = Int.compare a.hi b.hi in
  if c <> 0 then c else Int.compare a.lo b.lo

let subset a b = a.lo land lnot b.lo = 0 && a.hi land lnot b.hi = 0
let disjoint a b = a.lo land b.lo = 0 && a.hi land b.hi = 0
let is_empty s = s.lo = 0 && s.hi = 0

let popcount32 x =
  let x = x - ((x lsr 1) land 0x5555_5555) in
  let x = (x land 0x3333_3333) + ((x lsr 2) land 0x3333_3333) in
  let x = (x + (x lsr 4)) land 0x0F0F_0F0F in
  (x * 0x0101_0101) lsr 24 land 0xFF

let cardinal s = popcount32 s.lo + popcount32 s.hi

let iter f s =
  for r = 0 to 31 do
    if s.lo land (1 lsl r) <> 0 then f r
  done;
  for r = 0 to 31 do
    if s.hi land (1 lsl r) <> 0 then f (r + 32)
  done

let fold f s init =
  let acc = ref init in
  iter (fun r -> acc := f r !acc) s;
  !acc

let for_all p s = fold (fun r ok -> ok && p r) s true
let exists p s = fold (fun r found -> found || p r) s false
let filter p s = fold (fun r acc -> if p r then add r acc else acc) s empty

let choose s =
  if is_empty s then None
  else
    let rec first n = if mem n s then n else first (n + 1) in
    Some (first 0)

let of_list rs = List.fold_left (fun s r -> add r s) empty rs
let to_list s = List.rev (fold (fun r acc -> r :: acc) s [])
let hash s = (s.hi * 0x9E3779B1) lxor s.lo

let lo_bits s = s.lo
let hi_bits s = s.hi
let of_bits ~lo ~hi = { lo = lo land mask32; hi = hi land mask32 }

let pp ?(name = fun r -> "r" ^ string_of_int r) ppf s =
  let members = to_list s in
  Format.fprintf ppf "{%s}" (String.concat ", " (List.map name members))

let to_string ?name s = Format.asprintf "%a" (pp ?name) s
