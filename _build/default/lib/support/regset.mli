(** Dense bitsets over the 64 machine registers.

    A value of type {!t} represents a set of register numbers in the range
    [0 .. 63].  The representation is two immediate 32-bit halves, so every
    set operation is a handful of machine instructions and no allocation
    beyond the result record.  These sets are the currency of the whole
    analysis: DEF/UBD per basic block, the MUST-DEF / MAY-DEF / MAY-USE
    labels on PSG edges, and the per-routine summary sets. *)

type t

val bits : int
(** Number of representable registers (64). *)

val empty : t
val full : t

val singleton : int -> t
(** [singleton r] is the set containing only register [r].
    @raise Invalid_argument if [r] is outside [0 .. bits - 1]. *)

val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
(** [subset a b] is [true] iff every member of [a] is a member of [b]. *)

val disjoint : t -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** [iter f s] applies [f] to each member of [s] in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f s init] folds [f] over the members of [s] in increasing order. *)

val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val choose : t -> int option
(** [choose s] is the smallest member of [s], if any. *)

val of_list : int list -> t
val to_list : t -> int list

val hash : t -> int

(** {2 Unboxed access}

    The interprocedural phases recompute millions of node sets; going
    through allocated set values there costs more than the bit arithmetic
    itself.  These accessors expose the two 32-bit halves so hot loops can
    work on plain ints and re-box once per node. *)

val lo_bits : t -> int
(** Bits of registers [0 .. 31]. *)

val hi_bits : t -> int
(** Bits of registers [32 .. 63]. *)

val of_bits : lo:int -> hi:int -> t
(** Inverse of [lo_bits]/[hi_bits]; masks each half to 32 bits. *)

val pp : ?name:(int -> string) -> Format.formatter -> t -> unit
(** Prints as [{r1, r5}]; [name] overrides the default ["r<n>"] rendering. *)

val to_string : ?name:(int -> string) -> t -> string
