(** Growable arrays (OCaml 5.1 predates stdlib [Dynarray]).

    Used pervasively for instruction streams, basic-block lists and PSG
    node/edge tables, where sizes are discovered incrementally but random
    access must stay O(1). *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val last : 'a t -> 'a option
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val map : ('a -> 'b) -> 'a t -> 'b t
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
