open Spike_support
open Spike_isa
open Spike_ir

type ending =
  | Ends_plain
  | Ends_call of Insn.callee
  | Ends_ret
  | Ends_switch
  | Ends_jump_unknown

type block = {
  id : int;
  first : int;
  last : int;
  succs : int array;
  preds : int array;
  ending : ending;
}

type t = {
  routine : Routine.t;
  blocks : block array;
  block_of_insn : int array;
  entry_blocks : (string * int) list;
}

let ending_of insn =
  match insn with
  | Insn.Call { callee } -> Ends_call callee
  | Insn.Ret -> Ends_ret
  | Insn.Switch _ -> Ends_switch
  | Insn.Jump_unknown _ -> Ends_jump_unknown
  | Insn.Li _ | Insn.Lda _ | Insn.Mov _ | Insn.Binop _ | Insn.Load _ | Insn.Store _
  | Insn.Br _ | Insn.Bcond _ | Insn.Nop ->
      Ends_plain

let build (routine : Routine.t) =
  let insns = routine.insns in
  let len = Array.length insns in
  assert (len > 0);
  (* Leaders: first instruction, every labelled branch target / entry, and
     every instruction following a block-ending instruction. *)
  let leader = Array.make len false in
  leader.(0) <- true;
  let mark i = if i < len then leader.(i) <- true in
  List.iter (fun entry ->
      match Routine.label_index routine entry with
      | Some i -> mark i
      | None -> assert false)
    routine.entries;
  Array.iteri
    (fun i insn ->
      List.iter
        (fun l ->
          match Routine.label_index routine l with
          | Some j -> mark j
          | None -> assert false)
        (Insn.branch_targets insn);
      if Insn.ends_block insn then mark (i + 1))
    insns;
  (* Partition into blocks. *)
  let starts = ref [] in
  for i = len - 1 downto 0 do
    if leader.(i) then starts := i :: !starts
  done;
  let starts = Array.of_list !starts in
  let nblocks = Array.length starts in
  let block_of_insn = Array.make len 0 in
  let ranges =
    Array.mapi
      (fun b first ->
        let last = if b + 1 < nblocks then starts.(b + 1) - 1 else len - 1 in
        for i = first to last do
          block_of_insn.(i) <- b
        done;
        (first, last))
      starts
  in
  let block_at insn_index = block_of_insn.(insn_index) in
  let target_block l =
    match Routine.label_index routine l with
    | Some i ->
        assert (i < len);
        block_at i
    | None -> assert false
  in
  (* Successors from each block's final instruction. *)
  let succs = Array.make nblocks [] and preds = Array.make nblocks [] in
  let add_arc src dst =
    if not (List.mem dst succs.(src)) then begin
      succs.(src) <- dst :: succs.(src);
      preds.(dst) <- src :: preds.(dst)
    end
  in
  Array.iteri
    (fun b (_, last) ->
      let insn = insns.(last) in
      List.iter (fun l -> add_arc b (target_block l)) (Insn.branch_targets insn);
      if Insn.falls_through insn then begin
        (* Validation guarantees the final instruction does not fall
           through, so last + 1 is within the routine here. *)
        assert (last + 1 < len);
        add_arc b (block_at (last + 1))
      end)
    ranges;
  let blocks =
    Array.mapi
      (fun b (first, last) ->
        {
          id = b;
          first;
          last;
          succs = Array.of_list (List.rev succs.(b));
          preds = Array.of_list (List.rev preds.(b));
          ending = ending_of insns.(last);
        })
      ranges
  in
  let entry_blocks =
    List.map
      (fun entry ->
        match Routine.label_index routine entry with
        | Some i -> (entry, block_at i)
        | None -> assert false)
      routine.entries
  in
  { routine; blocks; block_of_insn; entry_blocks }

let block_count g = Array.length g.blocks
let arc_count g = Array.fold_left (fun n b -> n + Array.length b.succs) 0 g.blocks

let call_sites g =
  Array.fold_left
    (fun acc b ->
      match b.ending with
      | Ends_call callee -> (b.id, callee) :: acc
      | Ends_plain | Ends_ret | Ends_switch | Ends_jump_unknown -> acc)
    [] g.blocks
  |> List.rev

let exit_blocks g =
  Array.fold_left
    (fun acc b ->
      match b.ending with
      | Ends_ret -> b.id :: acc
      | Ends_plain | Ends_call _ | Ends_switch | Ends_jump_unknown -> acc)
    [] g.blocks
  |> List.rev

let unknown_jump_blocks g =
  Array.fold_left
    (fun acc b ->
      match b.ending with
      | Ends_jump_unknown -> b.id :: acc
      | Ends_plain | Ends_call _ | Ends_switch | Ends_ret -> acc)
    [] g.blocks
  |> List.rev

let branch_instruction_count g =
  Array.fold_left
    (fun n insn ->
      match insn with
      | Insn.Br _ | Insn.Bcond _ | Insn.Switch _ -> n + 1
      | Insn.Li _ | Insn.Lda _ | Insn.Mov _ | Insn.Binop _ | Insn.Load _ | Insn.Store _
      | Insn.Jump_unknown _ | Insn.Call _ | Insn.Ret | Insn.Nop ->
          n)
    0 g.routine.insns

let reverse_postorder g =
  let n = Array.length g.blocks in
  let state = Array.make n `White in
  let order = Vec.create () in
  let rec visit b =
    if state.(b) = `White then begin
      state.(b) <- `Grey;
      Array.iter visit g.blocks.(b).succs;
      state.(b) <- `Black;
      Vec.push order b
    end
  in
  List.iter (fun (_, b) -> visit b) g.entry_blocks;
  for b = 0 to n - 1 do
    visit b
  done;
  let post = Vec.to_array order in
  let rpo = Array.make n 0 in
  let count = Array.length post in
  Array.iteri (fun i b -> rpo.(count - 1 - i) <- b) post;
  rpo

let pp ppf g =
  Format.fprintf ppf "cfg %s (%d blocks)@." g.routine.Routine.name (block_count g);
  Array.iter
    (fun b ->
      let kind =
        match b.ending with
        | Ends_plain -> ""
        | Ends_call _ -> " [call]"
        | Ends_ret -> " [ret]"
        | Ends_switch -> " [switch]"
        | Ends_jump_unknown -> " [jmp?]"
      in
      Format.fprintf ppf "  B%d [%d..%d]%s -> %s@." b.id b.first b.last kind
        (String.concat "," (Array.to_list (Array.map (Printf.sprintf "B%d") b.succs))))
    g.blocks
