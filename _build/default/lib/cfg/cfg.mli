(** Per-routine control-flow graphs.

    Following the paper (§3.1), a basic block is ended by a branch {e or by
    a call instruction}: the instruction after a call is the call's return
    point and must start a fresh block so the PSG can place a return node
    there.  Blocks are contiguous instruction ranges; arcs come from the
    block's final instruction (branch targets, fallthrough, and the
    fallthrough of a call to its return point). *)

open Spike_isa
open Spike_ir

type ending =
  | Ends_plain
      (** fallthrough or unconditional/conditional branch *)
  | Ends_call of Insn.callee
      (** block terminated by a call; its single CFG successor is the
          return point *)
  | Ends_ret
  | Ends_switch
      (** multiway branch through a jump table *)
  | Ends_jump_unknown
      (** indirect jump with undetermined targets; conservatively an exit
          at which all registers are live (§3.5) *)

type block = {
  id : int;
  first : int;  (** index of the block's first instruction *)
  last : int;  (** index of the block's final instruction (inclusive) *)
  succs : int array;  (** successor block ids (deduplicated) *)
  preds : int array;
  ending : ending;
}

type t = {
  routine : Routine.t;
  blocks : block array;
  block_of_insn : int array;  (** instruction index [->] containing block *)
  entry_blocks : (string * int) list;  (** entry label [->] block id *)
}

val build : Routine.t -> t
(** Partition the routine and compute arcs.  The routine must be
    well-formed ({!Spike_ir.Validate}).  Per-block DEF/UBD sets are a
    separate analysis stage; see {!Defuse}. *)

val block_count : t -> int

val arc_count : t -> int
(** Intra-routine arcs (sum of successor degrees). *)

val call_sites : t -> (int * Insn.callee) list
(** Blocks ending in calls, in block order. *)

val exit_blocks : t -> int list
(** Blocks ending in [ret]. *)

val unknown_jump_blocks : t -> int list

val branch_instruction_count : t -> int
(** Number of branch instructions ([br], conditional, switch) — the
    "Branches/Routine" statistic of Table 3. *)

val reverse_postorder : t -> int array
(** Blocks in reverse postorder from the routine's entry blocks
    (unreachable blocks appended at the end).  Good iteration order for the
    forward direction; reversed, for backward dataflow. *)

val pp : Format.formatter -> t -> unit
