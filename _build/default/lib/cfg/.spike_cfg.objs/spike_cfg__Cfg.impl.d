lib/cfg/cfg.ml: Array Format Insn List Printf Routine Spike_ir Spike_isa Spike_support String Vec
