lib/cfg/defuse.mli: Cfg Regset Spike_support
