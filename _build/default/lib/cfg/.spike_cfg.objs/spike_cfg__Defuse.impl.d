lib/cfg/defuse.ml: Array Cfg Insn Regset Routine Spike_ir Spike_isa Spike_support
