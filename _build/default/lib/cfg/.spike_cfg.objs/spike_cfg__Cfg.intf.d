lib/cfg/cfg.mli: Format Insn Routine Spike_ir Spike_isa
