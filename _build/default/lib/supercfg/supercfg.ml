open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg

type t = {
  program : Program.t;
  cfgs : Cfg.t array;
  offset : int array;  (* routine -> first global block id *)
  nblocks : int;
  succs : int list array;  (* global block id -> global successors *)
  preds : int list array;
  call_arcs : int;
  return_arcs : int;
  intra_arcs : int;
}

let global t routine block = t.offset.(routine) + block

let build program cfgs =
  let n = Array.length cfgs in
  let offset = Array.make n 0 in
  let nblocks = ref 0 in
  for r = 0 to n - 1 do
    offset.(r) <- !nblocks;
    nblocks := !nblocks + Cfg.block_count cfgs.(r)
  done;
  let nblocks = !nblocks in
  let succs = Array.make nblocks [] and preds = Array.make nblocks [] in
  let call_arcs = ref 0 and return_arcs = ref 0 and intra_arcs = ref 0 in
  let add_arc kind src dst =
    succs.(src) <- dst :: succs.(src);
    preds.(dst) <- src :: preds.(dst);
    incr kind
  in
  let t_partial =
    { program; cfgs; offset; nblocks; succs; preds; call_arcs = 0; return_arcs = 0; intra_arcs = 0 }
  in
  for r = 0 to n - 1 do
    let cfg = cfgs.(r) in
    Array.iter
      (fun (b : Cfg.block) ->
        let src = global t_partial r b.id in
        match b.ending with
        | Ends_call callee -> (
            assert (Array.length b.succs = 1);
            let return_block = global t_partial r b.succs.(0) in
            match Program.callee_summary_targets program callee with
            | None ->
                (* Unknown callee: keep the fallthrough arc; the standard
                   assumption lives in the block transfer. *)
                add_arc intra_arcs src return_block
            | Some targets ->
                List.iter
                  (fun callee_index ->
                    let callee_cfg = cfgs.(callee_index) in
                    List.iter
                      (fun (_, entry_block) ->
                        add_arc call_arcs src (global t_partial callee_index entry_block))
                      [ List.hd callee_cfg.entry_blocks ];
                    List.iter
                      (fun exit_block ->
                        add_arc return_arcs
                          (global t_partial callee_index exit_block)
                          return_block)
                      (Cfg.exit_blocks callee_cfg))
                  targets)
        | Ends_plain | Ends_switch ->
            Array.iter (fun s -> add_arc intra_arcs src (global t_partial r s)) b.succs
        | Ends_ret | Ends_jump_unknown -> ())
      cfg.blocks
  done;
  {
    program;
    cfgs;
    offset;
    nblocks;
    succs;
    preds;
    call_arcs = !call_arcs;
    return_arcs = !return_arcs;
    intra_arcs = !intra_arcs;
  }

let block_count t = t.nblocks
let arc_count t = t.call_arcs + t.return_arcs + t.intra_arcs
let call_arc_count t = t.call_arcs
let return_arc_count t = t.return_arcs

type liveness = { owner : t; live_in_sets : Regset.t array; live_out_sets : Regset.t array }

(* Per-block transfer.  [Defuse] excludes a terminating call instruction,
   whose own effect — and, for unknown callees, the calling-standard
   assumption — composes after the block body. *)
let transfer t defuses ~routine ~block out =
  let cfg = t.cfgs.(routine) in
  let b = cfg.blocks.(block) in
  let def = Defuse.def defuses.(routine) block
  and ubd = Defuse.ubd defuses.(routine) block in
  let mid =
    match b.ending with
    | Ends_call callee -> (
        let insn = cfg.routine.Routine.insns.(b.last) in
        let call_def = Insn.defs insn and call_use = Insn.uses insn in
        match Program.callee_summary_targets t.program callee with
        | Some _ ->
            (* Known callee: its use/kill effect flows through the call
               arc; only the call's own hardware effect applies here. *)
            Regset.union call_use (Regset.diff out call_def)
        | None ->
            let kill = Regset.union call_def Calling_standard.unknown_call_defined in
            Regset.union
              (Regset.union call_use Calling_standard.unknown_call_used)
              (Regset.diff out kill))
    | Ends_plain | Ends_ret | Ends_switch | Ends_jump_unknown -> out
  in
  Regset.union ubd (Regset.diff mid def)

let boundary_seed t ~routine ~block =
  let cfg = t.cfgs.(routine) in
  let b = cfg.blocks.(block) in
  let r = Program.get t.program routine in
  let main = Program.main t.program in
  match b.ending with
  | Ends_jump_unknown -> Calling_standard.unknown_jump_live
  | Ends_ret ->
      let s = ref Regset.empty in
      if r.Routine.exported then
        s := Regset.union !s Calling_standard.external_return_live;
      if String.equal r.Routine.name main then
        s := Regset.union !s Calling_standard.return_regs;
      !s
  | Ends_plain | Ends_call _ | Ends_switch -> Regset.empty

let liveness t defuses =
  let live_in_sets = Array.make t.nblocks Regset.empty in
  let live_out_sets = Array.make t.nblocks Regset.empty in
  (* Map a global id back to (routine, block). *)
  let routine_of = Array.make t.nblocks 0 in
  Array.iteri
    (fun r off ->
      for b = 0 to Cfg.block_count t.cfgs.(r) - 1 do
        routine_of.(off + b) <- r
      done)
    t.offset;
  let on_list = Array.make t.nblocks false in
  let worklist = Queue.create () in
  let push g =
    if not on_list.(g) then begin
      on_list.(g) <- true;
      Queue.add g worklist
    end
  in
  for g = 0 to t.nblocks - 1 do
    push g
  done;
  while not (Queue.is_empty worklist) do
    let g = Queue.take worklist in
    on_list.(g) <- false;
    let routine = routine_of.(g) in
    let block = g - t.offset.(routine) in
    let out =
      List.fold_left
        (fun acc s -> Regset.union acc live_in_sets.(s))
        (boundary_seed t ~routine ~block)
        t.succs.(g)
    in
    live_out_sets.(g) <- out;
    let inn = transfer t defuses ~routine ~block out in
    if not (Regset.equal inn live_in_sets.(g)) then begin
      live_in_sets.(g) <- inn;
      List.iter push t.preds.(g)
    end
  done;
  { owner = t; live_in_sets; live_out_sets }

let live_in l ~routine ~block = l.live_in_sets.(global l.owner routine block)
let live_out l ~routine ~block = l.live_out_sets.(global l.owner routine block)
