lib/supercfg/supercfg.mli: Cfg Defuse Program Regset Spike_cfg Spike_ir Spike_support
