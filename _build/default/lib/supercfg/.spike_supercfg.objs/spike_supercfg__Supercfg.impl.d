lib/supercfg/supercfg.ml: Array Calling_standard Cfg Defuse Insn List Program Queue Regset Routine Spike_cfg Spike_ir Spike_isa Spike_support String
