(** The whole-program control-flow graph baseline.

    This is the representation the paper argues {e against} using directly
    (§1, Table 5): every basic block of every routine, with ordinary arcs
    plus call arcs (call block to callee entry block) and return arcs
    (callee exit block to the call's return block).  We build it for two
    purposes:

    - {b Table 5}: counting basic blocks and arcs (including call/return
      arcs) to compare against the PSG's node and edge counts;
    - {b cross-checking}: a context-insensitive liveness over the
      supergraph merges every caller's return liveness at a callee's exits
      (it includes invalid paths), so it must be a superset of the PSG's
      meet-over-valid-paths liveness at every corresponding location.

    Calls with unknown targets are not routed through a callee; the
    calling-standard assumption (§3.5) is folded into the call block's
    transfer function and the fallthrough arc is kept. *)

open Spike_support
open Spike_ir
open Spike_cfg

type t

val build : Program.t -> Cfg.t array -> t

val block_count : t -> int
val arc_count : t -> int
(** All arcs: intra-routine, call and return arcs.  Call fallthrough arcs
    of resolved calls are replaced by their call/return arc pair. *)

val call_arc_count : t -> int
val return_arc_count : t -> int

type liveness

val liveness : t -> Defuse.t array -> liveness
(** Context-insensitive backward liveness to fixpoint over the supergraph,
    with the same boundary seeds as the PSG analysis (exported routines,
    [main], unknown jumps). *)

val live_in : liveness -> routine:int -> block:int -> Regset.t
(** Registers live at the start of a block. *)

val live_out : liveness -> routine:int -> block:int -> Regset.t
