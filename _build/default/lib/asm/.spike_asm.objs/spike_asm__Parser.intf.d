lib/asm/parser.mli: Program Spike_ir
