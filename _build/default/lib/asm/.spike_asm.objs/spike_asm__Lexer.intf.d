lib/asm/lexer.mli: Format
