lib/asm/parser.ml: Array Format Insn Lexer List Program Reg Routine Spike_ir Spike_isa
