lib/asm/summaries.ml: Buffer Format Lexer List Printf Psg Reg Regset Spike_core Spike_isa Spike_support String
