lib/asm/summaries.mli: Psg Spike_core
