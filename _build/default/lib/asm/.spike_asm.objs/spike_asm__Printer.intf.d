lib/asm/printer.mli: Format Program Spike_ir
