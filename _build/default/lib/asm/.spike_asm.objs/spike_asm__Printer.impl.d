lib/asm/printer.ml: Format Program Spike_ir
