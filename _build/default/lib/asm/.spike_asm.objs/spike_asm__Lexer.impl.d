lib/asm/lexer.ml: Format List Printf String
