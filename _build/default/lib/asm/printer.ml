open Spike_ir

(* Routine.pp already prints the exact concrete syntax; the program printer
   adds the .main header.  Keeping the syntax in one place (Routine.pp /
   Insn.pp) is what makes the round-trip guarantee cheap to maintain. *)

let pp_program = Program.pp
let to_string p = Format.asprintf "%a" pp_program p

let to_file path p =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  pp_program ppf p;
  Format.pp_print_flush ppf ();
  close_out oc
