open Spike_isa
open Spike_ir

exception Error of { line : int; message : string }

let fail line fmt = Format.kasprintf (fun message -> raise (Error { line; message })) fmt

let reg line name =
  match Reg.of_name name with
  | Some r -> r
  | None -> fail line "unknown register %s" name

(* Parse one instruction from its token list. *)
let instruction line tokens =
  let module L = Lexer in
  let reg = reg line in
  match tokens with
  | [ L.Ident "li"; L.Ident d; L.Comma; L.Int imm ] -> Insn.Li { dst = reg d; imm }
  | [ L.Ident "lda"; L.Ident d; L.Comma; L.Int offset; L.Lparen; L.Ident b; L.Rparen ] ->
      Insn.Lda { dst = reg d; base = reg b; offset }
  | [ L.Ident "mov"; L.Ident s; L.Comma; L.Ident d ] -> Insn.Mov { dst = reg d; src = reg s }
  | [ L.Ident "ldq"; L.Ident d; L.Comma; L.Int offset; L.Lparen; L.Ident b; L.Rparen ] ->
      Insn.Load { dst = reg d; base = reg b; offset }
  | [ L.Ident "stq"; L.Ident s; L.Comma; L.Int offset; L.Lparen; L.Ident b; L.Rparen ] ->
      Insn.Store { src = reg s; base = reg b; offset }
  | [ L.Ident "br"; L.Ident target ] -> Insn.Br { target }
  | [ L.Ident "jmp"; L.Lparen; L.Ident r; L.Rparen ] -> Insn.Jump_unknown { target = reg r }
  | [ L.Ident "bsr"; L.Ident ra; L.Comma; L.Ident name ] when ra = "ra" ->
      Insn.Call { callee = Insn.Direct name }
  | [ L.Ident "jsr"; L.Ident ra; L.Comma; L.Lparen; L.Ident r; L.Rparen ] when ra = "ra" ->
      Insn.Call { callee = Insn.Indirect (reg r, None) }
  | L.Ident "jsr" :: L.Ident ra :: L.Comma :: L.Lparen :: L.Ident r :: L.Rparen
    :: L.Comma :: L.Lbracket :: rest
    when ra = "ra" ->
      let rec names acc = function
        | [ L.Ident n; L.Rbracket ] -> List.rev (n :: acc)
        | L.Ident n :: L.Comma :: rest -> names (n :: acc) rest
        | _ -> fail line "malformed jsr target list"
      in
      Insn.Call { callee = Insn.Indirect (reg r, Some (names [] rest)) }
  | [ L.Ident "ret" ] -> Insn.Ret
  | [ L.Ident "nop" ] -> Insn.Nop
  | L.Ident "switch" :: L.Ident r :: L.Comma :: L.Lbracket :: rest ->
      let rec labels acc = function
        | [ L.Ident l; L.Rbracket ] -> List.rev (l :: acc)
        | L.Ident l :: L.Comma :: rest -> labels (l :: acc) rest
        | _ -> fail line "malformed switch table"
      in
      Insn.Switch { index = reg r; table = Array.of_list (labels [] rest) }
  | [ L.Ident m; L.Ident s1; L.Comma; L.Ident s2; L.Comma; L.Ident d ] -> (
      match Insn.binop_of_name m with
      | Some op -> Insn.Binop { op; dst = reg d; src1 = reg s1; src2 = Insn.Reg (reg s2) }
      | None -> fail line "unknown mnemonic %s" m)
  | [ L.Ident m; L.Ident s1; L.Comma; L.Int i; L.Comma; L.Ident d ] -> (
      match Insn.binop_of_name m with
      | Some op -> Insn.Binop { op; dst = reg d; src1 = reg s1; src2 = Insn.Imm i }
      | None -> fail line "unknown mnemonic %s" m)
  | [ L.Ident m; L.Ident s; L.Comma; L.Ident target ] -> (
      match Insn.cond_of_name m with
      | Some cond -> Insn.Bcond { cond; src = reg s; target }
      | None -> fail line "unknown mnemonic %s" m)
  | L.Ident m :: _ -> fail line "cannot parse %s instruction" m
  | _ -> fail line "expected an instruction"

type partial_routine = {
  name : string;
  exported : bool;
  mutable entries : string list; (* reversed *)
  mutable labels : (string * int) list; (* reversed *)
  mutable insns : Insn.t list; (* reversed *)
}

let parse_lines lines =
  let module L = Lexer in
  let main = ref None in
  let routines = ref [] (* reversed *) in
  let current = ref None in
  let finish_current line =
    match !current with
    | None -> fail line ".end without .routine"
    | Some p ->
        let insns = Array.of_list (List.rev p.insns) in
        let entries =
          match List.rev p.entries with
          | [] ->
              let l = p.name ^ "$entry" in
              if not (List.mem_assoc l p.labels) then p.labels <- (l, 0) :: p.labels;
              [ l ]
          | declared -> declared
        in
        let routine =
          Routine.make ~exported:p.exported ~name:p.name ~entries
            ~labels:(List.rev p.labels) insns
        in
        routines := routine :: !routines;
        current := None
  in
  List.iter
    (fun (line, tokens) ->
      match (tokens, !current) with
      | [ L.Directive "main"; L.Ident name ], None -> (
          match !main with
          | None -> main := Some name
          | Some _ -> fail line "duplicate .main directive")
      | L.Directive "routine" :: L.Ident name :: rest, None ->
          let exported =
            match rest with
            | [] -> false
            | [ L.Directive "exported" ] -> true
            | _ -> fail line "malformed .routine directive"
          in
          current := Some { name; exported; entries = []; labels = []; insns = [] }
      | [ L.Directive "end" ], Some _ -> finish_current line
      | [ L.Directive "entry"; L.Ident label ], Some p ->
          p.entries <- label :: p.entries
      | [ L.Ident label; L.Colon ], Some p ->
          if List.mem_assoc label p.labels then fail line "duplicate label %s" label
          else p.labels <- (label, List.length p.insns) :: p.labels
      | _, Some p -> p.insns <- instruction line tokens :: p.insns
      | _, None -> fail line "expected .main or .routine")
    lines;
  (match !current with
  | Some p -> fail 0 "routine %s not closed with .end" p.name
  | None -> ());
  match !main with
  | None -> fail 0 "missing .main directive"
  | Some main -> Program.make ~main (List.rev !routines)

let program_of_string source =
  match parse_lines (Lexer.tokenize source) with
  | program -> program
  | exception Lexer.Error { line; message } -> raise (Error { line; message })
  | exception Invalid_argument message -> raise (Error { line = 0; message })

let program_of_file path =
  let ic = open_in_bin path in
  let source =
    match really_input_string ic (in_channel_length ic) with
    | s ->
        close_in ic;
        s
    | exception e ->
        close_in_noerr ic;
        raise e
  in
  program_of_string source
