(** Recursive-descent parser for the textual assembly format.

    Grammar (one construct per line):
    {v
    program    ::= ".main" NAME  routine*
    routine    ::= ".routine" NAME [".exported"]  item*  ".end"
    item       ::= ".entry" LABEL | LABEL ":" | instruction
    instruction::= "li" REG "," INT
                 | "lda" REG "," INT "(" REG ")"
                 | "mov" REG "," REG
                 | BINOP REG "," (REG | INT) "," REG
                 | "ldq" REG "," INT "(" REG ")"
                 | "stq" REG "," INT "(" REG ")"
                 | "br" LABEL
                 | BCOND REG "," LABEL
                 | "switch" REG "," "[" LABEL ("," LABEL)* "]"
                 | "jmp" "(" REG ")"
                 | "bsr" "ra" "," NAME
                 | "jsr" "ra" "," "(" REG ")" ["," "[" NAME ("," NAME)* "]"]
                 | "ret" | "nop"
    v}
    [#] starts a comment.  The parser validates nothing beyond syntax; run
    {!Spike_ir.Validate.check} on the result. *)

open Spike_ir

exception Error of { line : int; message : string }
(** Raised on syntax errors, with the 1-based source line. *)

val program_of_string : string -> Program.t
(** @raise Error on malformed input (including {!Lexer.Error}, re-raised in
    this exception). *)

val program_of_file : string -> Program.t
(** Reads and parses a file.  @raise Sys_error / Error. *)
