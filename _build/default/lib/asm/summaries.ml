open Spike_support
open Spike_isa
open Spike_core

exception Error of { line : int; message : string }

let fail line fmt = Format.kasprintf (fun message -> raise (Error { line; message })) fmt

let reg line name =
  match Reg.of_name name with
  | Some r -> r
  | None -> fail line "unknown register %s" name

(* [used = { a0 , a1 }] — the brace list may be empty. *)
let set_line line tokens =
  let module L = Lexer in
  match tokens with
  | L.Ident field :: L.Equals :: L.Lbrace :: rest ->
      let rec members acc = function
        | [ L.Rbrace ] -> acc
        | [ L.Ident n; L.Rbrace ] -> Regset.add (reg line n) acc
        | L.Ident n :: L.Comma :: rest -> members (Regset.add (reg line n) acc) rest
        | _ -> fail line "malformed register set"
      in
      (field, members Regset.empty rest)
  | _ -> fail line "expected '<field> = { ... }'"

type partial = {
  name : string;
  mutable used : Regset.t option;
  mutable defined : Regset.t option;
  mutable killed : Regset.t option;
}

let of_string source =
  let module L = Lexer in
  let entries = ref [] in
  let current = ref None in
  let finish line =
    match !current with
    | None -> fail line ".end without .summary"
    | Some p ->
        let field what = function
          | Some s -> s
          | None -> fail line "summary %s is missing its %s set" p.name what
        in
        entries :=
          ( p.name,
            {
              Psg.x_used = field "used" p.used;
              x_defined = field "defined" p.defined;
              x_killed = field "killed" p.killed;
            } )
          :: !entries;
        current := None
  in
  let lines =
    match Lexer.tokenize source with
    | lines -> lines
    | exception Lexer.Error { line; message } -> raise (Error { line; message })
  in
  List.iter
    (fun (line, tokens) ->
      match (tokens, !current) with
      | [ L.Directive "summary"; L.Ident name ], None ->
          current := Some { name; used = None; defined = None; killed = None }
      | [ L.Directive "end" ], Some _ -> finish line
      | _, Some p -> (
          match set_line line tokens with
          | "used", s -> p.used <- Some s
          | "defined", s -> p.defined <- Some s
          | "killed", s -> p.killed <- Some s
          | field, _ -> fail line "unknown field %s" field)
      | _, None -> fail line "expected .summary")
    lines;
  (match !current with
  | Some p -> fail 0 "summary %s not closed with .end" p.name
  | None -> ());
  List.rev !entries

let of_file path =
  let ic = open_in_bin path in
  let source =
    match really_input_string ic (in_channel_length ic) with
    | s ->
        close_in ic;
        s
    | exception e ->
        close_in_noerr ic;
        raise e
  in
  of_string source

let lookup entries name =
  List.find_map
    (fun (n, c) -> if String.equal n name then Some c else None)
    entries

let to_string entries =
  let buffer = Buffer.create 256 in
  let set s = Regset.to_string ~name:Reg.name s in
  List.iter
    (fun (name, (c : Psg.external_class)) ->
      Buffer.add_string buffer
        (Printf.sprintf ".summary %s\n  used = %s\n  defined = %s\n  killed = %s\n.end\n"
           name (set c.Psg.x_used) (set c.Psg.x_defined) (set c.Psg.x_killed)))
    entries;
  Buffer.contents buffer
