(** Pretty-printer for programs in the textual assembly format.

    Guaranteed inverse of {!Parser}: for every well-formed program [p],
    [Parser.program_of_string (Printer.to_string p)] reconstructs [p]
    (same routines, labels, entries and instructions). *)

open Spike_ir

val pp_program : Format.formatter -> Program.t -> unit
val to_string : Program.t -> string
val to_file : string -> Program.t -> unit
