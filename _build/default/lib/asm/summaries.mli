(** Summary files: compiler/linker-provided register summaries for code
    outside the analysed image (paper §3.5).

    Spike's safety for indirect and shared-library calls rests on the
    calling-standard assumption; the paper notes that "dataflow accuracy
    can be improved if additional information is provided to Spike by the
    compiler or linker".  A summary file is that channel — one entry per
    external routine:

    {v
    # summaries for libc
    .summary memcpy
      used = {a0, a1, a2}
      defined = {v0}
      killed = {v0, t0, t1, t2, ra}
    .end
    v}

    Unlisted registers are not used/defined/killed; the sets must describe
    the external routine as seen by a caller (after its own callee-saved
    save/restores). *)

open Spike_core

exception Error of { line : int; message : string }

val of_string : string -> (string * Psg.external_class) list
(** Parse a summary file.  @raise Error with the offending 1-based line. *)

val of_file : string -> (string * Psg.external_class) list

val lookup : (string * Psg.external_class) list -> string -> Psg.external_class option
(** Resolution function in the shape {!Spike_core.Analysis.run} expects. *)

val to_string : (string * Psg.external_class) list -> string
(** Render in the concrete syntax; inverse of {!of_string}. *)
