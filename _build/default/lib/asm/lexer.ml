type token =
  | Ident of string
  | Int of int
  | Directive of string
  | Comma
  | Colon
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Equals

exception Error of { line : int; message : string }

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Int n -> Format.fprintf ppf "integer %d" n
  | Directive d -> Format.fprintf ppf "directive .%s" d
  | Comma -> Format.pp_print_string ppf "','"
  | Colon -> Format.pp_print_string ppf "':'"
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Lbracket -> Format.pp_print_string ppf "'['"
  | Rbracket -> Format.pp_print_string ppf "']'"
  | Lbrace -> Format.pp_print_string ppf "'{'"
  | Rbrace -> Format.pp_print_string ppf "'}'"
  | Equals -> Format.pp_print_string ppf "'='"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize_line line_number line =
  let n = String.length line in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let fail message = raise (Error { line = line_number; message }) in
  let rec scan i =
    if i >= n then ()
    else
      let c = line.[i] in
      if c = ' ' || c = '\t' || c = '\r' then scan (i + 1)
      else if c = '#' then () (* comment to end of line *)
      else if c = ',' then begin
        emit Comma;
        scan (i + 1)
      end
      else if c = ':' then begin
        emit Colon;
        scan (i + 1)
      end
      else if c = '(' then begin
        emit Lparen;
        scan (i + 1)
      end
      else if c = ')' then begin
        emit Rparen;
        scan (i + 1)
      end
      else if c = '[' then begin
        emit Lbracket;
        scan (i + 1)
      end
      else if c = ']' then begin
        emit Rbracket;
        scan (i + 1)
      end
      else if c = '{' then begin
        emit Lbrace;
        scan (i + 1)
      end
      else if c = '}' then begin
        emit Rbrace;
        scan (i + 1)
      end
      else if c = '=' then begin
        emit Equals;
        scan (i + 1)
      end
      else if c = '.' then begin
        let j = ref (i + 1) in
        while !j < n && is_ident_char line.[!j] do
          incr j
        done;
        if !j = i + 1 then fail "expected directive name after '.'";
        emit (Directive (String.sub line (i + 1) (!j - i - 1)));
        scan !j
      end
      else if is_digit c || (c = '-' && i + 1 < n && is_digit line.[i + 1]) then begin
        let j = ref (if c = '-' then i + 1 else i) in
        while !j < n && is_digit line.[!j] do
          incr j
        done;
        let text = String.sub line i (!j - i) in
        (match int_of_string_opt text with
        | Some v -> emit (Int v)
        | None -> fail (Printf.sprintf "integer %s out of range" text));
        scan !j
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char line.[!j] do
          incr j
        done;
        emit (Ident (String.sub line i (!j - i)));
        scan !j
      end
      else fail (Printf.sprintf "unexpected character %C" c)
  in
  scan 0;
  List.rev !tokens

let tokenize source =
  String.split_on_char '\n' source
  |> List.mapi (fun i line -> (i + 1, tokenize_line (i + 1) line))
  |> List.filter (fun (_, tokens) -> tokens <> [])
