(** Line-oriented lexer for the textual assembly format.

    The format is line-based: every directive, label definition and
    instruction occupies one line.  [#] starts a comment running to the end
    of the line.  The lexer produces one token list per non-blank line,
    tagged with its 1-based line number; the parser consumes lines. *)

type token =
  | Ident of string  (** mnemonics, register names, labels, routine names *)
  | Int of int  (** decimal integers, possibly negative *)
  | Directive of string  (** [.routine], [.entry], ... without the dot *)
  | Comma
  | Colon
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Equals

val pp_token : Format.formatter -> token -> unit

exception Error of { line : int; message : string }

val tokenize : string -> (int * token list) list
(** [tokenize source] splits [source] into lines and lexes each; blank and
    comment-only lines are dropped.
    @raise Error on an unexpected character. *)
