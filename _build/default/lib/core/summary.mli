(** Register summaries (paper §2): the product of the analysis.

    For every routine, the registers used, defined and killed by a call to
    it, and the registers live at each of its entries and exits.  These are
    the sets that let the optimizer treat a call as a single
    "call-summary instruction" and insert entry/exit pseudo-instructions
    delimiting a routine's external register traffic. *)

open Spike_support
open Spike_ir

type call_class = {
  used : Regset.t;  (** call-used: may be read before written by the call *)
  defined : Regset.t;  (** call-defined: written on every returning path *)
  killed : Regset.t;  (** call-killed: may be written by the call *)
}

type t = {
  routine : int;
  name : string;
  call_class : call_class;
      (** summary of a call to this routine's primary entry, after the
          §3.4 callee-saved filter *)
  live_at_entry : (string * Regset.t) list;
      (** entry label [->] registers live on entering there *)
  live_at_exit : (int * Regset.t) list;
      (** exit block id [->] registers live after returning from there *)
}

val extract_call_classes : Psg.t -> call_class array
(** Per-routine call classes; call after {!Phase1.run} (phase 2 overwrites
    the node MAY-USE sets these are read from). *)

val extract : Psg.t -> call_class array -> t array
(** Full summaries; call after {!Phase2.run} with the classes saved
    beforehand. *)

val site_class : Psg.t -> call_class array -> Psg.call_info -> call_class
(** The summary a specific call site observes: the merge (union of MAY
    sets, intersection of MUST) over the routines the site can target, or
    the calling-standard assumption when the target is unknown.  The call
    instruction's own hardware effect (defining [ra]) is {e not} included;
    consult {!Spike_isa.Insn.defs} for it. *)

val find : t array -> Program.t -> string -> t option
(** Summary of a routine by name. *)

val pp : Format.formatter -> t -> unit
