open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg

(* Recognise the prologue/epilogue save-restore idiom.  Everything here errs
   toward reporting nothing: a register is only filtered from the routine's
   exported summary when the save/restore evidence is complete. *)

let defines_sp insn = Regset.mem Reg.sp (Insn.defs insn)

(* The frame discipline: either sp is never defined, or the entry block's
   first instruction is [lda sp, -n(sp)] and the instruction before each ret
   is [lda sp, n(sp)], and these are the only sp definitions. *)
let frame_discipline_ok (routine : Routine.t) (cfg : Cfg.t) ~entry_block ~exit_blocks =
  let insns = routine.insns in
  let sp_defs = ref [] in
  Array.iteri (fun i insn -> if defines_sp insn then sp_defs := i :: !sp_defs) insns;
  match List.rev !sp_defs with
  | [] -> Some None
  | first :: rest -> (
      let eb = cfg.blocks.(entry_block) in
      match insns.(first) with
      | Insn.Lda { dst; base; offset }
        when dst = Reg.sp && base = Reg.sp && offset < 0 && first = eb.first ->
          let n = -offset in
          let expected =
            List.map (fun e -> cfg.blocks.(e).last - 1) exit_blocks
          in
          let is_readjust i =
            i >= 0
            &&
            match insns.(i) with
            | Insn.Lda { dst; base; offset } ->
                dst = Reg.sp && base = Reg.sp && offset = n
            | _ -> false
          in
          if
            List.for_all is_readjust expected
            && List.sort Int.compare rest = List.sort Int.compare expected
          then Some (Some n)
          else None
      | _ -> None)

type site = {
  reg : Reg.t;
  save_index : int;
  restore_indexes : int list;
}

let sites (routine : Routine.t) (cfg : Cfg.t) =
  let insns = routine.insns in
  let exit_blocks = Cfg.exit_blocks cfg in
  match (cfg.entry_blocks, Cfg.unknown_jump_blocks cfg) with
  | _, _ :: _ -> [] (* may leave without restoring *)
  | [ (_, entry_block) ], [] when Array.length cfg.blocks.(entry_block).preds = 0 -> (
      match frame_discipline_ok routine cfg ~entry_block ~exit_blocks with
      | None -> []
      | Some frame ->
          let eb = cfg.blocks.(entry_block) in
          (* Candidate saves in the entry block: store of an unclobbered
             callee-saved register to a fresh sp slot. *)
          let candidates = ref [] (* (reg, offset, save_index) *) in
          let defined = ref Regset.empty in
          let slot_taken off = List.exists (fun (_, o, _) -> o = off) !candidates in
          let body_last =
            match cfg.blocks.(entry_block).ending with
            | Ends_call _ -> eb.last - 1
            | Ends_plain | Ends_ret | Ends_switch | Ends_jump_unknown -> eb.last
          in
          for i = eb.first to body_last do
            (match insns.(i) with
            | Insn.Store { src; base; offset }
              when base = Reg.sp
                   && Regset.mem src Calling_standard.callee_saved
                   && src <> Reg.sp
                   && (not (Regset.mem src !defined))
                   && not (slot_taken offset) ->
                candidates := (src, offset, i) :: !candidates
            | _ -> ());
            defined := Regset.union !defined (Insn.defs insns.(i))
          done;
          (* The save must be the slot's only store. *)
          let sole_store (_, off, save_index) =
            let ok = ref true in
            Array.iteri
              (fun i insn ->
                match insn with
                | Insn.Store { base; offset; _ }
                  when base = Reg.sp && offset = off && i <> save_index ->
                    ok := false
                | _ -> ())
              insns;
            !ok
          in
          (* Every ret block must reload the register from the slot, with no
             later definition of it before the ret.  Returns the reload's
             index. *)
          let restored_at_exit (s, off, _) e =
            let b = cfg.blocks.(e) in
            let zone_last =
              match frame with Some _ -> b.last - 2 | None -> b.last - 1
            in
            let rec defined_after i =
              i <= b.last - 1 && (Regset.mem s (Insn.defs insns.(i)) || defined_after (i + 1))
            in
            let rec find i =
              if i > zone_last then None
              else
                match insns.(i) with
                | Insn.Load { dst; base; offset }
                  when dst = s && base = Reg.sp && offset = off ->
                    if defined_after (i + 1) then find (i + 1) else Some i
                | _ -> find (i + 1)
            in
            find b.first
          in
          let site_of ((s, _, save_index) as c) =
            if sole_store c && exit_blocks <> [] then
              let restores = List.map (restored_at_exit c) exit_blocks in
              if List.for_all Option.is_some restores then
                Some
                  {
                    reg = s;
                    save_index;
                    restore_indexes = List.filter_map Fun.id restores;
                  }
              else None
            else None
          in
          List.filter_map site_of (List.rev !candidates))
  | _, [] -> []

let saved_and_restored routine cfg =
  List.fold_left (fun acc site -> Regset.add site.reg acc) Regset.empty
    (sites routine cfg)
