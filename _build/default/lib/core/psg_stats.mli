(** PSG size statistics for the paper's Tables 3–5. *)

type t = {
  nodes : int;
  edges : int;
  flow_edges : int;
  call_return_edges : int;
  entry_nodes : int;
  exit_nodes : int;
  call_nodes : int;
  return_nodes : int;
  branch_nodes : int;
  unknown_exit_nodes : int;
}

val of_psg : Psg.t -> t

val nodes_per_routine : t -> routines:int -> float
val edges_per_routine : t -> routines:int -> float

val pp : Format.formatter -> t -> unit
