open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg

(* A source's paths begin either at the start of a block (entry and return
   nodes) or at the dispatch of a block's terminating multiway branch
   (branch nodes), i.e. after the block's own instructions. *)
type source_mode = At_block_start | After_block

type source = { src_node : int; src_block : int; mode : source_mode }

let build ?(branch_nodes = true) ?entry_filters ?(externals = fun _ -> None) program
    cfgs defuses =
  let nroutines = Program.routine_count program in
  (* §3.5: a call target resolves to a routine of the image, to external
     code with a supplied summary, or to nothing (the calling-standard
     assumption). *)
  let resolve_name name =
    match Program.find_index program name with
    | Some i -> Some (Psg.Target_routine i)
    | None -> (
        match externals name with
        | Some c -> Some (Psg.Target_external c)
        | None -> None)
  in
  let resolve_targets callee =
    match callee with
    | Insn.Direct name -> Option.map (fun t -> [ t ]) (resolve_name name)
    | Insn.Indirect (_, None) | Insn.Indirect (_, Some []) -> None
    | Insn.Indirect (_, Some names) ->
        let resolved = List.map resolve_name names in
        if List.exists Option.is_none resolved then None
        else Some (List.filter_map Fun.id resolved)
  in
  let nodes = Vec.create () in
  let edges = Vec.create () in
  let calls = Vec.create () in
  let callers_of = Array.make nroutines [] in
  let entry_nodes = Array.make nroutines [] in
  let exit_nodes = Array.make nroutines [] in
  let unknown_exit_nodes = Array.make nroutines [] in
  let new_node kind =
    let id = Vec.length nodes in
    Vec.push nodes
      {
        Psg.id;
        kind;
        may_use = Regset.empty;
        may_def = Regset.empty;
        must_def = Regset.empty;
      };
    id
  in
  let new_edge ekind src dst label =
    let edge_id = Vec.length edges in
    Vec.push edges
      {
        Psg.edge_id;
        src;
        dst;
        ekind;
        e_may_use = label.Edge_dataflow.may_use;
        e_may_def = label.Edge_dataflow.may_def;
        e_must_def = label.Edge_dataflow.must_def;
      };
    edge_id
  in
  for r = 0 to nroutines - 1 do
    let cfg = cfgs.(r) and defuse = defuses.(r) in
    let nblocks = Cfg.block_count cfg in
    (* --- Nodes and cut points --------------------------------------- *)
    let sink_of_block = Array.make nblocks None in
    let sources = ref [] in
    List.iter
      (fun (label, block) ->
        let node = new_node (Psg.Entry { routine = r; label }) in
        entry_nodes.(r) <- entry_nodes.(r) @ [ node ];
        sources := { src_node = node; src_block = block; mode = At_block_start } :: !sources)
      cfg.entry_blocks;
    Array.iter
      (fun (b : Cfg.block) ->
        match b.ending with
        | Ends_ret ->
            let node = new_node (Psg.Exit { routine = r; block = b.id }) in
            exit_nodes.(r) <- exit_nodes.(r) @ [ node ];
            sink_of_block.(b.id) <- Some node
        | Ends_jump_unknown ->
            let node = new_node (Psg.Unknown_exit { routine = r; block = b.id }) in
            unknown_exit_nodes.(r) <- unknown_exit_nodes.(r) @ [ node ];
            sink_of_block.(b.id) <- Some node
        | Ends_call callee ->
            (* A call falls through, so validation guarantees a unique
               successor: the return point. *)
            assert (Array.length b.succs = 1);
            let return_block = b.succs.(0) in
            let call_node = new_node (Psg.Call { routine = r; block = b.id }) in
            let return_node =
              new_node (Psg.Return { routine = r; call_block = b.id; block = return_block })
            in
            sink_of_block.(b.id) <- Some call_node;
            sources :=
              { src_node = return_node; src_block = return_block; mode = At_block_start }
              :: !sources;
            let call_insn = cfg.routine.Routine.insns.(b.last) in
            let cr_edge =
              new_edge Psg.Call_return call_node return_node Edge_dataflow.top_must
            in
            let targets = resolve_targets callee in
            let info =
              {
                Psg.call_node;
                return_node;
                cr_edge;
                callee;
                targets;
                call_def = Insn.defs call_insn;
                call_use = Insn.uses call_insn;
              }
            in
            let call_index = Vec.length calls in
            Vec.push calls info;
            (match targets with
            | Some resolved ->
                List.iter
                  (fun target ->
                    match target with
                    | Psg.Target_routine t ->
                        callers_of.(t) <- call_index :: callers_of.(t)
                    | Psg.Target_external _ -> ())
                  resolved
            | None -> ())
        | Ends_switch when branch_nodes ->
            let node = new_node (Psg.Branch { routine = r; block = b.id }) in
            sink_of_block.(b.id) <- Some node;
            sources := { src_node = node; src_block = b.id; mode = After_block } :: !sources
        | Ends_switch | Ends_plain -> ())
      cfg.blocks;
    (* --- Flow-summary edges ------------------------------------------ *)
    let rpo = Cfg.reverse_postorder cfg in
    let rpo_position = Array.make nblocks 0 in
    Array.iteri (fun pos b -> rpo_position.(b) <- pos) rpo;
    (* Stamped visited maps, reused across traversals of this routine. *)
    let fwd_stamp = Array.make nblocks (-1) and bwd_stamp = Array.make nblocks (-1) in
    let stamp = ref 0 in
    (* Forward reach from a source, stopping at cut blocks.  Returns the
       sinks reached; marks fwd_stamp. *)
    let forward_reach source =
      incr stamp;
      let s = !stamp in
      let sinks = ref [] in
      let rec visit b =
        if fwd_stamp.(b) <> s then begin
          fwd_stamp.(b) <- s;
          match sink_of_block.(b) with
          | Some sink -> if not (List.mem (sink, b) !sinks) then sinks := (sink, b) :: !sinks
          | None -> Array.iter visit cfg.blocks.(b).succs
        end
      in
      (match source.mode with
      | At_block_start -> visit source.src_block
      | After_block -> Array.iter visit cfg.blocks.(source.src_block).succs);
      (s, List.rev !sinks)
    in
    (* Backward reach from a sink block, not crossing other cuts.  Marks
       bwd_stamp; memoised per sink block. *)
    let bwd_cache = Hashtbl.create 8 in
    let backward_reach sink_block =
      match Hashtbl.find_opt bwd_cache sink_block with
      | Some (s, blocks) -> (s, blocks)
      | None ->
          incr stamp;
          let s = !stamp in
          let collected = Vec.create () in
          let rec visit b =
            if bwd_stamp.(b) <> s then begin
              bwd_stamp.(b) <- s;
              Vec.push collected b;
              Array.iter
                (fun p -> if sink_of_block.(p) = None then visit p)
                cfg.blocks.(b).preds
            end
          in
          visit sink_block;
          let blocks = Vec.to_array collected in
          Hashtbl.replace bwd_cache sink_block (s, blocks);
          (s, blocks)
    in
    List.iter
      (fun source ->
        let fwd_s, sinks = forward_reach source in
        List.iter
          (fun (sink_node, sink_block) ->
            let _bwd_s, bwd_blocks = backward_reach sink_block in
            (* The subgraph of this edge: blocks on source-to-sink paths. *)
            let subgraph =
              Array.of_list
                (List.filter
                   (fun b -> fwd_stamp.(b) = fwd_s)
                   (Array.to_list bwd_blocks))
            in
            let solution =
              Edge_dataflow.solve ~cfg ~defuse ~rpo_position ~blocks:subgraph
                ~sink:sink_block
            in
            let label =
              match source.mode with
              | At_block_start -> Edge_dataflow.in_of solution source.src_block
              | After_block ->
                  (* The branch node sits after the block's instructions:
                     its label merges the IN sets of the dispatch
                     targets inside the subgraph. *)
                  Array.fold_left
                    (fun acc succ ->
                      if Edge_dataflow.mem solution succ then
                        Edge_dataflow.join acc (Edge_dataflow.in_of solution succ)
                      else acc)
                    Edge_dataflow.top_must cfg.blocks.(source.src_block).succs
            in
            ignore (new_edge Psg.Flow source.src_node sink_node label))
          sinks)
      (List.rev !sources)
  done;
  (* --- Freeze ---------------------------------------------------------- *)
  let nodes = Vec.to_array nodes in
  let edges = Vec.to_array edges in
  let out_lists = Array.make (Array.length nodes) []
  and in_lists = Array.make (Array.length nodes) [] in
  Array.iter
    (fun (e : Psg.edge) ->
      out_lists.(e.src) <- e.edge_id :: out_lists.(e.src);
      in_lists.(e.dst) <- e.edge_id :: in_lists.(e.dst))
    edges;
  let out_edges = Array.map (fun l -> Array.of_list (List.rev l)) out_lists in
  let in_edges = Array.map (fun l -> Array.of_list (List.rev l)) in_lists in
  let entry_filter =
    match entry_filters with
    | Some filters ->
        if Array.length filters <> nroutines then
          invalid_arg "Psg_build.build: entry_filters length mismatch";
        filters
    | None ->
        Array.init nroutines (fun r ->
            Callee_saved.saved_and_restored (Program.get program r) cfgs.(r))
  in
  {
    Psg.program;
    nodes;
    edges;
    out_edges;
    in_edges;
    calls = Vec.to_array calls;
    callers_of = Array.map List.rev callers_of;
    entry_nodes;
    exit_nodes;
    unknown_exit_nodes;
    entry_filter;
  }
