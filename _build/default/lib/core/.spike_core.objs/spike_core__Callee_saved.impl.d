lib/core/callee_saved.ml: Array Calling_standard Cfg Fun Insn Int List Option Reg Regset Routine Spike_cfg Spike_ir Spike_isa Spike_support
