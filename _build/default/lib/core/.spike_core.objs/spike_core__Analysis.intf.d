lib/core/analysis.mli: Cfg Defuse Format Program Psg Spike_cfg Spike_ir Spike_support Summary Timer
