lib/core/phase2.ml: Array Calling_standard List Program Psg Regset Routine Spike_ir Spike_isa Spike_support Workset
