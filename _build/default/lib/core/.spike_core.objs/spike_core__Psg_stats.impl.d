lib/core/psg_stats.ml: Array Format Psg
