lib/core/phase2.mli: Psg
