lib/core/psg_build.ml: Array Callee_saved Cfg Edge_dataflow Fun Hashtbl Insn List Option Program Psg Regset Routine Spike_cfg Spike_ir Spike_isa Spike_support Vec
