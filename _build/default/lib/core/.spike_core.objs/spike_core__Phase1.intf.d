lib/core/phase1.mli: Psg
