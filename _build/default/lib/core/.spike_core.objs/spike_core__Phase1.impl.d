lib/core/phase1.ml: Array Calling_standard List Psg Regset Spike_ir Spike_isa Spike_support Workset
