lib/core/edge_dataflow.mli: Cfg Defuse Regset Spike_cfg Spike_support
