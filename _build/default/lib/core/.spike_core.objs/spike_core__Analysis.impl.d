lib/core/analysis.ml: Array Callee_saved Cfg Defuse Format List Phase1 Phase2 Program Psg Psg_build Regset Spike_cfg Spike_ir Spike_support Summary Timer
