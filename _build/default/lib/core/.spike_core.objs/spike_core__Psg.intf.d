lib/core/psg.mli: Format Insn Program Regset Spike_ir Spike_isa Spike_support
