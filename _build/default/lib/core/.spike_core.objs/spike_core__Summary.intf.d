lib/core/summary.mli: Format Program Psg Regset Spike_ir Spike_support
