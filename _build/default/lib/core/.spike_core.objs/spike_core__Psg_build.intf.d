lib/core/psg_build.mli: Cfg Defuse Program Psg Regset Spike_cfg Spike_ir Spike_support
