lib/core/callee_saved.mli: Cfg Regset Routine Spike_cfg Spike_ir Spike_isa Spike_support
