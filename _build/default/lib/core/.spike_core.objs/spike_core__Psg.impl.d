lib/core/psg.ml: Array Format Insn List Printf Program Reg Regset Routine Spike_ir Spike_isa Spike_support
