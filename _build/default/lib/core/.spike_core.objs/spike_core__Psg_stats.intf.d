lib/core/psg_stats.mli: Format Psg
