lib/core/edge_dataflow.ml: Array Cfg Defuse Hashtbl Int Printf Regset Spike_cfg Spike_support
