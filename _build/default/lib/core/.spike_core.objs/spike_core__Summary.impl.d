lib/core/summary.ml: Array Calling_standard Format List Option Program Psg Reg Regset Routine Spike_ir Spike_isa Spike_support
