type t = {
  nodes : int;
  edges : int;
  flow_edges : int;
  call_return_edges : int;
  entry_nodes : int;
  exit_nodes : int;
  call_nodes : int;
  return_nodes : int;
  branch_nodes : int;
  unknown_exit_nodes : int;
}

let of_psg (psg : Psg.t) =
  let entry = ref 0
  and exit_ = ref 0
  and call = ref 0
  and return = ref 0
  and branch = ref 0
  and unknown = ref 0 in
  Array.iter
    (fun (node : Psg.node) ->
      match node.kind with
      | Psg.Entry _ -> incr entry
      | Psg.Exit _ -> incr exit_
      | Psg.Call _ -> incr call
      | Psg.Return _ -> incr return
      | Psg.Branch _ -> incr branch
      | Psg.Unknown_exit _ -> incr unknown)
    psg.nodes;
  let flow = Psg.flow_edge_count psg in
  let total_edges = Psg.edge_count psg in
  {
    nodes = Psg.node_count psg;
    edges = total_edges;
    flow_edges = flow;
    call_return_edges = total_edges - flow;
    entry_nodes = !entry;
    exit_nodes = !exit_;
    call_nodes = !call;
    return_nodes = !return;
    branch_nodes = !branch;
    unknown_exit_nodes = !unknown;
  }

let nodes_per_routine t ~routines = float_of_int t.nodes /. float_of_int (max routines 1)
let edges_per_routine t ~routines = float_of_int t.edges /. float_of_int (max routines 1)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>psg: %d nodes (%d entry, %d exit, %d call, %d return, %d branch, %d \
     unknown-exit)@ %d edges (%d flow, %d call-return)@]"
    t.nodes t.entry_nodes t.exit_nodes t.call_nodes t.return_nodes t.branch_nodes
    t.unknown_exit_nodes t.edges t.flow_edges t.call_return_edges
