open Spike_support
open Spike_isa
open Spike_ir

type call_class = { used : Regset.t; defined : Regset.t; killed : Regset.t }

type t = {
  routine : int;
  name : string;
  call_class : call_class;
  live_at_entry : (string * Regset.t) list;
  live_at_exit : (int * Regset.t) list;
}

(* MUST-DEF's lattice top is the full bitset; strip the hardwired zero
   registers (and anything else unallocatable) from reported summaries. *)
let mask = Calling_standard.all_allocatable

let class_of_entry_node (psg : Psg.t) node_id =
  let node = psg.nodes.(node_id) in
  {
    used = Regset.inter node.may_use mask;
    defined = Regset.inter node.must_def mask;
    killed = Regset.inter node.may_def mask;
  }

let extract_call_classes (psg : Psg.t) =
  Array.init (Program.routine_count psg.program) (fun r ->
      class_of_entry_node psg (Psg.primary_entry_node psg r))

let extract (psg : Psg.t) call_classes =
  let program = psg.program in
  Array.init (Program.routine_count program) (fun r ->
      let routine = Program.get program r in
      let live_at_entry =
        List.map
          (fun node_id ->
            match psg.nodes.(node_id).kind with
            | Psg.Entry { label; _ } ->
                (label, Regset.inter psg.nodes.(node_id).may_use mask)
            | Psg.Exit _ | Psg.Call _ | Psg.Return _ | Psg.Branch _ | Psg.Unknown_exit _
              ->
                assert false)
          psg.entry_nodes.(r)
      in
      let live_at_exit =
        List.map
          (fun node_id ->
            match psg.nodes.(node_id).kind with
            | Psg.Exit { block; _ } ->
                (block, Regset.inter psg.nodes.(node_id).may_use mask)
            | Psg.Entry _ | Psg.Call _ | Psg.Return _ | Psg.Branch _ | Psg.Unknown_exit _
              ->
                assert false)
          psg.exit_nodes.(r)
      in
      {
        routine = r;
        name = routine.Routine.name;
        call_class = call_classes.(r);
        live_at_entry;
        live_at_exit;
      })

let site_class (_psg : Psg.t) call_classes (info : Psg.call_info) =
  match info.targets with
  | None ->
      {
        used = Calling_standard.unknown_call_used;
        defined = Calling_standard.unknown_call_defined;
        killed = Calling_standard.unknown_call_killed;
      }
  | Some targets ->
      List.fold_left
        (fun acc target ->
          let c =
            match target with
            | Psg.Target_routine r -> call_classes.(r)
            | Psg.Target_external x ->
                {
                  used = Regset.inter x.Psg.x_used mask;
                  defined = Regset.inter x.Psg.x_defined mask;
                  killed = Regset.inter x.Psg.x_killed mask;
                }
          in
          {
            used = Regset.union acc.used c.used;
            defined = Regset.inter acc.defined c.defined;
            killed = Regset.union acc.killed c.killed;
          })
        { used = Regset.empty; defined = mask; killed = Regset.empty }
        targets

let find summaries program name =
  Option.map (fun i -> summaries.(i)) (Program.find_index program name)

let pp ppf s =
  let pr = Regset.pp ~name:Reg.name in
  Format.fprintf ppf "@[<v2>%s:@ call-used=%a@ call-defined=%a@ call-killed=%a" s.name
    pr s.call_class.used pr s.call_class.defined pr s.call_class.killed;
  List.iter
    (fun (label, live) -> Format.fprintf ppf "@ live-at-entry(%s)=%a" label pr live)
    s.live_at_entry;
  List.iter
    (fun (block, live) -> Format.fprintf ppf "@ live-at-exit(B%d)=%a" block pr live)
    s.live_at_exit;
  Format.fprintf ppf "@]"
