(** Detection of callee-saved registers that a routine saves and restores
    (paper §3.4).

    A conforming routine preserves the callee-saved registers it touches by
    storing them to its stack frame in the prologue and reloading them
    before returning.  Such registers must not appear call-used,
    call-killed or call-defined to the routine's callers, so they are
    removed from the summary an entry node exports.

    The detector is deliberately conservative: it recognises the standard
    prologue/epilogue idiom and reports a register only when the evidence
    is complete.  A register [s] is reported iff

    - the routine has a single entry and no indirect jumps with unknown
      targets (which could leave without restoring);
    - the entry block stores [s] to a stack slot [off(sp)] before any
      definition of [s];
    - every [ret] block reloads [s] from the same slot, with no later
      definition of [s] before the [ret];
    - no other instruction stores to that slot;
    - the only definitions of [sp] are a single leading frame allocation
      [lda sp, -N(sp)] in the entry block, matched by [lda sp, N(sp)]
      immediately before each [ret] and after the reloads (or no [sp]
      adjustment at all). *)

open Spike_support
open Spike_ir
open Spike_cfg

type site = {
  reg : Spike_isa.Reg.t;
  save_index : int;  (** the prologue store *)
  restore_indexes : int list;  (** one reload per [ret] block *)
}

val sites : Routine.t -> Cfg.t -> site list
(** The detected save/restore idioms, with instruction positions — the
    optimizer's raw material for the Figure 1(d) transformation. *)

val saved_and_restored : Routine.t -> Cfg.t -> Regset.t
(** Just the registers: the §3.4 summary filter. *)
