(** Phase 1 of the interprocedural dataflow (paper §3.2).

    Computes, for every PSG node, the registers that may be used, may be
    defined, and must be defined along paths from the node's location to
    the end of its routine — including the effect of every (transitive)
    call, propagated callee-to-caller across call-return edges.  On
    convergence the sets at a routine's primary entry node are exactly the
    registers [call-used], [call-killed] and [call-defined] by a call to
    the routine.

    Deviation from the paper's Figure 8, documented in DESIGN.md: at a node
    with several outgoing edges the MAY sets combine by union and MUST-DEF
    by intersection (the figure's literal equations union everything, which
    would over-approximate must-definedness).

    The §3.4 callee-saved filter is applied each time an entry node's sets
    are recomputed, and the call instruction's own effect is folded into
    the call-return edge label, so the summary seen by a caller is
    [call ∘ callee]. *)

val run : Psg.t -> int
(** Runs to convergence, mutating the node sets and the call-return edge
    labels in place (flow edge labels are never modified).  Returns the
    number of node recomputations performed, a diagnostic for the
    convergence behaviour. *)
