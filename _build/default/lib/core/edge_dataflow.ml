open Spike_support
open Spike_cfg

type sets = { may_use : Regset.t; may_def : Regset.t; must_def : Regset.t }

let empty = { may_use = Regset.empty; may_def = Regset.empty; must_def = Regset.empty }
let top_must = { may_use = Regset.empty; may_def = Regset.empty; must_def = Regset.full }

let join a b =
  {
    may_use = Regset.union a.may_use b.may_use;
    may_def = Regset.union a.may_def b.may_def;
    must_def = Regset.inter a.must_def b.must_def;
  }

let sets_equal a b =
  Regset.equal a.may_use b.may_use
  && Regset.equal a.may_def b.may_def
  && Regset.equal a.must_def b.must_def

let apply_block ~def ~ubd out =
  {
    may_use = Regset.union ubd (Regset.diff out.may_use def);
    may_def = Regset.union out.may_def def;
    must_def = Regset.union out.must_def def;
  }

type solution = {
  position : (int, int) Hashtbl.t;  (* block id -> index into [ins] *)
  ins : sets array;
}

let solve ~cfg ~defuse ~rpo_position ~blocks ~sink =
  let n = Array.length blocks in
  let position = Hashtbl.create (2 * n) in
  (* Backward dataflow converges fastest visiting a block after its
     successors, i.e. in descending reverse-postorder position. *)
  let order = Array.copy blocks in
  Array.sort (fun a b -> Int.compare rpo_position.(b) rpo_position.(a)) order;
  Array.iteri (fun i b -> Hashtbl.replace position b i) order;
  let ins = Array.make n { empty with must_def = Regset.full } in
  let out_of b =
    if b = sink then empty
    else begin
      let acc = ref top_must and found = ref false in
      Array.iter
        (fun s ->
          match Hashtbl.find_opt position s with
          | Some i ->
              found := true;
              acc := join !acc ins.(i)
          | None -> ())
        cfg.Cfg.blocks.(b).Cfg.succs;
      (* Construction guarantees every non-sink subgraph block lies on a
         path to the sink, hence has a subgraph successor. *)
      assert !found;
      !acc
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i b ->
        let next =
          apply_block ~def:(Defuse.def defuse b) ~ubd:(Defuse.ubd defuse b) (out_of b)
        in
        if not (sets_equal next ins.(i)) then begin
          ins.(i) <- next;
          changed := true
        end)
      order
  done;
  { position; ins }

let mem sol b = Hashtbl.mem sol.position b

let in_of sol b =
  match Hashtbl.find_opt sol.position b with
  | Some i -> sol.ins.(i)
  | None -> invalid_arg (Printf.sprintf "Edge_dataflow.in_of: block %d not in subgraph" b)
