open Spike_ir

type weights = (int * int, int) Hashtbl.t

let collect_weights ?fuel program =
  let weights : weights = Hashtbl.create 64 in
  (* The caller of an [Entered] event is whichever routine executed the
     call instruction — tracked from the Executed stream. *)
  let current = ref None in
  let observer _state event =
    match event with
    | Spike_interp.Machine.Executed { routine; _ } -> current := Some routine
    | Spike_interp.Machine.Entered { routine = callee } -> (
        match !current with
        | Some caller ->
            let key = (caller, callee) in
            Hashtbl.replace weights key
              (1 + Option.value ~default:0 (Hashtbl.find_opt weights key))
        | None -> ())
    | Spike_interp.Machine.Exited _ -> ()
  in
  let outcome = Spike_interp.Machine.execute ?fuel ~observer program in
  (outcome, weights)

let edge_weight weights ~caller ~callee =
  Option.value ~default:0 (Hashtbl.find_opt weights (caller, callee))

(* Chains as arrays; each routine knows its chain id.  Merging the chains
   of edge (a, b) orients them so a sits at the tail and b at the head
   whenever the endpoints allow; otherwise plain concatenation. *)
let order program weights =
  let n = Program.routine_count program in
  let chain_of = Array.init n (fun r -> r) in
  let chains = Hashtbl.create n in
  for r = 0 to n - 1 do
    Hashtbl.replace chains r [ r ]
  done;
  (* Undirected edge weights, heaviest first. *)
  let undirected = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (a, b) w ->
      if a <> b then begin
        let key = (min a b, max a b) in
        Hashtbl.replace undirected key
          (w + Option.value ~default:0 (Hashtbl.find_opt undirected key))
      end)
    weights;
  let edges =
    Hashtbl.fold (fun k w acc -> (k, w) :: acc) undirected []
    |> List.sort (fun (_, w1) (_, w2) -> Int.compare w2 w1)
  in
  let find_chain r = Hashtbl.find chains chain_of.(r) in
  let merge (a, b) =
    let ca = chain_of.(a) and cb = chain_of.(b) in
    if ca <> cb then begin
      let la = find_chain a and lb = find_chain b in
      (* Prefer ...a ++ b...: reverse either side when the hot endpoint is
         on the wrong end and is an actual end. *)
      let la =
        if List.length la > 0 && List.hd (List.rev la) = a then la
        else if List.hd la = a then List.rev la
        else la
      in
      let lb =
        if List.length lb > 0 && List.hd lb = b then lb
        else if List.hd (List.rev lb) = b then List.rev lb
        else lb
      in
      let merged = la @ lb in
      Hashtbl.remove chains cb;
      Hashtbl.replace chains ca merged;
      List.iter (fun r -> chain_of.(r) <- ca) merged
    end
  in
  List.iter (fun (edge, _) -> merge edge) edges;
  (* Final order: main's chain first, the rest by decreasing total chain
     weight (sum of dynamic calls into/out of the chain's members). *)
  let main_index =
    match Program.find_index program (Program.main program) with
    | Some i -> i
    | None -> assert false
  in
  let routine_weight r =
    Hashtbl.fold
      (fun (a, b) w acc -> if a = r || b = r then acc + w else acc)
      weights 0
  in
  let all_chains = Hashtbl.fold (fun id l acc -> (id, l) :: acc) chains [] in
  let main_chain_id = chain_of.(main_index) in
  let rest =
    List.filter (fun (id, _) -> id <> main_chain_id) all_chains
    |> List.map (fun (id, l) ->
           (id, l, List.fold_left (fun acc r -> acc + routine_weight r) 0 l))
    |> List.sort (fun (_, _, w1) (_, _, w2) -> Int.compare w2 w1)
  in
  Array.of_list
    (find_chain main_index @ List.concat_map (fun (_, l, _) -> l) rest)

let original_order program = Array.init (Program.routine_count program) Fun.id
