(** Profile-guided routine ordering [Pettis90], as Spike applies it (paper
    §1: "code restructuring to improve instruction cache performance").

    The classic "closest-is-best" procedure-ordering algorithm: build a
    call graph weighted by dynamic call counts, then repeatedly merge the
    two routine chains joined by the heaviest remaining edge, orienting
    the chains so the hot pair lands adjacent when both are chain ends.
    Routines that call each other frequently end up close together, so
    they stop evicting each other from a direct-mapped instruction
    cache. *)

open Spike_ir

type weights
(** Dynamic call-edge weights: how often each (caller, callee) pair was
    taken in a profiling run.  Indirect calls contribute to the routine
    actually entered. *)

val collect_weights : ?fuel:int -> Program.t -> Spike_interp.Machine.outcome * weights

val edge_weight : weights -> caller:int -> callee:int -> int

val order : Program.t -> weights -> int array
(** The Pettis-Hansen ordering (a permutation of routine indices).  The
    main routine's chain is placed first; remaining chains follow in
    decreasing total weight. *)

val original_order : Program.t -> int array
(** The identity layout, for comparison. *)
