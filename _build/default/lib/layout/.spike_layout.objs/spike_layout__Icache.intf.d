lib/layout/icache.mli: Program Spike_interp Spike_ir
