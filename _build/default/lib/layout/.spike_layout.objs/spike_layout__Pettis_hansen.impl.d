lib/layout/pettis_hansen.ml: Array Fun Hashtbl Int List Option Program Spike_interp Spike_ir
