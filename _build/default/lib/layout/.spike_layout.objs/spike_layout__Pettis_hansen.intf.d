lib/layout/pettis_hansen.mli: Program Spike_interp Spike_ir
