lib/layout/icache.ml: Array Program Routine Spike_interp Spike_ir
