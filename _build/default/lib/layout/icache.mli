(** A direct-mapped instruction-cache simulator.

    Spike's headline optimization besides the Figure-1 ones is
    profile-guided code positioning [Pettis90] to improve instruction
    cache behaviour (paper §1).  Evaluating a code layout needs an
    instruction cache; this is the smallest faithful one: direct-mapped,
    indexed by instruction address, one fill per miss.

    Instruction addresses are induced by a {e layout}: an ordering of the
    program's routines, each padded to a cache-line boundary.  The
    simulator rides along an interpreter execution and counts line
    accesses and misses. *)

open Spike_ir

type config = {
  line_instructions : int;  (** instructions per cache line *)
  lines : int;  (** number of lines in the cache *)
}

val default_config : config
(** 8 instructions per line (32-byte lines), 256 lines — an 8 KB
    direct-mapped I-cache, like the 21164's. *)

type stats = {
  accesses : int;
  misses : int;
}

val miss_rate : stats -> float

val offsets : Program.t -> layout:int array -> int array
(** [offsets program ~layout] is the starting instruction address of each
    routine (indexed by routine id) when routines are placed in [layout]
    order, each aligned to the next line boundary.
    @raise Invalid_argument if [layout] is not a permutation of the
    routine indices. *)

val simulate :
  ?fuel:int -> config -> layout:int array -> Program.t -> Spike_interp.Machine.outcome * stats
(** Execute the program and simulate the I-cache under the layout. *)
