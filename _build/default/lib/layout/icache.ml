open Spike_ir

type config = { line_instructions : int; lines : int }

let default_config = { line_instructions = 8; lines = 256 }

type stats = { accesses : int; misses : int }

let miss_rate s =
  if s.accesses = 0 then 0.0 else float_of_int s.misses /. float_of_int s.accesses

let offsets program ~layout =
  let n = Program.routine_count program in
  if Array.length layout <> n then
    invalid_arg "Icache.offsets: layout length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun r ->
      if r < 0 || r >= n || seen.(r) then
        invalid_arg "Icache.offsets: layout is not a permutation";
      seen.(r) <- true)
    layout;
  let offsets = Array.make n 0 in
  let line = default_config.line_instructions in
  let cursor = ref 0 in
  Array.iter
    (fun r ->
      (* Align each routine to a line boundary, like a real linker. *)
      let aligned = (!cursor + line - 1) / line * line in
      offsets.(r) <- aligned;
      cursor := aligned + Routine.instruction_count (Program.get program r))
    layout;
  offsets

let simulate ?fuel config ~layout program =
  let offsets = offsets program ~layout in
  let tags = Array.make config.lines (-1) in
  let accesses = ref 0 and misses = ref 0 in
  let observer _state event =
    match event with
    | Spike_interp.Machine.Executed { routine; index; _ } ->
        let address = offsets.(routine) + index in
        let line = address / config.line_instructions in
        let set = line mod config.lines in
        incr accesses;
        if tags.(set) <> line then begin
          incr misses;
          tags.(set) <- line
        end
    | Spike_interp.Machine.Entered _ | Spike_interp.Machine.Exited _ -> ()
  in
  let outcome = Spike_interp.Machine.execute ?fuel ~observer program in
  (outcome, { accesses = !accesses; misses = !misses })
