lib/interp/profile.ml: Array Machine Program Routine Spike_ir
