lib/interp/machine.ml: Array Hashtbl Insn List Option Program Reg Routine Spike_ir Spike_isa
