lib/interp/machine.mli: Insn Program Reg Spike_ir Spike_isa
