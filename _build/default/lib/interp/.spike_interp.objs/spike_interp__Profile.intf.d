lib/interp/profile.mli: Machine Program Spike_ir
