lib/interp/oracle.mli: Analysis Format Machine Regset Spike_core Spike_support
