lib/interp/oracle.ml: Analysis Array Calling_standard Format Insn List Machine Program Psg Reg Regset Routine Spike_cfg Spike_core Spike_ir Spike_isa Spike_support Summary
