open Spike_ir

type t = int array array (* routine -> instruction index -> count *)

let make_counts program =
  Array.map
    (fun (r : Routine.t) -> Array.make (Routine.instruction_count r) 0)
    (Program.routines program)

let collect ?fuel program =
  let counts = make_counts program in
  let observer _state event =
    match event with
    | Machine.Executed { routine; index; _ } ->
        counts.(routine).(index) <- counts.(routine).(index) + 1
    | Machine.Entered _ | Machine.Exited _ -> ()
  in
  let outcome = Machine.execute ?fuel ~observer program in
  (outcome, counts)

let count t ~routine ~index = t.(routine).(index)
let routine_total t ~routine = Array.fold_left ( + ) 0 t.(routine)
let total t = Array.fold_left (fun acc a -> acc + Array.fold_left ( + ) 0 a) 0 t
let uniform program = Array.map (Array.map (fun _ -> 1)) (make_counts program)
