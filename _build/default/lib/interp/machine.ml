open Spike_isa
open Spike_ir

let routine_spacing = 0x100000
let routine_address i = (i + 1) * routine_spacing

let address_of_name program name =
  Option.map routine_address (Program.find_index program name)

type trap =
  | Bad_return_address of int
  | Bad_call_target of int
  | Undeclared_call_target of string
  | Unknown_routine of string
  | Unknown_jump
  | Out_of_fuel

type outcome = Halted of int | Trapped of trap

type event =
  | Executed of { routine : int; index : int; insn : Insn.t }
  | Entered of { routine : int }
  | Exited of { routine : int; exit_index : int }

type frame = { return_routine : int; return_index : int; return_address : int }

type state = {
  program : Program.t;
  regs : int array;
  memory : (int, int) Hashtbl.t;
  mutable stack : frame list;
  mutable routine : int;  (* current routine index *)
  mutable pc : int;  (* instruction index within the current routine *)
  mutable fuel : int;
  mutable executed : int;
  entry_index : int array;  (* routine -> primary entry instruction index *)
}

let stack_base = 0x8000000

let create ?(fuel = 1_000_000) program =
  let entry_index =
    Array.map
      (fun (r : Routine.t) ->
        match Routine.label_index r (Routine.primary_entry r) with
        | Some i -> i
        | None -> invalid_arg ("Machine.create: bad entry in " ^ r.Routine.name))
      (Program.routines program)
  in
  let main =
    match Program.find_index program (Program.main program) with
    | Some i -> i
    | None -> assert false (* Program.make checked it *)
  in
  let regs = Array.make Reg.count 0 in
  regs.(Reg.sp) <- stack_base;
  {
    program;
    regs;
    memory = Hashtbl.create 1024;
    stack = [];
    routine = main;
    pc = entry_index.(main);
    fuel;
    executed = 0;
    entry_index;
  }

let reg state r = if Reg.is_zero r then 0 else state.regs.(r)
let set_reg state r v = if not (Reg.is_zero r) then state.regs.(r) <- v
let mem state addr = match Hashtbl.find_opt state.memory addr with Some v -> v | None -> 0
let set_mem state addr v = Hashtbl.replace state.memory addr v
let steps state = state.executed

let eval_binop op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Mul -> a * b
  | Insn.And -> a land b
  | Insn.Or -> a lor b
  | Insn.Xor -> a lxor b
  | Insn.Sll -> a lsl (b land 63)
  | Insn.Srl -> a lsr (b land 63)
  | Insn.Cmpeq -> if a = b then 1 else 0
  | Insn.Cmplt -> if a < b then 1 else 0
  | Insn.Cmple -> if a <= b then 1 else 0

let eval_cond cond v =
  match cond with
  | Insn.Eq -> v = 0
  | Insn.Ne -> v <> 0
  | Insn.Lt -> v < 0
  | Insn.Le -> v <= 0
  | Insn.Gt -> v > 0
  | Insn.Ge -> v >= 0

(* Resolve a runtime value to a routine index under the addressing
   convention. *)
let routine_of_address state v =
  if v mod routine_spacing = 0 && v > 0 then begin
    let i = (v / routine_spacing) - 1 in
    if i < Program.routine_count state.program then Some i else None
  end
  else None

exception Trap of trap
exception Halt of int

let label_index_exn routine label =
  match Routine.label_index routine label with
  | Some i -> i
  | None -> assert false (* validated programs only *)

let resolve_call_target state callee =
  match callee with
  | Insn.Direct name -> (
      match Program.find_index state.program name with
      | Some i -> i
      | None -> raise (Trap (Unknown_routine name)))
  | Insn.Indirect (r, declared) -> (
      match routine_of_address state (reg state r) with
      | None -> raise (Trap (Bad_call_target (reg state r)))
      | Some i -> (
          match declared with
          | None -> i
          | Some names ->
              let name = (Program.get state.program i).Routine.name in
              if List.mem name names then i
              else raise (Trap (Undeclared_call_target name))))

let step state observer =
  if state.fuel <= 0 then raise (Trap Out_of_fuel);
  state.fuel <- state.fuel - 1;
  state.executed <- state.executed + 1;
  let routine_index = state.routine in
  let routine = Program.get state.program routine_index in
  let index = state.pc in
  let insn = routine.Routine.insns.(index) in
  let jump label = state.pc <- label_index_exn routine label in
  let executed () = observer state (Executed { routine = routine_index; index; insn }) in
  match insn with
  | Insn.Li { dst; imm } ->
      set_reg state dst imm;
      state.pc <- index + 1;
      executed ()
  | Insn.Lda { dst; base; offset } ->
      set_reg state dst (reg state base + offset);
      state.pc <- index + 1;
      executed ()
  | Insn.Mov { dst; src } ->
      set_reg state dst (reg state src);
      state.pc <- index + 1;
      executed ()
  | Insn.Binop { op; dst; src1; src2 } ->
      let b = match src2 with Insn.Reg r -> reg state r | Insn.Imm i -> i in
      set_reg state dst (eval_binop op (reg state src1) b);
      state.pc <- index + 1;
      executed ()
  | Insn.Load { dst; base; offset } ->
      set_reg state dst (mem state (reg state base + offset));
      state.pc <- index + 1;
      executed ()
  | Insn.Store { src; base; offset } ->
      set_mem state (reg state base + offset) (reg state src);
      state.pc <- index + 1;
      executed ()
  | Insn.Br { target } ->
      jump target;
      executed ()
  | Insn.Bcond { cond; src; target } ->
      if eval_cond cond (reg state src) then jump target else state.pc <- index + 1;
      executed ()
  | Insn.Switch { index = idx; table } ->
      jump table.(abs (reg state idx) mod Array.length table);
      executed ()
  | Insn.Jump_unknown _ -> raise (Trap Unknown_jump)
  | Insn.Nop ->
      state.pc <- index + 1;
      executed ()
  | Insn.Call { callee } ->
      let target = resolve_call_target state callee in
      let return_address = routine_address routine_index + index + 1 in
      set_reg state Reg.ra return_address;
      state.stack <-
        { return_routine = routine_index; return_index = index + 1; return_address }
        :: state.stack;
      state.routine <- target;
      state.pc <- state.entry_index.(target);
      executed ();
      observer state (Entered { routine = target })
  | Insn.Ret -> (
      match state.stack with
      | [] ->
          executed ();
          observer state (Exited { routine = routine_index; exit_index = index });
          raise (Halt (reg state Reg.v0))
      | frame :: rest ->
          if reg state Reg.ra <> frame.return_address then
            raise (Trap (Bad_return_address (reg state Reg.ra)));
          state.stack <- rest;
          state.routine <- frame.return_routine;
          state.pc <- frame.return_index;
          executed ();
          observer state (Exited { routine = routine_index; exit_index = index }))

let run ?(observer = fun _ _ -> ()) state =
  let rec loop () =
    match step state observer with
    | () -> loop ()
    | exception Halt v -> Halted v
    | exception Trap t -> Trapped t
  in
  loop ()

let execute ?fuel ?observer program =
  let state = create ?fuel program in
  run ?observer state
