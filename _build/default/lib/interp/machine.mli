(** Concrete execution of IR programs.

    The interpreter gives the IR a full operational semantics so that
    optimizations driven by the dataflow summaries can be validated by
    before/after execution, and so the summaries themselves can be checked
    against dynamically observed register traffic ({!Oracle}).

    Machine model: 64 registers of OCaml [int] values (the two hardwired
    zeros always read 0 and ignore writes), a sparse word-addressed memory
    that reads 0 when unmapped, and a shadow call stack.  Every instruction
    of routine [i] has the address [routine_address i + index]; [bsr]/[jsr]
    write the return address into [ra] and [ret] jumps to whatever [ra]
    holds, so a program that clobbers [ra] without restoring it traps —
    deliberately, as a failure-injection surface for the tests.

    Jump-table dispatch ([switch]) indexes its table modulo the table
    length (absolute value), so arbitrary generated indices stay in range. *)

open Spike_isa
open Spike_ir

val routine_address : int -> int
(** Base address of routine [i] under the fixed addressing convention;
    useful for materialising function pointers (e.g. [li pv, addr] before
    [jsr]). *)

val address_of_name : Program.t -> string -> int option

type trap =
  | Bad_return_address of int  (** [ret] with a non-return-address in [ra] *)
  | Bad_call_target of int  (** [jsr] through a register not holding a routine address *)
  | Undeclared_call_target of string
      (** runtime target of a [jsr] is outside its declared target list *)
  | Unknown_routine of string  (** direct call to a routine not in the program *)
  | Unknown_jump  (** [jmp (r)] executed: control leaves the analysed image *)
  | Out_of_fuel

type outcome =
  | Halted of int  (** [main] returned; payload is [v0], the exit status *)
  | Trapped of trap

type event =
  | Executed of { routine : int; index : int; insn : Insn.t }
      (** after the instruction's register/memory effects applied *)
  | Entered of { routine : int }  (** callee entered by a call *)
  | Exited of { routine : int; exit_index : int }  (** [ret] executed *)

type state

val create : ?fuel:int -> Program.t -> state
(** Fresh machine at the entry of the program's main routine.  [fuel]
    bounds the number of executed instructions (default 1_000_000). *)

val reg : state -> Reg.t -> int
val set_reg : state -> Reg.t -> int -> unit
val mem : state -> int -> int
val set_mem : state -> int -> int -> unit
val steps : state -> int
(** Instructions executed so far. *)

val run : ?observer:(state -> event -> unit) -> state -> outcome
(** Execute until [main] returns, a trap occurs, or fuel runs out. *)

val execute : ?fuel:int -> ?observer:(state -> event -> unit) -> Program.t -> outcome
(** [create] followed by [run]. *)
