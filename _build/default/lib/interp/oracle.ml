open Spike_support
open Spike_isa
open Spike_ir
open Spike_core

type violation = {
  check : string;
  routine : string;
  registers : Regset.t;
  detail : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s violated in %s: %a (%s)" v.check v.routine
    (Regset.pp ~name:Reg.name) v.registers v.detail

(* One observation window: registers written since it opened, and registers
   read before being written. *)
type window = { mutable written : Regset.t; mutable rbw : Regset.t }

let fresh_window () = { written = Regset.empty; rbw = Regset.empty }

let observe_insn window insn =
  let uses = Insn.uses insn and defs = Insn.defs insn in
  window.rbw <- Regset.union window.rbw (Regset.diff uses window.written);
  window.written <- Regset.union window.written defs

type call_frame = {
  frame_routine : int;
  window : window;
  entry_values : int array;  (* register snapshot at callee entry *)
}

type liveness_probe = {
  probe_routine : int;
  probe_window : window;
  expected : Regset.t;
  probe_check : string;
}

let check ?fuel ?(max_observations = 256) (analysis : Analysis.t) =
  let program = analysis.Analysis.program in
  let psg = analysis.Analysis.psg in
  let violations = ref [] in
  let report check routine registers detail =
    if not (Regset.is_empty registers) then
      violations :=
        { check; routine = (Program.get program routine).Routine.name; registers; detail }
        :: !violations
  in
  let has_unresolved_calls =
    Array.exists (fun (info : Psg.call_info) -> info.targets = None) psg.Psg.calls
  in
  let frames = ref [] in
  let probes = ref [] in
  let probe_budget = ref max_observations in
  let live_at_entry routine =
    match (analysis.Analysis.summaries.(routine)).Summary.live_at_entry with
    | (_, live) :: _ -> live
    | [] -> Regset.empty
  in
  let live_at_exit routine exit_index =
    let cfg = analysis.Analysis.cfgs.(routine) in
    let block = cfg.Spike_cfg.Cfg.block_of_insn.(exit_index) in
    match
      List.assoc_opt block (analysis.Analysis.summaries.(routine)).Summary.live_at_exit
    with
    | Some live -> live
    | None -> Regset.empty
  in
  let open_probe probe_routine expected probe_check =
    if !probe_budget > 0 then begin
      decr probe_budget;
      probes :=
        { probe_routine; probe_window = fresh_window (); expected; probe_check }
        :: !probes
    end
  in
  let close_frame state frame =
    let routine = frame.frame_routine in
    let c = analysis.Analysis.call_classes.(routine) in
    let w = frame.window in
    (* Reads before writes must be declared call-used.  Callee-saved
       registers are excused: the §3.4 save/restore idiom reads them
       transparently at any depth of the call tree (their values are
       checked below instead). *)
    report "call-used" routine
      (Regset.diff w.rbw
         (Regset.union c.Summary.used Calling_standard.callee_saved))
      "read before write not in call-used";
    (* Writes outside call-killed must have restored the entry value. *)
    let unrestored =
      Regset.filter
        (fun r -> Machine.reg state r <> frame.entry_values.(r))
        (Regset.diff w.written c.Summary.killed)
    in
    report "call-killed" routine unrestored "written, not killed, value not restored";
    if not has_unresolved_calls then
      report "call-defined" routine
        (Regset.diff c.Summary.defined w.written)
        "declared call-defined but never written"
  in
  let snapshot state = Array.init Reg.count (fun r -> Machine.reg state r) in
  let observer state event =
    match event with
    | Machine.Executed { insn; _ } ->
        List.iter (fun f -> observe_insn f.window insn) !frames;
        List.iter (fun p -> observe_insn p.probe_window insn) !probes
    | Machine.Entered { routine } ->
        frames :=
          {
            frame_routine = routine;
            window = fresh_window ();
            entry_values = snapshot state;
          }
          :: !frames;
        open_probe routine (live_at_entry routine) "live-at-entry"
    | Machine.Exited { routine; exit_index } -> (
        (match !frames with
        | frame :: rest ->
            assert (frame.frame_routine = routine);
            close_frame state frame;
            frames := rest
        | [] -> () (* main returning: it was never Entered *));
        open_probe routine (live_at_exit routine exit_index) "live-at-exit")
  in
  let outcome = Machine.execute ?fuel ~observer program in
  (match outcome with
  | Machine.Halted _ ->
      List.iter
        (fun p ->
          report p.probe_check p.probe_routine
            (Regset.diff p.probe_window.rbw
               (Regset.union p.expected Calling_standard.callee_saved))
            "read before write after this point, not in live set")
        !probes
  | Machine.Trapped _ -> ());
  (outcome, List.rev !violations)
