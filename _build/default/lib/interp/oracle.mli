(** Dynamic soundness checking of the interprocedural summaries.

    Executes a program under the interpreter while observing actual
    register traffic, and checks every observation against the statically
    computed summary sets:

    - {b call-used}: registers a call invocation read before writing must
      be in the callee's [call-used] set.  Callee-saved registers are
      excused from this check (and from the liveness checks): the §3.4
      save/restore idiom reads them transparently at any depth of the call
      tree — their {e values} are what matters, and the call-killed check
      verifies value restoration;
    - {b call-killed}: a register written during the invocation must be in
      [call-killed], or hold its entry value again when the invocation
      returns (the save/restore case);
    - {b call-defined}: every register in [call-defined] must have been
      written by the returning invocation;
    - {b live-at-entry} / {b live-at-exit}: registers read before written
      from a routine's entry (resp. from a return) to the end of a halted
      execution must be in the corresponding live set.

    The [call-defined] check assumes every call in the program resolves to
    a routine of the program (an unknown callee is summarised by the
    calling-standard {e assumption}, which concrete execution cannot
    verify); programs with unresolved calls skip that check. *)

open Spike_support
open Spike_core

type violation = {
  check : string;  (** which check failed, e.g. ["call-used"] *)
  routine : string;
  registers : Regset.t;  (** the offending registers *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?fuel:int ->
  ?max_observations:int ->
  Analysis.t ->
  Machine.outcome * violation list
(** Run the analysed program and collect soundness violations (empty on a
    sound analysis).  [max_observations] (default 256) caps the number of
    live-at-entry/exit observation windows opened, bounding overhead on
    long executions.  Liveness checks are only performed when the run
    halts normally. *)
