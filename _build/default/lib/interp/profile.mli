(** Execution profiles.

    Spike is a profile-driven optimizer; the cost model weighs each removed
    instruction by how often it executes.  A profile is gathered by running
    the program under the interpreter and counting executions per
    instruction. *)

open Spike_ir

type t

val collect : ?fuel:int -> Program.t -> Machine.outcome * t
(** Run the program and count.  Counts are valid even for trapped runs
    (they describe the executed prefix). *)

val count : t -> routine:int -> index:int -> int
(** Times instruction [index] of routine [routine] executed. *)

val routine_total : t -> routine:int -> int
val total : t -> int

val uniform : Program.t -> t
(** A profile that pretends every instruction executed once — for
    workloads that cannot run (e.g. containing unknown jumps). *)
