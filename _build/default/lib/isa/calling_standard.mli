(** The Alpha/NT calling standard (paper §3.4, §3.5).

    Register roles determine two things in the analysis:

    - which registers a routine may save and restore transparently
      (callee-saved registers are filtered out of the summary sets an entry
      node exports to its callers, §3.4);
    - the conservative summary assumed for calls and jumps whose target is
      unknown (§3.5): argument registers are call-used, return-value
      registers are call-defined, and caller-saved temporaries are
      call-killed. *)

open Spike_support

val zero_regs : Regset.t
(** The hardwired zero registers; excluded from every dataflow set. *)

val callee_saved : Regset.t
(** [s0 .. s5], [fp], [sp], [f2 .. f9]: preserved across calls. *)

val caller_saved : Regset.t
(** Everything a conforming callee may clobber: the complement of
    callee-saved and zero registers. *)

val argument_regs : Regset.t
(** [a0 .. a5] and [f16 .. f21]. *)

val return_regs : Regset.t
(** [v0] and [f0]. *)

val all_allocatable : Regset.t
(** Every register that can carry a live value (all but the zeros). *)

val unknown_call_used : Regset.t
(** Assumed MAY-USE of a call to an unknown target: argument registers plus
    [pv], [gp], [sp] and [ra] (the callee returns through [ra], which the
    call instruction itself defines). *)

val unknown_call_defined : Regset.t
(** Assumed MUST-DEF of an unknown call: the return-value registers. *)

val unknown_call_killed : Regset.t
(** Assumed MAY-DEF of an unknown call: all caller-saved registers. *)

val unknown_jump_live : Regset.t
(** Registers assumed live at the target of an indirect jump whose targets
    cannot be determined: everything allocatable. *)

val external_return_live : Regset.t
(** Registers assumed live at the exit of a routine that may be called from
    outside the analysed image (exported or address-taken): the return
    values plus everything the caller expects preserved. *)
