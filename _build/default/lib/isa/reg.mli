(** Machine registers of the Alpha-flavoured target.

    Registers are small integers: [0 .. 31] are the integer registers
    (Alpha [$0 .. $31]), [32 .. 63] are the floating-point registers
    ([$f0 .. $f31]).  The analysis treats a register purely as a bit
    position in a {!Spike_support.Regset.t}; the software names and the
    calling-standard roles live here and in {!Calling_standard}. *)

type t = int

val count : int
(** Total number of registers (64). *)

(* Integer registers by software name. *)

val v0 : t
(** [$0], integer return value. *)

val t0 : t
val t1 : t
val t2 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t
val t7 : t
(** [$1 .. $8], caller-saved temporaries. *)

val s0 : t
val s1 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
(** [$9 .. $14], callee-saved. *)

val fp : t
(** [$15], frame pointer / [s6], callee-saved. *)

val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
(** [$16 .. $21], integer argument registers. *)

val t8 : t
val t9 : t
val t10 : t
val t11 : t
(** [$22 .. $25], caller-saved temporaries. *)

val ra : t
(** [$26], return address. *)

val pv : t
(** [$27], procedure value ([t12]); holds the callee address at indirect
    calls. *)

val at : t
(** [$28], assembler temporary. *)

val gp : t
(** [$29], global pointer. *)

val sp : t
(** [$30], stack pointer. *)

val zero : t
(** [$31], hardwired zero; writes are discarded, reads yield 0. *)

val f0 : t
(** [$f0], floating-point return value. *)

val fzero : t
(** [$f31], floating-point hardwired zero. *)

val freg : int -> t
(** [freg n] is floating-point register [$f<n>].
    @raise Invalid_argument unless [0 <= n <= 31]. *)

val is_integer : t -> bool
val is_float : t -> bool

val is_zero : t -> bool
(** The two hardwired zero registers; never carry dataflow. *)

val name : t -> string
(** Software name, e.g. ["v0"], ["s3"], ["f17"]. *)

val of_name : string -> t option
(** Inverse of {!name}; also accepts raw ["r<n>"] / ["$<n>"] spellings. *)

val pp : Format.formatter -> t -> unit

val all : t list
(** All 64 registers in numeric order. *)
