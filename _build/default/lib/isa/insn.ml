open Spike_support

type label = string

type binop = Add | Sub | Mul | And | Or | Xor | Sll | Srl | Cmpeq | Cmplt | Cmple
type cond = Eq | Ne | Lt | Le | Gt | Ge
type operand = Reg of Reg.t | Imm of int
type callee = Direct of string | Indirect of Reg.t * string list option

type t =
  | Li of { dst : Reg.t; imm : int }
  | Lda of { dst : Reg.t; base : Reg.t; offset : int }
  | Mov of { dst : Reg.t; src : Reg.t }
  | Binop of { op : binop; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Load of { dst : Reg.t; base : Reg.t; offset : int }
  | Store of { src : Reg.t; base : Reg.t; offset : int }
  | Br of { target : label }
  | Bcond of { cond : cond; src : Reg.t; target : label }
  | Switch of { index : Reg.t; table : label array }
  | Jump_unknown of { target : Reg.t }
  | Call of { callee : callee }
  | Ret
  | Nop

(* Writes to the zero registers are architectural no-ops and reads of them
   never carry dataflow, so both are filtered here once and for all. *)
let def_of r = if Reg.is_zero r then Regset.empty else Regset.singleton r
let use_of r = if Reg.is_zero r then Regset.empty else Regset.singleton r
let use2 a b = Regset.union (use_of a) (use_of b)

let defs = function
  | Li { dst; _ } | Lda { dst; _ } | Mov { dst; _ } | Binop { dst; _ } | Load { dst; _ } ->
      def_of dst
  | Store _ | Br _ | Bcond _ | Switch _ | Jump_unknown _ | Ret | Nop -> Regset.empty
  | Call _ -> def_of Reg.ra

let uses = function
  | Li _ | Br _ | Nop -> Regset.empty
  | Lda { base; _ } | Load { base; _ } -> use_of base
  | Mov { src; _ } -> use_of src
  | Binop { src1; src2; _ } -> (
      match src2 with Reg r -> use2 src1 r | Imm _ -> use_of src1)
  | Store { src; base; _ } -> use2 src base
  | Bcond { src; _ } -> use_of src
  | Switch { index; _ } -> use_of index
  | Jump_unknown { target } -> use_of target
  | Call { callee } -> (
      match callee with Direct _ -> Regset.empty | Indirect (r, _) -> use_of r)
  | Ret -> use_of Reg.ra

let is_call = function
  | Call _ -> true
  | Li _ | Lda _ | Mov _ | Binop _ | Load _ | Store _ | Br _ | Bcond _ | Switch _
  | Jump_unknown _ | Ret | Nop ->
      false

let call_callee = function
  | Call { callee } -> Some callee
  | Li _ | Lda _ | Mov _ | Binop _ | Load _ | Store _ | Br _ | Bcond _ | Switch _
  | Jump_unknown _ | Ret | Nop ->
      None

let ends_block = function
  | Br _ | Bcond _ | Switch _ | Jump_unknown _ | Call _ | Ret -> true
  | Li _ | Lda _ | Mov _ | Binop _ | Load _ | Store _ | Nop -> false

let branch_targets = function
  | Br { target } -> [ target ]
  | Bcond { target; _ } -> [ target ]
  | Switch { table; _ } -> Array.to_list table
  | Li _ | Lda _ | Mov _ | Binop _ | Load _ | Store _ | Jump_unknown _ | Call _ | Ret
  | Nop ->
      []

let falls_through = function
  | Br _ | Switch _ | Jump_unknown _ | Ret -> false
  | Bcond _ | Call _ | Li _ | Lda _ | Mov _ | Binop _ | Load _ | Store _ | Nop -> true

let binop_table =
  [ (Add, "addq"); (Sub, "subq"); (Mul, "mulq"); (And, "and"); (Or, "or");
    (Xor, "xor"); (Sll, "sll"); (Srl, "srl"); (Cmpeq, "cmpeq"); (Cmplt, "cmplt");
    (Cmple, "cmple") ]

let binop_name op = List.assoc op binop_table
let binop_of_name s =
  List.find_map (fun (op, name) -> if String.equal name s then Some op else None) binop_table

let cond_table = [ (Eq, "beq"); (Ne, "bne"); (Lt, "blt"); (Le, "ble"); (Gt, "bgt"); (Ge, "bge") ]
let cond_name c = List.assoc c cond_table
let cond_of_name s =
  List.find_map (fun (c, name) -> if String.equal name s then Some c else None) cond_table

let pp ppf insn =
  let reg = Reg.name in
  match insn with
  | Li { dst; imm } -> Format.fprintf ppf "li %s, %d" (reg dst) imm
  | Lda { dst; base; offset } ->
      Format.fprintf ppf "lda %s, %d(%s)" (reg dst) offset (reg base)
  | Mov { dst; src } -> Format.fprintf ppf "mov %s, %s" (reg src) (reg dst)
  | Binop { op; dst; src1; src2 } -> (
      match src2 with
      | Reg r -> Format.fprintf ppf "%s %s, %s, %s" (binop_name op) (reg src1) (reg r) (reg dst)
      | Imm i -> Format.fprintf ppf "%s %s, %d, %s" (binop_name op) (reg src1) i (reg dst))
  | Load { dst; base; offset } ->
      Format.fprintf ppf "ldq %s, %d(%s)" (reg dst) offset (reg base)
  | Store { src; base; offset } ->
      Format.fprintf ppf "stq %s, %d(%s)" (reg src) offset (reg base)
  | Br { target } -> Format.fprintf ppf "br %s" target
  | Bcond { cond; src; target } ->
      Format.fprintf ppf "%s %s, %s" (cond_name cond) (reg src) target
  | Switch { index; table } ->
      Format.fprintf ppf "switch %s, [%s]" (reg index)
        (String.concat ", " (Array.to_list table))
  | Jump_unknown { target } -> Format.fprintf ppf "jmp (%s)" (reg target)
  | Call { callee } -> (
      match callee with
      | Direct name -> Format.fprintf ppf "bsr ra, %s" name
      | Indirect (r, None) -> Format.fprintf ppf "jsr ra, (%s)" (reg r)
      | Indirect (r, Some names) ->
          Format.fprintf ppf "jsr ra, (%s), [%s]" (reg r) (String.concat ", " names))
  | Ret -> Format.pp_print_string ppf "ret"
  | Nop -> Format.pp_print_string ppf "nop"

let to_string insn = Format.asprintf "%a" pp insn
