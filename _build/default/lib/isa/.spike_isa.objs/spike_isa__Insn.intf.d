lib/isa/insn.mli: Format Reg Regset Spike_support
