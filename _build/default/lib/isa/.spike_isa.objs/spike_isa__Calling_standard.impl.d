lib/isa/calling_standard.ml: List Reg Regset Spike_support
