lib/isa/calling_standard.mli: Regset Spike_support
