lib/isa/reg.ml: Array Format Fun Hashtbl List Printf
