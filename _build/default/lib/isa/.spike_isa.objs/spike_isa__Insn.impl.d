lib/isa/insn.ml: Array Format List Reg Regset Spike_support String
