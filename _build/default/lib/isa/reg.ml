type t = int

let count = 64
let v0 = 0
let t0 = 1
let t1 = 2
let t2 = 3
let t3 = 4
let t4 = 5
let t5 = 6
let t6 = 7
let t7 = 8
let s0 = 9
let s1 = 10
let s2 = 11
let s3 = 12
let s4 = 13
let s5 = 14
let fp = 15
let a0 = 16
let a1 = 17
let a2 = 18
let a3 = 19
let a4 = 20
let a5 = 21
let t8 = 22
let t9 = 23
let t10 = 24
let t11 = 25
let ra = 26
let pv = 27
let at = 28
let gp = 29
let sp = 30
let zero = 31
let f0 = 32
let fzero = 63

let freg n =
  if n < 0 || n > 31 then invalid_arg (Printf.sprintf "Reg.freg: $f%d" n);
  32 + n

let is_integer r = r >= 0 && r < 32
let is_float r = r >= 32 && r < 64
let is_zero r = r = zero || r = fzero

let integer_names =
  [| "v0"; "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"; "s0"; "s1"; "s2";
     "s3"; "s4"; "s5"; "fp"; "a0"; "a1"; "a2"; "a3"; "a4"; "a5"; "t8"; "t9";
     "t10"; "t11"; "ra"; "pv"; "at"; "gp"; "sp"; "zero" |]

let name r =
  if is_integer r then integer_names.(r)
  else if is_float r then "f" ^ string_of_int (r - 32)
  else invalid_arg (Printf.sprintf "Reg.name: %d" r)

let name_table =
  let table = Hashtbl.create 128 in
  for r = 0 to count - 1 do
    Hashtbl.replace table (name r) r
  done;
  (* Raw spellings accepted by the parser. *)
  for r = 0 to 31 do
    Hashtbl.replace table ("r" ^ string_of_int r) r;
    Hashtbl.replace table ("$" ^ string_of_int r) r
  done;
  table

let of_name s = Hashtbl.find_opt name_table s
let pp ppf r = Format.pp_print_string ppf (name r)
let all = List.init count Fun.id
