(** Instructions of the Alpha-flavoured IR.

    The instruction set is deliberately small but covers every shape the
    analysis cares about: register-to-register arithmetic, loads and stores,
    two-way conditional branches, jump-table multiway branches (§3.5/§3.6),
    indirect jumps with unknown targets, direct and indirect calls, and
    returns.  Register classes are not enforced: floating-point registers
    participate in the same operations, since the analysis only observes
    def/use bit positions. *)

open Spike_support

type label = string
(** Branch targets inside a routine.  Resolved to block ids by
    {!Spike_cfg}. *)

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Sll  (** shift left logical *)
  | Srl  (** shift right logical *)
  | Cmpeq
  | Cmplt
  | Cmple

type cond = Eq | Ne | Lt | Le | Gt | Ge
(** Branch conditions, testing a register against zero (Alpha style). *)

type operand = Reg of Reg.t | Imm of int

type callee =
  | Direct of string
      (** [bsr ra, name]: call a routine known statically. *)
  | Indirect of Reg.t * string list option
      (** [jsr ra, (r)]: call through a register.  [Some names] when the
          possible targets are known (e.g. recovered from relocation or
          provided by the linker, §3.5); [None] for a fully unknown target,
          analysed under the calling-standard assumption. *)

type t =
  | Li of { dst : Reg.t; imm : int }  (** load immediate *)
  | Lda of { dst : Reg.t; base : Reg.t; offset : int }
      (** address arithmetic: [dst <- base + offset] *)
  | Mov of { dst : Reg.t; src : Reg.t }
  | Binop of { op : binop; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Load of { dst : Reg.t; base : Reg.t; offset : int }
  | Store of { src : Reg.t; base : Reg.t; offset : int }
  | Br of { target : label }  (** unconditional branch *)
  | Bcond of { cond : cond; src : Reg.t; target : label }
      (** conditional branch; falls through when the test fails *)
  | Switch of { index : Reg.t; table : label array }
      (** multiway branch through an extracted jump table *)
  | Jump_unknown of { target : Reg.t }
      (** indirect jump whose targets could not be determined *)
  | Call of { callee : callee }
  | Ret
  | Nop

val defs : t -> Regset.t
(** Registers written by the instruction, as seen at the instruction itself
    (a call defines [ra]; the callee's effect is modelled separately by the
    call summary).  Writes to the hardwired zero registers are discarded. *)

val uses : t -> Regset.t
(** Registers read by the instruction.  Reads of the zero registers are not
    uses (they never carry a live value). *)

val is_call : t -> bool

val call_callee : t -> callee option

val ends_block : t -> bool
(** True for every instruction that terminates a basic block: branches,
    switches, unknown jumps, returns — and calls, since the analysis ends
    blocks at call instructions (§4). *)

val branch_targets : t -> label list
(** Intra-routine successor labels named by the instruction (empty for
    calls, returns and unknown jumps). *)

val falls_through : t -> bool
(** True when control may continue to the next instruction: ordinary
    instructions, failed conditional branches, and calls (which return). *)

val binop_name : binop -> string
val binop_of_name : string -> binop option
val cond_name : cond -> string
val cond_of_name : string -> cond option

val pp : Format.formatter -> t -> unit
(** Assembly rendering, e.g. [addq t0, t1, v0] or [bsr ra, fact]. *)

val to_string : t -> string
