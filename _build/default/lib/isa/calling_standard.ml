open Spike_support

let zero_regs = Regset.of_list [ Reg.zero; Reg.fzero ]

let callee_saved =
  let integer = [ Reg.s0; Reg.s1; Reg.s2; Reg.s3; Reg.s4; Reg.s5; Reg.fp; Reg.sp ] in
  let floating = List.init 8 (fun i -> Reg.freg (2 + i)) in
  Regset.of_list (integer @ floating)

let all_allocatable = Regset.diff Regset.full zero_regs
let caller_saved = Regset.diff all_allocatable callee_saved

let argument_regs =
  let integer = [ Reg.a0; Reg.a1; Reg.a2; Reg.a3; Reg.a4; Reg.a5 ] in
  let floating = List.init 6 (fun i -> Reg.freg (16 + i)) in
  Regset.of_list (integer @ floating)

let return_regs = Regset.of_list [ Reg.v0; Reg.f0 ]

let unknown_call_used =
  Regset.union argument_regs (Regset.of_list [ Reg.pv; Reg.gp; Reg.sp; Reg.ra ])

let unknown_call_defined = return_regs
let unknown_call_killed = caller_saved
let unknown_jump_live = all_allocatable
let external_return_live = Regset.union return_regs callee_saved
