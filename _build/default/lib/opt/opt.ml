open Spike_ir
open Spike_core

type report = {
  spills_removed : int;
  save_restores_rewritten : int;
  save_restore_instructions_removed : int;
  dead_instructions_removed : int;
  instructions_before : int;
  instructions_after : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>spill pairs removed:        %d@ save/restores reallocated:  %d (-%d \
     instructions)@ dead instructions removed:  %d@ instructions: %d -> %d \
     (%.1f%%)@]"
    r.spills_removed r.save_restores_rewritten r.save_restore_instructions_removed
    r.dead_instructions_removed r.instructions_before r.instructions_after
    (if r.instructions_before = 0 then 0.0
     else
       100.0
       *. float_of_int (r.instructions_before - r.instructions_after)
       /. float_of_int r.instructions_before)

let run (analysis : Analysis.t) =
  let instructions_before = Program.instruction_count analysis.Analysis.program in
  let program, spill_removals = Spill.apply analysis in
  let analysis = Analysis.rerun analysis program in
  let program, renamings = Save_restore.apply analysis in
  let analysis = Analysis.rerun analysis program in
  let program, dead = Dead_code.eliminate analysis in
  let report =
    {
      spills_removed = List.length spill_removals;
      save_restores_rewritten = List.length renamings;
      save_restore_instructions_removed =
        List.fold_left
          (fun n (r : Save_restore.renaming) -> n + r.Save_restore.removed_instructions)
          0 renamings;
      dead_instructions_removed = dead;
      instructions_before;
      instructions_after = Program.instruction_count program;
    }
  in
  (program, report)
