(** Routine surgery: instruction deletion and register renaming.

    Both operations preserve well-formedness: labels (including entry
    labels and end-of-routine labels) are remapped across deletions, and a
    label pointing at a deleted instruction moves to the next surviving
    one — which is behaviour-preserving exactly because the optimizer only
    deletes instructions whose effects are dead. *)

open Spike_isa
open Spike_ir

val delete_instructions : Routine.t -> int list -> Routine.t
(** [delete_instructions r indexes] removes the instructions at the given
    indexes (duplicates allowed, any order).  Block-terminating
    instructions (branches, calls, returns, switches) must not be deleted.
    @raise Invalid_argument on an out-of-range index or a terminator. *)

val rename_register :
  Routine.t -> from_reg:Reg.t -> to_reg:Reg.t -> except:int list -> Routine.t
(** Rename every occurrence of [from_reg] (as source or destination, in
    any operand position) to [to_reg], except in the instructions whose
    indexes are listed in [except]. *)
