open Spike_support
open Spike_isa
open Spike_ir
open Spike_core

(* Pure instructions: no memory write, no control effect; deleting one is
   observable only through the registers it defines. *)
let is_pure = function
  | Insn.Li _ | Insn.Lda _ | Insn.Mov _ | Insn.Binop _ | Insn.Load _ | Insn.Nop -> true
  | Insn.Store _ | Insn.Br _ | Insn.Bcond _ | Insn.Switch _ | Insn.Jump_unknown _
  | Insn.Call _ | Insn.Ret ->
      false

(* Loads are pure for dead-code purposes only if the machine cannot fault;
   our memory model reads 0 for unmapped addresses, so they are. *)

let find_dead (analysis : Analysis.t) liveness ~routine =
  let cfg = analysis.Analysis.cfgs.(routine) in
  let dead = ref [] in
  Array.iter
    (fun (b : Spike_cfg.Cfg.block) ->
      Liveness.iter_block_backward liveness ~routine ~block:b.Spike_cfg.Cfg.id
        (fun index insn live_after ->
          if is_pure insn then begin
            let defs = Insn.defs insn in
            let keeps_sp = Regset.mem Reg.sp defs in
            if (not keeps_sp) && Regset.disjoint defs live_after then
              match insn with
              | Insn.Nop -> dead := index :: !dead
              | _ -> if not (Regset.is_empty defs) then dead := index :: !dead
          end))
    cfg.Spike_cfg.Cfg.blocks;
  List.sort_uniq Int.compare !dead

let eliminate_round (analysis : Analysis.t) =
  let liveness = Liveness.compute analysis in
  let removed = ref 0 in
  let program =
    Program.make
      ~main:(Program.main analysis.Analysis.program)
      (Array.to_list
         (Array.mapi
            (fun r routine ->
              match find_dead analysis liveness ~routine:r with
              | [] -> routine
              | dead ->
                  removed := !removed + List.length dead;
                  Rewrite.delete_instructions routine dead)
            (Program.routines analysis.Analysis.program)))
  in
  (program, !removed)

let eliminate analysis =
  let rec loop analysis total =
    let program, removed = eliminate_round analysis in
    if removed = 0 then (program, total)
    else loop (Analysis.rerun analysis program) (total + removed)
  in
  loop analysis 0
