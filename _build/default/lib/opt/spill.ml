open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg
open Spike_core

type removal = {
  routine : int;
  store_index : int;
  load_index : int;
  spilled : Reg.t;
}

let defines reg insn = Regset.mem reg (Insn.defs insn)
let defines_sp insn = Regset.mem Reg.sp (Insn.defs insn)

(* Number of instructions accessing off(sp) in the routine. *)
let slot_accesses (r : Routine.t) off =
  Array.fold_left
    (fun n insn ->
      match insn with
      | Insn.Load { base; offset; _ } | Insn.Store { base; offset; _ }
        when base = Reg.sp && offset = off ->
          n + 1
      | _ -> n)
    0 r.insns

let find (analysis : Analysis.t) =
  let program = analysis.Analysis.program in
  let psg = analysis.Analysis.psg in
  let removals = ref [] in
  Array.iter
    (fun (info : Psg.call_info) ->
      let routine, block =
        match psg.Psg.nodes.(info.call_node).Psg.kind with
        | Psg.Call { routine; block } -> (routine, block)
        | Psg.Entry _ | Psg.Exit _ | Psg.Return _ | Psg.Branch _ | Psg.Unknown_exit _ ->
            assert false
      in
      let cfg = analysis.Analysis.cfgs.(routine) in
      let r = Program.get program routine in
      let insns = r.Routine.insns in
      let b = cfg.Cfg.blocks.(block) in
      let return_block = cfg.Cfg.blocks.(b.succs.(0)) in
      let killed =
        let site = Analysis.site_class analysis info in
        Regset.union site.Summary.killed (Regset.union info.call_def info.call_use)
      in
      (* Backward from the call for a spilling store. *)
      let rec find_store i barrier =
        if i < b.first then None
        else
          match insns.(i) with
          | Insn.Store { src; base = sp; offset }
            when sp = Reg.sp
                 && Regset.mem src Calling_standard.caller_saved
                 && (not (Regset.mem src barrier))
                 && not (Regset.mem Reg.sp barrier) ->
              Some (i, src, offset)
          | insn ->
              if defines_sp insn then None
              else find_store (i - 1) (Regset.union barrier (Insn.defs insn))
      in
      (* Forward through the return block for the reload. *)
      let rec find_load i reg off =
        if i > return_block.last then None
        else
          match insns.(i) with
          | Insn.Load { dst; base = sp; offset }
            when sp = Reg.sp && dst = reg && offset = off ->
              Some i
          | insn ->
              if defines reg insn || defines_sp insn || Insn.is_call insn then None
              else find_load (i + 1) reg off
      in
      match find_store (b.last - 1) Regset.empty with
      | Some (store_index, reg, off)
        when (not (Regset.mem reg killed))
             && slot_accesses r off = 2
             (* The reload must run only on the return path. *)
             && Array.length return_block.preds = 1 -> (
          match find_load return_block.first reg off with
          | Some load_index ->
              removals := { routine; store_index; load_index; spilled = reg } :: !removals
          | None -> ())
      | Some _ | None -> ())
    psg.Psg.calls;
  List.rev !removals

let apply (analysis : Analysis.t) =
  let removals = find analysis in
  let by_routine = Hashtbl.create 8 in
  List.iter
    (fun rem ->
      let existing =
        match Hashtbl.find_opt by_routine rem.routine with Some l -> l | None -> []
      in
      Hashtbl.replace by_routine rem.routine
        (rem.store_index :: rem.load_index :: existing))
    removals;
  let program =
    Program.make
      ~main:(Program.main analysis.Analysis.program)
      (Array.to_list
         (Array.mapi
            (fun r routine ->
              match Hashtbl.find_opt by_routine r with
              | Some dead -> Rewrite.delete_instructions routine dead
              | None -> routine)
            (Program.routines analysis.Analysis.program)))
  in
  (program, removals)
