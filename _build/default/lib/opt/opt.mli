(** The optimization driver: Spike's summary-driven transformations.

    One [run] applies, in order: redundant spill removal (Fig. 1(c)),
    callee-saved save/restore elimination (Fig. 1(d)), and interprocedural
    dead-code elimination to fixpoint (Fig. 1(a)/(b)), re-running the
    dataflow analysis between passes so later passes see summaries of the
    already-transformed program. *)

open Spike_core

type report = {
  spills_removed : int;  (** store/reload pairs deleted (1(c)) *)
  save_restores_rewritten : int;  (** callee-saved registers reallocated (1(d)) *)
  save_restore_instructions_removed : int;
  dead_instructions_removed : int;  (** 1(a)/(b) and exposed dead code *)
  instructions_before : int;
  instructions_after : int;
}

val pp_report : Format.formatter -> report -> unit

val run : Analysis.t -> Spike_ir.Program.t * report
(** The returned program is validated and has the same observable
    behaviour (same interpreter outcome) as the input. *)
