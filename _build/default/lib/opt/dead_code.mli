(** Interprocedural dead-code elimination (Figure 1(a)/(b)).

    An instruction is dead when it has no side effect other than defining
    registers, and none of the registers it defines is live immediately
    after it.  The liveness is the summary-driven one: a definition of a
    return register before [ret] dies when no caller uses the returned
    value (1(a)); a definition of an argument register before a call dies
    when no possible callee reads that argument (1(b)).  Neither is
    computable without the interprocedural summaries. *)

open Spike_core

val find_dead : Analysis.t -> Liveness.t -> routine:int -> int list
(** Indexes of dead instructions in one routine (one elimination round:
    removing them can expose more). *)

val eliminate : Analysis.t -> (Spike_ir.Program.t * int)
(** Remove dead instructions program-wide, re-running the analysis and
    repeating until a fixpoint.  Returns the optimized program and the
    total number of instructions removed. *)
