open Spike_isa
open Spike_ir

let delete_instructions (r : Routine.t) indexes =
  let len = Array.length r.insns in
  let dead = Array.make len false in
  List.iter
    (fun i ->
      if i < 0 || i >= len then
        invalid_arg (Printf.sprintf "Rewrite.delete_instructions: index %d" i);
      if Insn.ends_block r.insns.(i) then
        invalid_arg
          (Printf.sprintf "Rewrite.delete_instructions: %s is a terminator"
             (Insn.to_string r.insns.(i)));
      dead.(i) <- true)
    indexes;
  (* new_index.(i) = position of instruction i in the surviving stream;
     for a deleted instruction, the position of the next survivor. *)
  let new_index = Array.make (len + 1) 0 in
  let survivors = ref 0 in
  for i = 0 to len - 1 do
    new_index.(i) <- !survivors;
    if not dead.(i) then incr survivors
  done;
  new_index.(len) <- !survivors;
  let insns = Array.make !survivors Insn.Nop in
  for i = 0 to len - 1 do
    if not dead.(i) then insns.(new_index.(i)) <- r.insns.(i)
  done;
  let labels = List.map (fun (l, i) -> (l, new_index.(i))) r.labels in
  Routine.make ~exported:r.exported ~name:r.name ~entries:r.entries ~labels insns

let rename_insn ~from_reg ~to_reg insn =
  let m r = if r = from_reg then to_reg else r in
  match insn with
  | Insn.Li { dst; imm } -> Insn.Li { dst = m dst; imm }
  | Insn.Lda { dst; base; offset } -> Insn.Lda { dst = m dst; base = m base; offset }
  | Insn.Mov { dst; src } -> Insn.Mov { dst = m dst; src = m src }
  | Insn.Binop { op; dst; src1; src2 } ->
      let src2 = match src2 with Insn.Reg r -> Insn.Reg (m r) | Insn.Imm _ -> src2 in
      Insn.Binop { op; dst = m dst; src1 = m src1; src2 }
  | Insn.Load { dst; base; offset } -> Insn.Load { dst = m dst; base = m base; offset }
  | Insn.Store { src; base; offset } -> Insn.Store { src = m src; base = m base; offset }
  | Insn.Bcond { cond; src; target } -> Insn.Bcond { cond; src = m src; target }
  | Insn.Switch { index; table } -> Insn.Switch { index = m index; table }
  | Insn.Jump_unknown { target } -> Insn.Jump_unknown { target = m target }
  | Insn.Call { callee } -> (
      match callee with
      | Insn.Direct _ -> insn
      | Insn.Indirect (r, targets) -> Insn.Call { callee = Insn.Indirect (m r, targets) })
  | Insn.Br _ | Insn.Ret | Insn.Nop -> insn

let rename_register (r : Routine.t) ~from_reg ~to_reg ~except =
  let insns =
    Array.mapi
      (fun i insn ->
        if List.mem i except then insn else rename_insn ~from_reg ~to_reg insn)
      r.insns
  in
  Routine.make ~exported:r.exported ~name:r.name ~entries:r.entries ~labels:r.labels insns
