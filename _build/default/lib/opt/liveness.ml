open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg
open Spike_core

type t = {
  analysis : Analysis.t;
  live_in_sets : Regset.t array array;  (* routine -> block -> live-in *)
  live_out_sets : Regset.t array array;
      (* for a call block: liveness at the return point, before the call
         summary is applied *)
  site_of_block : (int * int, Psg.call_info) Hashtbl.t;
}

(* Compose the call instruction's own effect with the merged callee class,
   as one backward gen/kill pair. *)
let call_gen_kill analysis (info : Psg.call_info) =
  let site = Analysis.site_class analysis info in
  let gen = Regset.union info.call_use (Regset.diff site.Summary.used info.call_def) in
  let kill = Regset.union info.call_def site.Summary.defined in
  (gen, kill)

let cross_call analysis info live_after =
  let gen, kill = call_gen_kill analysis info in
  Regset.union gen (Regset.diff live_after kill)

let compute (analysis : Analysis.t) =
  let program = analysis.Analysis.program in
  let psg = analysis.Analysis.psg in
  let site_of_block = Hashtbl.create 64 in
  Array.iter
    (fun (info : Psg.call_info) ->
      match psg.Psg.nodes.(info.call_node).Psg.kind with
      | Psg.Call { routine; block } -> Hashtbl.replace site_of_block (routine, block) info
      | Psg.Entry _ | Psg.Exit _ | Psg.Return _ | Psg.Branch _ | Psg.Unknown_exit _ ->
          assert false)
    psg.Psg.calls;
  let nroutines = Program.routine_count program in
  let live_in_sets = Array.make nroutines [||] and live_out_sets = Array.make nroutines [||] in
  for r = 0 to nroutines - 1 do
    let cfg = analysis.Analysis.cfgs.(r) in
    let defuse = analysis.Analysis.defuses.(r) in
    let n = Cfg.block_count cfg in
    let live_in = Array.make n Regset.empty and live_out = Array.make n Regset.empty in
    let exit_live = (analysis.Analysis.summaries.(r)).Summary.live_at_exit in
    let out_of b =
      let block = cfg.Cfg.blocks.(b) in
      match block.ending with
      | Ends_ret -> (
          match List.assoc_opt b exit_live with Some l -> l | None -> Regset.empty)
      | Ends_jump_unknown -> Calling_standard.unknown_jump_live
      | Ends_call _ ->
          (* Liveness at the return point. *)
          live_in.(block.succs.(0))
      | Ends_plain | Ends_switch ->
          Array.fold_left (fun acc s -> Regset.union acc live_in.(s)) Regset.empty
            block.succs
    in
    let transfer b out =
      let block = cfg.Cfg.blocks.(b) in
      let mid =
        match block.ending with
        | Ends_call _ -> (
            match Hashtbl.find_opt site_of_block (r, b) with
            | Some info -> cross_call analysis info out
            | None -> assert false)
        | Ends_plain | Ends_ret | Ends_switch | Ends_jump_unknown -> out
      in
      Regset.union (Defuse.ubd defuse b) (Regset.diff mid (Defuse.def defuse b))
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for b = n - 1 downto 0 do
        let out = out_of b in
        live_out.(b) <- out;
        let inn = transfer b out in
        if not (Regset.equal inn live_in.(b)) then begin
          live_in.(b) <- inn;
          changed := true
        end
      done
    done;
    live_in_sets.(r) <- live_in;
    live_out_sets.(r) <- live_out
  done;
  { analysis; live_in_sets; live_out_sets; site_of_block }

let live_in t ~routine ~block = t.live_in_sets.(routine).(block)
let live_out t ~routine ~block = t.live_out_sets.(routine).(block)

let live_across_call t ~routine ~block =
  let cfg = t.analysis.Analysis.cfgs.(routine) in
  match cfg.Cfg.blocks.(block).Cfg.ending with
  | Ends_call _ -> t.live_out_sets.(routine).(block)
  | Ends_plain | Ends_ret | Ends_switch | Ends_jump_unknown ->
      invalid_arg "Liveness.live_across_call: block does not end in a call"

let iter_block_backward t ~routine ~block f =
  let cfg = t.analysis.Analysis.cfgs.(routine) in
  let b = cfg.Cfg.blocks.(block) in
  let insns = cfg.Cfg.routine.Routine.insns in
  let live = ref t.live_out_sets.(routine).(block) in
  let start =
    match b.ending with
    | Ends_call _ ->
        let insn = insns.(b.last) in
        f b.last insn !live;
        (match Hashtbl.find_opt t.site_of_block (routine, block) with
        | Some info -> live := cross_call t.analysis info !live
        | None -> assert false);
        b.last - 1
    | Ends_plain | Ends_ret | Ends_switch | Ends_jump_unknown -> b.last
  in
  for i = start downto b.first do
    let insn = insns.(i) in
    f i insn !live;
    live := Regset.union (Insn.uses insn) (Regset.diff !live (Insn.defs insn))
  done
