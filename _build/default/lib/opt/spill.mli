(** Redundant spill removal around calls (Figure 1(c)).

    The compiler spilled a caller-saved register around a call because it
    had to assume the call kills it.  The interprocedural summary often
    proves otherwise: when the register is not call-killed by any possible
    callee, the store/reload pair is removed.

    Recognised pattern, deliberately conservative:
    {v
      stq r, off(sp)      # in the call block, r and sp untouched after
      ...
      bsr/jsr ...         # call with r not in call-killed
      ldq r, off(sp)      # in the return block, r unwritten before it
    v}
    with no other instruction in the routine touching [off(sp)] and no
    [sp] adjustment between the three points. *)

open Spike_core

type removal = {
  routine : int;
  store_index : int;
  load_index : int;
  spilled : Spike_isa.Reg.t;
}

val find : Analysis.t -> removal list

val apply : Analysis.t -> Spike_ir.Program.t * removal list
(** Remove every recognised redundant spill pair. *)
