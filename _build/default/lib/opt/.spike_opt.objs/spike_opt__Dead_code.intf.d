lib/opt/dead_code.mli: Analysis Liveness Spike_core Spike_ir
