lib/opt/opt.ml: Analysis Dead_code Format List Program Save_restore Spike_core Spike_ir Spill
