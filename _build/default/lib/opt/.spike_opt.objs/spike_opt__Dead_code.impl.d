lib/opt/dead_code.ml: Analysis Array Insn Int List Liveness Program Reg Regset Rewrite Spike_cfg Spike_core Spike_ir Spike_isa Spike_support
