lib/opt/spill.mli: Analysis Spike_core Spike_ir Spike_isa
