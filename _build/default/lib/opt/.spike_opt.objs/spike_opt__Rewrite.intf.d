lib/opt/rewrite.mli: Reg Routine Spike_ir Spike_isa
