lib/opt/save_restore.ml: Analysis Array Callee_saved Cfg Fun Insn List Liveness Program Psg Queue Reg Regset Rewrite Routine Spike_cfg Spike_core Spike_ir Spike_isa Spike_support Summary
