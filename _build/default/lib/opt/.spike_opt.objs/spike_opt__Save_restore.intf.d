lib/opt/save_restore.mli: Analysis Liveness Spike_core Spike_ir Spike_isa
