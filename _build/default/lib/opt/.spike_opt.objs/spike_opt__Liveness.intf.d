lib/opt/liveness.mli: Analysis Regset Spike_core Spike_isa Spike_support
