lib/opt/liveness.ml: Analysis Array Calling_standard Cfg Defuse Hashtbl Insn List Program Psg Regset Routine Spike_cfg Spike_core Spike_ir Spike_isa Spike_support Summary
