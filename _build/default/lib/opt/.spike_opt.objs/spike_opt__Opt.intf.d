lib/opt/opt.mli: Analysis Format Spike_core Spike_ir
