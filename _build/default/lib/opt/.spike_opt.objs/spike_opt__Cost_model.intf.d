lib/opt/cost_model.mli: Program Routine Spike_ir Spike_isa
