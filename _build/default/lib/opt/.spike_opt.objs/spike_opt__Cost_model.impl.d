lib/opt/cost_model.ml: Array Insn Program Routine Spike_ir Spike_isa
