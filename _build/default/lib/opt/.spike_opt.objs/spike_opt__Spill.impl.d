lib/opt/spill.ml: Analysis Array Calling_standard Cfg Hashtbl Insn List Program Psg Reg Regset Rewrite Routine Spike_cfg Spike_core Spike_ir Spike_isa Spike_support Summary
