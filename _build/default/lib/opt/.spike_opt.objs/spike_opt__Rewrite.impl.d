lib/opt/rewrite.ml: Array Insn List Printf Routine Spike_ir Spike_isa
