open Spike_isa
open Spike_ir

let insn_cycles = function
  | Insn.Load _ | Insn.Store _ -> 2
  | Insn.Call _ | Insn.Ret -> 3
  | Insn.Li _ | Insn.Lda _ | Insn.Mov _ | Insn.Binop _ | Insn.Br _ | Insn.Bcond _
  | Insn.Switch _ | Insn.Jump_unknown _ | Insn.Nop ->
      1

let routine_cycles ~counts (r : Routine.t) =
  let total = ref 0 in
  Array.iteri (fun i insn -> total := !total + (counts.(i) * insn_cycles insn)) r.insns;
  !total

let program_cycles ~count program =
  let total = ref 0 in
  Program.iter
    (fun routine (r : Routine.t) ->
      Array.iteri
        (fun index insn -> total := !total + (count ~routine ~index * insn_cycles insn))
        r.Routine.insns)
    program;
  !total

let improvement_percent ~before ~after =
  if before = 0 then 0.0
  else 100.0 *. float_of_int (before - after) /. float_of_int before
