(** A simple cycle model for reporting optimization gains.

    The paper reports 5–10% (up to 20%) performance improvements from the
    summary-driven optimizations; absolute cycle accuracy is not the
    point — relative instruction traffic is.  Weights: memory operations
    cost 2 cycles, calls and returns 3, everything else 1. *)

open Spike_ir

val insn_cycles : Spike_isa.Insn.t -> int

val routine_cycles : counts:int array -> Routine.t -> int
(** Profile-weighted cycles of one routine ([counts.(i)] = executions of
    instruction [i]). *)

val program_cycles : count:(routine:int -> index:int -> int) -> Program.t -> int

val improvement_percent : before:int -> after:int -> float
