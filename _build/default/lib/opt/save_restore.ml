open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg
open Spike_core

type renaming = {
  routine : int;
  saved : Reg.t;
  replacement : Reg.t;
  removed_instructions : int;
}

let candidate_pool =
  [ Reg.t0; Reg.t1; Reg.t2; Reg.t3; Reg.t4; Reg.t5; Reg.t6; Reg.t7; Reg.t8; Reg.t9;
    Reg.t10; Reg.t11; Reg.a0; Reg.a1; Reg.a2; Reg.a3; Reg.a4; Reg.a5 ]

let occurs reg insn =
  Regset.mem reg (Regset.union (Insn.defs insn) (Insn.uses insn))

(* Does the routine ever read its caller's incoming value of [s]?  Forward
   reachability of "s not yet defined", skipping the save/restore
   instructions; a use of [s] hit in that state is a read of the incoming
   value.  Calls conservatively do not count as definitions. *)
let reads_incoming (routine : Routine.t) (cfg : Cfg.t) s ~skip =
  let insns = routine.insns in
  let n = Cfg.block_count cfg in
  let undefined_at_start = Array.make n false in
  let found = ref false in
  (* Scan a block from [first]; returns true when s stays undefined at the
     block's end. *)
  let scan_block (b : Cfg.block) =
    let rec scan i =
      if i > b.last then true
      else
        let insn = insns.(i) in
        if List.mem i skip then scan (i + 1)
        else begin
          if Regset.mem s (Insn.uses insn) then found := true;
          if Regset.mem s (Insn.defs insn) then false else scan (i + 1)
        end
    in
    scan b.first
  in
  let worklist = Queue.create () in
  let push b =
    if not undefined_at_start.(b) then begin
      undefined_at_start.(b) <- true;
      Queue.add b worklist
    end
  in
  List.iter (fun (_, b) -> push b) cfg.entry_blocks;
  while not (Queue.is_empty worklist) do
    let b = Queue.take worklist in
    if scan_block cfg.blocks.(b) then Array.iter push cfg.blocks.(b).succs
  done;
  !found

(* Call-graph successors: routines a routine may call directly.  Unknown
   targets may re-enter the image through any exported routine. *)
let call_successors (analysis : Analysis.t) =
  let program = analysis.Analysis.program in
  let psg = analysis.Analysis.psg in
  let n = Program.routine_count program in
  let exported =
    List.filteri (fun r _ -> (Program.get program r).Routine.exported) (List.init n Fun.id)
  in
  let succs = Array.make n [] in
  Array.iter
    (fun (info : Psg.call_info) ->
      let caller = Psg.node_routine psg.Psg.nodes.(info.call_node).Psg.kind in
      let targets =
        match info.targets with
        | None -> exported
        | Some l ->
            List.concat_map
              (fun target ->
                match target with
                | Psg.Target_routine r -> [ r ]
                | Psg.Target_external _ ->
                    (* external code could re-enter through any exported
                       routine *)
                    exported)
              l
      in
      succs.(caller) <- targets @ succs.(caller))
    psg.Psg.calls;
  succs

(* Can execution starting in any of [froms] re-enter [r]?  Bounds the
   Figure 1(d) rewrite: a value parked in a caller-saved register must not
   live across a call that can recursively clobber it. *)
let can_reach succs froms r =
  let visited = Array.make (Array.length succs) false in
  let rec dfs x =
    x = r
    || (not visited.(x))
       && begin
            visited.(x) <- true;
            List.exists dfs succs.(x)
          end
  in
  List.exists dfs froms

let find (analysis : Analysis.t) liveness =
  let program = analysis.Analysis.program in
  let psg = analysis.Analysis.psg in
  let succs = call_successors analysis in
  let renamings = ref [] in
  Program.iter
    (fun r (routine : Routine.t) ->
      let cfg = analysis.Analysis.cfgs.(r) in
      let sites = Callee_saved.sites routine cfg in
      (* Registers killed at each call site where a given register is live
         across; precomputed once per routine. *)
      let call_blocks =
        List.filter_map
          (fun (info : Psg.call_info) ->
            match psg.Psg.nodes.(info.call_node).Psg.kind with
            | Psg.Call { routine = cr; block } when cr = r -> Some (block, info)
            | Psg.Call _ -> None
            | Psg.Entry _ | Psg.Exit _ | Psg.Return _ | Psg.Branch _
            | Psg.Unknown_exit _ ->
                assert false)
          (Array.to_list psg.Psg.calls)
      in
      let live_entry =
        match (analysis.Analysis.summaries.(r)).Summary.live_at_entry with
        | (_, l) :: _ -> l
        | [] -> Regset.empty
      in
      let live_exits =
        List.fold_left
          (fun acc (_, l) -> Regset.union acc l)
          Regset.empty
          (analysis.Analysis.summaries.(r)).Summary.live_at_exit
      in
      (* Each site may claim a different replacement register. *)
      let taken = ref Regset.empty in
      List.iter
        (fun (site : Callee_saved.site) ->
          let s = site.reg in
          let skip = site.save_index :: site.restore_indexes in
          let other_occurrences =
            let count = ref 0 in
            Array.iteri
              (fun i insn -> if (not (List.mem i skip)) && occurs s insn then incr count)
              routine.insns;
            !count
          in
          if other_occurrences = 0 then
            (* The save/restore protects nothing: plain deletion. *)
            renamings :=
              {
                routine = r;
                saved = s;
                replacement = s;
                removed_instructions = List.length skip;
              }
              :: !renamings
          else if not (reads_incoming routine cfg s ~skip) then begin
            let crossing_targets = ref [] in
            let crossing_external = ref false in
            let killed_across =
              List.fold_left
                (fun acc (block, info) ->
                  if Regset.mem s (Liveness.live_across_call liveness ~routine:r ~block)
                  then begin
                    (match info.Psg.targets with
                    | Some l ->
                        List.iter
                          (fun target ->
                            match target with
                            | Psg.Target_routine i ->
                                crossing_targets := i :: !crossing_targets
                            | Psg.Target_external _ -> crossing_external := true)
                          l
                    | None ->
                        (* handled by the killed set: unknown calls kill
                           every caller-saved candidate *)
                        ());
                    let site_class = Analysis.site_class analysis info in
                    Regset.union acc
                      (Regset.union site_class.Summary.killed
                         (Regset.union info.call_def info.call_use))
                  end
                  else acc)
                Regset.empty call_blocks
            in
            let froms =
              if !crossing_external then
                (* external code can re-enter through any exported
                   routine *)
                List.filteri
                  (fun i _ -> (Program.get program i).Routine.exported)
                  (List.init (Program.routine_count program) Fun.id)
                @ !crossing_targets
              else !crossing_targets
            in
            if can_reach succs froms r then ()
            else begin
            let suitable t =
              (not (Regset.mem t !taken))
              && (not (Regset.mem t killed_across))
              && (not (Regset.mem t live_entry))
              && (not (Regset.mem t live_exits))
              && not (Array.exists (occurs t) routine.insns)
            in
            (match List.find_opt suitable candidate_pool with
            | Some t ->
                taken := Regset.add t !taken;
                renamings :=
                  {
                    routine = r;
                    saved = s;
                    replacement = t;
                    removed_instructions = List.length skip;
                  }
                  :: !renamings
            | None -> ())
            end
          end)
        sites)
    program;
  List.rev !renamings

let apply (analysis : Analysis.t) =
  let liveness = Liveness.compute analysis in
  let renamings = find analysis liveness in
  let program =
    Program.make
      ~main:(Program.main analysis.Analysis.program)
      (Array.to_list
         (Array.mapi
            (fun r routine ->
              let mine = List.filter (fun ren -> ren.routine = r) renamings in
              List.fold_left
                (fun routine ren ->
                  (* Site indexes refer to the original routine; recompute
                     them against the current one. *)
                  let cfg = Cfg.build routine in
                  match
                    List.find_opt
                      (fun (site : Callee_saved.site) -> site.reg = ren.saved)
                      (Callee_saved.sites routine cfg)
                  with
                  | None -> routine
                  | Some site ->
                      let skip = site.save_index :: site.restore_indexes in
                      let routine =
                        if ren.replacement = ren.saved then routine
                        else
                          Rewrite.rename_register routine ~from_reg:ren.saved
                            ~to_reg:ren.replacement ~except:skip
                      in
                      Rewrite.delete_instructions routine skip)
                routine mine)
            (Program.routines analysis.Analysis.program)))
  in
  (program, renamings)
