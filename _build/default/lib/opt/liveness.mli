(** Instruction-granularity liveness from the interprocedural summaries.

    This is the consumer-side view the paper's §2 describes: each call is a
    call-summary instruction (uses = call-used, defines = call-defined,
    kills = call-killed of its possible callees), each exit uses its
    live-at-exit set.  The per-routine backward fixpoint then yields, for
    every instruction, the registers live immediately after it — exactly
    what dead-code elimination and the register transformations need. *)

open Spike_support
open Spike_core

type t

val compute : Analysis.t -> t

val live_in : t -> routine:int -> block:int -> Regset.t
val live_out : t -> routine:int -> block:int -> Regset.t

val iter_block_backward :
  t -> routine:int -> block:int -> (int -> Spike_isa.Insn.t -> Regset.t -> unit) -> unit
(** [iter_block_backward t ~routine ~block f] calls [f index insn
    live_after] for each instruction of the block from last to first,
    where [live_after] is the liveness immediately after the instruction
    (for a terminating call instruction: the liveness at its return point,
    before the call's summary is applied). *)

val live_across_call : t -> routine:int -> block:int -> Regset.t
(** For a block ending in a call: the registers live at the call's return
    point.  @raise Invalid_argument if the block does not end in a call. *)
