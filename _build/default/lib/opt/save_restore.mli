(** Callee-saved save/restore elimination with reallocation (Figure 1(d)).

    A routine pays a store in its prologue and a load per epilogue to hold
    a value in callee-saved register [s].  When the interprocedural
    summaries prove some caller-saved register [t] survives every call the
    value lives across — and nobody outside the routine cares about [t] —
    the value can live in [t] instead and the save/restore disappears.

    Conditions checked for a rewrite of [s] to [t] in routine [R]:
    - [s] is a detected save/restore idiom ({!Spike_core.Callee_saved});
    - [R] never reads its caller's incoming [s] value (every path from the
      entry reaches a definition of [s] before any non-save use);
    - [t] has no occurrence in [R], is caller-saved (but not one of [ra],
      [pv], [at], [gp]), is not live at [R]'s entry, and is not live at
      any of [R]'s exits;
    - for every call [s] is live across, [t] is not call-killed.

    The transformation deletes the save and restores and renames every
    other occurrence of [s] to [t].  Callers are unaffected: [R] no longer
    touches [s] at all, and nothing downstream reads [t]. *)

open Spike_core

type renaming = {
  routine : int;
  saved : Spike_isa.Reg.t;
  replacement : Spike_isa.Reg.t;
  removed_instructions : int;  (** save + restores deleted *)
}

val find : Analysis.t -> Liveness.t -> renaming list

val apply : Analysis.t -> Spike_ir.Program.t * renaming list
