open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg
open Spike_core

type t = {
  call_classes : Summary.call_class array;
  live_at_entry : Regset.t array;
  live_at_exit : (int * Regset.t) list array;
}

type triple = Edge_dataflow.sets

let triple_equal (a : triple) (b : triple) =
  Regset.equal a.may_use b.may_use
  && Regset.equal a.may_def b.may_def
  && Regset.equal a.must_def b.must_def

(* Apply a call-return-edge label backward across a call: from the sets at
   the return point to the sets just before the call instruction. *)
let cross_call (e : triple) (after : triple) : triple =
  {
    may_use = Regset.union e.may_use (Regset.diff after.may_use e.must_def);
    may_def = Regset.union e.may_def after.may_def;
    must_def = Regset.union e.must_def after.must_def;
  }

let cr_label ~call_def ~call_use (callee : triple) : triple =
  {
    may_use = Regset.union call_use (Regset.diff callee.may_use call_def);
    may_def = Regset.union call_def callee.may_def;
    must_def = Regset.union call_def callee.must_def;
  }

let unknown_callee : triple =
  {
    may_use = Calling_standard.unknown_call_used;
    may_def = Calling_standard.unknown_call_killed;
    must_def = Calling_standard.unknown_call_defined;
  }

let unknown_jump_boundary : triple =
  {
    may_use = Calling_standard.unknown_jump_live;
    may_def = Calling_standard.all_allocatable;
    must_def = Regset.empty;
  }

let neutral : triple = Edge_dataflow.top_must

(* Blocks from which some anchor (call / ret / unknown jump / multiway
   branch) is reachable.  The PSG only summarizes paths that end at an
   anchor, so uses in non-productive blocks are invisible to it; the
   reference reproduces that by excluding such blocks from the meets. *)
let productive (cfg : Cfg.t) =
  let n = Cfg.block_count cfg in
  let productive = Array.make n false in
  let rec mark b =
    if not productive.(b) then begin
      productive.(b) <- true;
      Array.iter mark cfg.blocks.(b).preds
    end
  in
  Array.iter
    (fun (b : Cfg.block) ->
      match b.ending with
      | Ends_call _ | Ends_ret | Ends_jump_unknown | Ends_switch -> mark b.id
      | Ends_plain -> ())
    cfg.blocks;
  productive

(* One intraprocedural pass: backward triple dataflow over the routine's
   full CFG, with the current callee classes summarising calls.  Returns
   the IN triple per block.  [extra_exit_out] supplies the boundary OUT at
   ret blocks (used for the liveness phase); phase A passes the empty
   triple. *)
let solve_routine program cfg defuse ~externals ~classes ~exit_out =
  let n = Cfg.block_count cfg in
  let productive = productive cfg in
  let ins = Array.make n neutral in
  let rpo = Cfg.reverse_postorder cfg in
  let call_label (b : Cfg.block) =
    let insn = cfg.Cfg.routine.Routine.insns.(b.last) in
    let call_def = Insn.defs insn and call_use = Insn.uses insn in
    let callee =
      match b.ending with
      | Ends_call callee -> callee
      | Ends_plain | Ends_ret | Ends_switch | Ends_jump_unknown -> assert false
    in
    let resolve_name name =
      match Program.find_index program name with
      | Some i -> Some (`Routine i)
      | None -> (
          match externals name with
          | Some c -> Some (`External c)
          | None -> None)
    in
    let targets =
      match callee with
      | Insn.Direct name -> Option.map (fun t -> [ t ]) (resolve_name name)
      | Insn.Indirect (_, None) | Insn.Indirect (_, Some []) -> None
      | Insn.Indirect (_, Some names) ->
          let resolved = List.map resolve_name names in
          if List.exists Option.is_none resolved then None
          else Some (List.filter_map Fun.id resolved)
    in
    match targets with
    | None -> cr_label ~call_def ~call_use unknown_callee
    | Some targets ->
        let merged =
          List.fold_left
            (fun acc target ->
              let c : triple =
                match target with
                | `Routine r -> classes r
                | `External (x : Psg.external_class) ->
                    {
                      Edge_dataflow.may_use = x.Psg.x_used;
                      may_def = x.Psg.x_killed;
                      must_def = x.Psg.x_defined;
                    }
              in
              {
                Edge_dataflow.may_use = Regset.union acc.Edge_dataflow.may_use c.may_use;
                may_def = Regset.union acc.may_def c.may_def;
                must_def = Regset.inter acc.must_def c.must_def;
              })
            neutral targets
        in
        cr_label ~call_def ~call_use merged
  in
  let out_of (b : Cfg.block) =
    match b.ending with
    | Ends_ret -> exit_out b.id
    | Ends_jump_unknown -> unknown_jump_boundary
    | Ends_call _ ->
        assert (Array.length b.succs = 1);
        let at_return =
          if productive.(b.succs.(0)) then ins.(b.succs.(0)) else neutral
        in
        cross_call (call_label b) at_return
    | Ends_plain | Ends_switch ->
        Array.fold_left
          (fun acc s ->
            if productive.(s) then
              {
                Edge_dataflow.may_use =
                  Regset.union acc.Edge_dataflow.may_use ins.(s).Edge_dataflow.may_use;
                may_def = Regset.union acc.may_def ins.(s).Edge_dataflow.may_def;
                must_def = Regset.inter acc.must_def ins.(s).Edge_dataflow.must_def;
              }
            else acc)
          neutral b.succs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Backward analysis: visit in reversed reverse-postorder. *)
    for i = Array.length rpo - 1 downto 0 do
      let id = rpo.(i) in
      if productive.(id) then begin
        let b = cfg.blocks.(id) in
        let next =
          Edge_dataflow.apply_block
            ~def:(Defuse.def defuse id)
            ~ubd:(Defuse.ubd defuse id)
            (out_of b)
        in
        if not (triple_equal next ins.(id)) then begin
          ins.(id) <- next;
          changed := true
        end
      end
    done
  done;
  (ins, productive)

let empty_triple : triple = Edge_dataflow.empty

let run ?(externals = fun _ -> None) program =
  let nroutines = Program.routine_count program in
  let routines = Program.routines program in
  let cfgs = Array.map Cfg.build routines in
  let defuses = Array.map Defuse.compute cfgs in
  let filters =
    Array.mapi (fun r cfg -> Callee_saved.saved_and_restored routines.(r) cfg) cfgs
  in
  let primary_entry_block r =
    match cfgs.(r).Cfg.entry_blocks with
    | (_, b) :: _ -> b
    | [] -> assert false
  in
  (* --- Phase A: call classes to global fixpoint ----------------------- *)
  let raw = Array.make nroutines neutral in
  let stable = ref false in
  while not !stable do
    stable := true;
    for r = 0 to nroutines - 1 do
      let ins, productive =
        solve_routine program cfgs.(r) defuses.(r) ~externals
          ~classes:(fun callee -> raw.(callee))
          ~exit_out:(fun _ -> empty_triple)
      in
      let eb = primary_entry_block r in
      let at_entry = if productive.(eb) then ins.(eb) else neutral in
      let mask = filters.(r) in
      let filtered =
        {
          Edge_dataflow.may_use = Regset.diff at_entry.Edge_dataflow.may_use mask;
          may_def = Regset.diff at_entry.may_def mask;
          must_def = Regset.diff at_entry.must_def mask;
        }
      in
      if not (triple_equal filtered raw.(r)) then begin
        raw.(r) <- filtered;
        stable := false
      end
    done
  done;
  (* --- Phase B: liveness to global fixpoint --------------------------- *)
  (* Liveness reuses the triple machinery with only may_use varying; the
     may_def/must_def components ride along with their final values, which
     keeps cross_call's kill (must_def of the call-return label) correct. *)
  let live_seed r =
    let routine = routines.(r) in
    let s = ref Regset.empty in
    if routine.Routine.exported then
      s := Regset.union !s Calling_standard.external_return_live;
    if String.equal routine.Routine.name (Program.main program) then
      s := Regset.union !s Calling_standard.return_regs;
    !s
  in
  let exit_live =
    Array.init nroutines (fun r ->
        List.map (fun b -> (b, live_seed r)) (Cfg.exit_blocks cfgs.(r)))
  in
  (* Call sites per callee: (caller, return block) list. *)
  let return_sites = Array.make nroutines [] in
  Array.iteri
    (fun caller cfg ->
      List.iter
        (fun (block, callee) ->
          match Program.callee_summary_targets program callee with
          | None -> ()
          | Some targets ->
              let return_block = cfg.Cfg.blocks.(block).Cfg.succs.(0) in
              List.iter
                (fun target ->
                  return_sites.(target) <- (caller, return_block) :: return_sites.(target))
                targets)
        (Cfg.call_sites cfg))
    cfgs;
  let entry_live = Array.make nroutines Regset.empty in
  let live_ins = Array.make nroutines [||] in
  let stable = ref false in
  while not !stable do
    stable := true;
    for r = 0 to nroutines - 1 do
      let ins, productive =
        solve_routine program cfgs.(r) defuses.(r) ~externals
          ~classes:(fun callee -> raw.(callee))
          ~exit_out:(fun block ->
            match List.assoc_opt block exit_live.(r) with
            | Some live -> { empty_triple with Edge_dataflow.may_use = live }
            | None -> empty_triple)
      in
      live_ins.(r) <-
        Array.mapi
          (fun b (t : triple) ->
            if productive.(b) then t.Edge_dataflow.may_use else Regset.empty)
          ins;
      let eb = primary_entry_block r in
      entry_live.(r) <- live_ins.(r).(eb)
    done;
    (* Propagate caller return-point liveness into callee exits. *)
    for r = 0 to nroutines - 1 do
      let updated =
        List.map
          (fun (block, _live) ->
            let from_callers =
              List.fold_left
                (fun acc (caller, return_block) ->
                  Regset.union acc live_ins.(caller).(return_block))
                (live_seed r) return_sites.(r)
            in
            (block, from_callers))
          exit_live.(r)
      in
      if
        not
          (List.for_all2
             (fun (_, a) (_, b) -> Regset.equal a b)
             exit_live.(r) updated)
      then begin
        exit_live.(r) <- updated;
        stable := false
      end
    done
  done;
  let mask = Calling_standard.all_allocatable in
  {
    call_classes =
      Array.map
        (fun (t : triple) ->
          {
            Summary.used = Regset.inter t.Edge_dataflow.may_use mask;
            defined = Regset.inter t.must_def mask;
            killed = Regset.inter t.may_def mask;
          })
        raw;
    live_at_entry = Array.map (fun l -> Regset.inter l mask) entry_live;
    live_at_exit =
      Array.map
        (fun exits -> List.map (fun (b, l) -> (b, Regset.inter l mask)) exits)
        exit_live;
  }
