lib/reference/reference.mli: Program Psg Regset Spike_core Spike_ir Spike_support Summary
