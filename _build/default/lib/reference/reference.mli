(** Precision oracle: the interprocedural solution computed {e without} a
    PSG.

    This module solves the same two-phase dataflow problem as
    {!Spike_core} by brute force: each routine is analysed directly over
    its complete CFG with call sites summarised by the current call
    classes (the §2 "call-summary instruction"), and the per-routine
    analyses iterate to a global fixpoint.  It is the semantics the PSG is
    an optimisation of, so on every program the two must agree {e exactly}
    — the property tests in [test/test_agreement.ml] check it.

    It is deliberately simple and unoptimised; don't use it on large
    programs (the benchmarks measure the PSG analysis, not this). *)

open Spike_support
open Spike_ir
open Spike_core

type t = {
  call_classes : Summary.call_class array;  (** per routine *)
  live_at_entry : Regset.t array;  (** per routine, at the primary entry *)
  live_at_exit : (int * Regset.t) list array;
      (** per routine: exit block id [->] live set *)
}

val run : ?externals:(string -> Psg.external_class option) -> Program.t -> t
(** Analyse a whole program.  Must produce the same sets as
    {!Analysis.run} given the same [externals] (with branch nodes on or
    off — they don't affect the solution). *)
