type t = {
  seed : int;
  routines : int;
  target_instructions : int;
  calls_per_routine : float;
  branches_per_routine : float;
  switches_per_routine : float;
  switch_fanout : int;
  switch_loop_prob : float;
  switch_arm_calls : float;
  exits_per_routine : float;
  extra_entry_prob : float;
  recursion_prob : float;
  indirect_known_prob : float;
  unknown_call_prob : float;
  unknown_jump_prob : float;
  exported_prob : float;
  save_restore_prob : float;
  loops_per_routine : float;
  loop_call_prob : float;
  spill_prob : float;
  guard_calls : bool;
}

let default =
  {
    seed = 42;
    routines = 12;
    target_instructions = 600;
    calls_per_routine = 3.0;
    branches_per_routine = 4.0;
    switches_per_routine = 0.3;
    switch_fanout = 4;
    switch_loop_prob = 0.5;
    switch_arm_calls = 0.5;
    exits_per_routine = 1.4;
    extra_entry_prob = 0.02;
    recursion_prob = 0.15;
    indirect_known_prob = 0.05;
    unknown_call_prob = 0.05;
    unknown_jump_prob = 0.0;
    exported_prob = 0.1;
    save_restore_prob = 0.4;
    loops_per_routine = 0.8;
    loop_call_prob = 0.3;
    spill_prob = 0.25;
    guard_calls = true;
  }

let scale p f =
  {
    p with
    routines = max 1 (int_of_float (float_of_int p.routines *. f));
    target_instructions = max 8 (int_of_float (float_of_int p.target_instructions *. f));
  }
