open Spike_support
open Spike_isa
open Spike_ir
open Spike_interp

(* Register conventions inside generated code:
   - t9  : call-guard scratch (budget counter manipulation)
   - t11 : loop / switch dispatch scratch
   - pv  : indirect call target
   The random pool deliberately excludes them, plus sp/ra/gp/at/zero. *)
let temp_pool =
  Array.of_list
    ([ Reg.v0; Reg.t0; Reg.t1; Reg.t2; Reg.t3; Reg.t4; Reg.t5; Reg.t6; Reg.t7;
       Reg.t8; Reg.t10; Reg.a0; Reg.a1; Reg.a2; Reg.a3; Reg.a4; Reg.a5 ]
    @ List.init 4 (fun i -> Reg.freg (10 + i)))

(* Spill candidates: a gradient from never-killed (the pool excludes f14
   and f15, so no generated code clobbers them) to usually-killed temps,
   so that Figure 1(c) removes some but not all generated spills. *)
let spill_pool =
  [| Reg.freg 14; Reg.freg 15; Reg.freg 11; Reg.t7; Reg.a4; Reg.t10 |]

let csave_pool = [| Reg.s0; Reg.s1; Reg.s2; Reg.s3; Reg.s4; Reg.s5 |]

let budget_slot = 4096

(* Sample an integer with the given mean: floor plus a Bernoulli trial on
   the fraction.  Cheap stand-in for a Poisson draw; the per-routine means
   match the calibration targets, which is what Table 3 measures. *)
let sample_count g mean =
  let base = int_of_float mean in
  let frac = mean -. float_of_int base in
  base + (if Prng.chance g frac then 1 else 0)

type token = T_call | T_diamond | T_loop | T_switch | T_straight

type routine_plan = {
  index : int;  (* position in the program's routine array *)
  name : string;
  target_size : int;
  exported : bool;
  is_leaf : bool;
      (* leaf routines make no calls and touch few registers; they are why
         spilling around calls to them is often unnecessary (Fig. 1(c)) *)
}

type context = {
  params : Params.t;
  plans : routine_plan array;  (* bodies only, without main/stubs *)
  stub_names : string array;
  main_name : string;
}

(* --- Code fragments ---------------------------------------------------- *)

let emit_straight g b ~pool ~scratch n =
  for _ = 1 to n do
    let dst = Prng.choose g pool in
    let src () = Prng.choose g pool in
    (match Prng.int g 6 with
    | 0 -> Builder.emit b (Insn.Li { dst; imm = Prng.int g 1000 })
    | 1 -> Builder.emit b (Insn.Mov { dst; src = src () })
    | 2 ->
        let op =
          Prng.choose g [| Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor; Insn.Cmplt |]
        in
        Builder.emit b (Insn.Binop { op; dst; src1 = src (); src2 = Insn.Reg (src ()) })
    | 3 ->
        let op = Prng.choose g [| Insn.Add; Insn.Sub; Insn.Sll; Insn.Cmpeq |] in
        Builder.emit b
          (Insn.Binop { op; dst; src1 = src (); src2 = Insn.Imm (Prng.int g 64) })
    | 4 ->
        Builder.emit b (Insn.Load { dst; base = Reg.sp; offset = scratch + (8 * Prng.int g 8) })
    | 5 ->
        Builder.emit b
          (Insn.Store { src = src (); base = Reg.sp; offset = scratch + (8 * Prng.int g 8) })
    | _ -> assert false);
  done

(* A bounded call site.  Guarded sites cost ~5 extra instructions but make
   whole-program execution terminate: the budget cell at
   [budget_slot(zero)] is decremented before every body call and the call
   is skipped once it runs out. *)
let emit_call ?spill_slot ctx g b ~caller_index =
  let p = ctx.params in
  let spill =
    match spill_slot with
    | Some slot when Prng.chance g p.Params.spill_prob ->
        Some (Prng.choose g spill_pool, slot)
    | Some _ | None -> None
  in
  let before_call () =
    match spill with
    | Some (sr, slot) -> Builder.emit b (Insn.Store { src = sr; base = Reg.sp; offset = slot })
    | None -> ()
  in
  let after_call () =
    match spill with
    | Some (sr, slot) ->
        Builder.emit b (Insn.Load { dst = sr; base = Reg.sp; offset = slot });
        (* A real use after the reload: the value was live across the
           call. *)
        Builder.emit b
          (Insn.Binop { op = Insn.Or; dst = sr; src1 = sr; src2 = Insn.Imm 0 })
    | None -> ()
  in
  let n_bodies = Array.length ctx.plans in
  let pick_forward () =
    if caller_index + 1 < n_bodies then
      Prng.int_in g (caller_index + 1) (n_bodies - 1)
    else caller_index
  in
  let pick_backward () = Prng.int_in g 0 caller_index in
  let body_call () =
    let callee =
      if Prng.chance g p.Params.recursion_prob then pick_backward () else pick_forward ()
    in
    if Prng.chance g p.Params.indirect_known_prob && caller_index + 1 < n_bodies then begin
      (* Indirect call with a declared target list: pick up to three
         forward candidates and dial one of them in at generation time. *)
      let k = 1 + Prng.int g 3 in
      let candidates = List.init k (fun _ -> pick_forward ()) in
      let candidates = List.sort_uniq Int.compare candidates in
      let chosen = Prng.choose g (Array.of_list candidates) in
      let names = List.map (fun i -> ctx.plans.(i).name) candidates in
      Builder.emit b
        (Insn.Li { dst = Reg.pv; imm = Machine.routine_address (ctx.plans.(chosen).index) });
      Insn.Call { callee = Insn.Indirect (Reg.pv, Some names) }
    end
    else Insn.Call { callee = Insn.Direct ctx.plans.(callee).name }
  in
  let stub_call () =
    let i = Prng.int g (Array.length ctx.stub_names) in
    (* Stubs follow main and the bodies in the routine array. *)
    let stub_index = 1 + Array.length ctx.plans + i in
    Builder.emit b (Insn.Li { dst = Reg.pv; imm = Machine.routine_address stub_index });
    Insn.Call { callee = Insn.Indirect (Reg.pv, None) }
  in
  if Prng.chance g p.Params.unknown_call_prob && Array.length ctx.stub_names > 0 then begin
    (* Unknown-target calls hit conforming stubs; no guard needed: stubs
       are straight-line.  The caller must itself conform to the calling
       standard: nothing caller-saved survives a call to unknown code, so
       re-establish every scratch register before any later read. *)
    Builder.emit b (stub_call ());
    Array.iter
      (fun dst -> Builder.emit b (Insn.Li { dst; imm = Prng.int g 100 }))
      (Array.append temp_pool spill_pool)
  end
  else if p.Params.guard_calls then begin
    let skip = Builder.fresh_label b "skip" in
    Builder.emit b (Insn.Load { dst = Reg.t9; base = Reg.zero; offset = budget_slot });
    Builder.emit b
      (Insn.Binop { op = Insn.Sub; dst = Reg.t9; src1 = Reg.t9; src2 = Insn.Imm 1 });
    Builder.emit b (Insn.Store { src = Reg.t9; base = Reg.zero; offset = budget_slot });
    Builder.emit b (Insn.Bcond { cond = Insn.Le; src = Reg.t9; target = skip });
    (* The spill belongs to the call path only. *)
    before_call ();
    let call = body_call () in
    Builder.emit b call;
    after_call ();
    Builder.label b skip
  end
  else begin
    before_call ();
    Builder.emit b (body_call ());
    after_call ()
  end

let emit_diamond ctx g b ~pool ~scratch ~pad =
  let else_label = Builder.fresh_label b "else" in
  let join = Builder.fresh_label b "join" in
  let cond = Prng.choose g [| Insn.Eq; Insn.Ne; Insn.Lt; Insn.Ge |] in
  Builder.emit b (Insn.Bcond { cond; src = Prng.choose g pool; target = else_label });
  emit_straight g b ~pool ~scratch (1 + Prng.int g pad);
  Builder.emit b (Insn.Br { target = join });
  Builder.label b else_label;
  emit_straight g b ~pool ~scratch (1 + Prng.int g pad);
  Builder.label b join;
  ignore ctx

(* A counter loop whose trip count lives in a stack slot, so that it
   terminates even if the scratch register is clobbered. *)
let emit_loop ctx g b ~pool ~caller_index ~scratch ~slot ~pad =
  let head = Builder.fresh_label b "loop" in
  Builder.emit b (Insn.Li { dst = Reg.t11; imm = 2 + Prng.int g 4 });
  Builder.emit b (Insn.Store { src = Reg.t11; base = Reg.sp; offset = slot });
  Builder.label b head;
  emit_straight g b ~pool ~scratch (1 + Prng.int g pad);
  (* Calls inside loops connect their return points to every call in the
     loop through the back edge: vortex's many-PSG-edges pattern. *)
  if Prng.chance g ctx.params.Params.loop_call_prob then begin
    (* Each call sits under its own conditional skip ("if (p) f();"), so
       any call's return point reaches every other call around the back
       edge: the quadratic connectivity the paper observes in vortex. *)
    let burst = 2 + Prng.int g 4 in
    for _ = 1 to burst do
      let skip = Builder.fresh_label b "lskip" in
      let cond = Prng.choose g [| Insn.Eq; Insn.Lt; Insn.Ge |] in
      Builder.emit b (Insn.Bcond { cond; src = Prng.choose g pool; target = skip });
      emit_call ctx g b ~caller_index;
      Builder.label b skip
    done
  end;
  Builder.emit b (Insn.Load { dst = Reg.t11; base = Reg.sp; offset = slot });
  Builder.emit b
    (Insn.Binop { op = Insn.Sub; dst = Reg.t11; src1 = Reg.t11; src2 = Insn.Imm 1 });
  Builder.emit b (Insn.Store { src = Reg.t11; base = Reg.sp; offset = slot });
  Builder.emit b (Insn.Bcond { cond = Insn.Gt; src = Reg.t11; target = head })

(* A jump-table dispatch driven by a decrementing memory counter (bounded
   even when arms loop back), with optional call sites in the arms. *)
let emit_switch ctx g b ~pool ~caller_index ~scratch ~slot ~pad =
  let p = ctx.params in
  let fanout = max 2 p.Params.switch_fanout in
  let head = Builder.fresh_label b "sw" in
  let done_ = Builder.fresh_label b "swend" in
  let arms = List.init fanout (fun _ -> Builder.fresh_label b "arm") in
  Builder.emit b (Insn.Li { dst = Reg.t11; imm = fanout + Prng.int g 8 });
  Builder.emit b (Insn.Store { src = Reg.t11; base = Reg.sp; offset = slot });
  Builder.label b head;
  Builder.emit b (Insn.Load { dst = Reg.t11; base = Reg.sp; offset = slot });
  Builder.emit b
    (Insn.Binop { op = Insn.Sub; dst = Reg.t11; src1 = Reg.t11; src2 = Insn.Imm 1 });
  Builder.emit b (Insn.Store { src = Reg.t11; base = Reg.sp; offset = slot });
  Builder.emit b (Insn.Bcond { cond = Insn.Le; src = Reg.t11; target = done_ });
  Builder.emit b (Insn.Switch { index = Reg.t11; table = Array.of_list arms });
  List.iter
    (fun arm ->
      Builder.label b arm;
      if Prng.chance g p.Params.switch_arm_calls then
        emit_call ctx g b ~caller_index;
      emit_straight g b ~pool ~scratch (1 + Prng.int g pad);
      if Prng.chance g p.Params.switch_loop_prob then
        Builder.emit b (Insn.Br { target = head })
      else Builder.emit b (Insn.Br { target = done_ }))
    arms;
  Builder.label b done_

(* --- Whole routines ---------------------------------------------------- *)

(* Fraction of routines that are leaves, and the call-density correction
   applied to the others so the per-routine averages still match the
   calibration targets. *)
let leaf_fraction = 0.25

let generate_body_routine ctx g (plan : routine_plan) =
  let ctx =
    if plan.is_leaf then
      {
        ctx with
        params =
          {
            ctx.params with
            Params.calls_per_routine = 0.0;
            switch_arm_calls = 0.0;
            loop_call_prob = 0.0;
            unknown_call_prob = 0.0;
            spill_prob = 0.0;
          };
      }
    else ctx
  in
  let p = ctx.params in
  let b = Builder.create ~exported:plan.exported plan.name in
  (* Each routine allocates registers sparsely, like real compiler output:
     a small random subset of the scratch registers.  This is what gives
     per-routine summaries their variance — and what makes some generated
     spills removable (the callee subtree may simply never touch the
     spilled register). *)
  let pool =
    let arr = Array.copy temp_pool in
    Prng.shuffle g arr;
    let size = if plan.is_leaf then 3 + Prng.int g 3 else 5 + Prng.int g 6 in
    Array.sub arr 0 size
  in
  Builder.declare_entry b (plan.name ^ "$entry");
  Builder.label b (plan.name ^ "$entry");
  (* Prologue: optional frame with callee-saved saves. *)
  let csaves =
    if Prng.chance g p.Params.save_restore_prob then begin
      let count = 1 + Prng.int g 3 in
      let regs = Array.copy csave_pool in
      Prng.shuffle g regs;
      Array.to_list (Array.sub regs 0 count)
    end
    else []
  in
  (* Non-leaf routines must preserve ra across their own calls; saving it
     unconditionally keeps the prologue uniform (the routine body may grow
     calls inside switch arms that the plan didn't count). *)
  let saves = csaves @ [ Reg.ra ] in
  (* Token plan (needed now: the frame must reserve a counter slot per loop
     and per switch, plus a scratch region, all inside the frame so that a
     routine never writes into an ancestor's stack). *)
  let n_calls =
    sample_count g (p.Params.calls_per_routine /. (1.0 -. leaf_fraction))
  in
  let n_diamonds = sample_count g (p.Params.branches_per_routine /. 2.0) in
  let n_loops = sample_count g p.Params.loops_per_routine in
  let n_switches = sample_count g p.Params.switches_per_routine in
  let scratch = 8 * List.length saves in
  let slots_base = scratch + 64 in
  let frame_size = slots_base + (16 * (n_loops + n_switches + n_calls)) + 16 in
  Builder.emit b (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -frame_size });
  List.iteri
    (fun i s -> Builder.emit b (Insn.Store { src = s; base = Reg.sp; offset = 8 * i }))
    saves;
  (* Initialize the scratch region: compiled code never reads stack it did
     not write, and leaving it to chance would make the values of dead
     stores from other activations observable. *)
  for k = 0 to 7 do
    Builder.emit b (Insn.Store { src = Reg.zero; base = Reg.sp; offset = scratch + (8 * k) })
  done;
  (* Give saved registers some interior traffic so saving them matters. *)
  List.iter
    (fun s ->
      if Prng.bool g then Builder.emit b (Insn.Li { dst = s; imm = Prng.int g 100 }))
    csaves;
  let tokens =
    Array.of_list
      (List.concat
         [
           List.init n_calls (fun _ -> T_call);
           List.init n_diamonds (fun _ -> T_diamond);
           List.init n_loops (fun _ -> T_loop);
           List.init n_switches (fun _ -> T_switch);
           List.init 2 (fun _ -> T_straight);
         ])
  in
  Prng.shuffle g tokens;
  (* Straight-line padding per slot, from the size budget left after the
     estimated construct overhead. *)
  let overhead =
    8 (* scratch initialization *)
    + (n_calls * if p.Params.guard_calls then 6 else 2)
    + (n_diamonds * 6)
    + (n_loops * 8)
    + (n_switches * (8 + (3 * max 2 p.Params.switch_fanout)))
    + 8
  in
  let slots = Array.length tokens + 1 in
  let pad = max 1 ((plan.target_size - overhead) / max 1 slots / 2) in
  let n_exits = max 1 (sample_count g p.Params.exits_per_routine) in
  let epilogues = List.init n_exits (fun i -> Printf.sprintf "%s$epi%d" plan.name i) in
  let extra_epilogues = match epilogues with [] -> [] | _ :: rest -> rest in
  let pending_exit_branches = ref extra_epilogues in
  let unknown_jump =
    if Prng.chance g p.Params.unknown_jump_prob then
      Some (plan.name ^ "$ujmp")
    else None
  in
  let next_slot = ref slots_base in
  let fresh_slot () =
    let s = !next_slot in
    next_slot := s + 16;
    s
  in
  let maybe_early_exit () =
    match !pending_exit_branches with
    | epi :: rest when Prng.chance g 0.6 ->
        pending_exit_branches := rest;
        let cond = Prng.choose g [| Insn.Eq; Insn.Lt |] in
        Builder.emit b (Insn.Bcond { cond; src = Prng.choose g pool; target = epi })
    | _ -> ()
  in
  emit_straight g b ~pool ~scratch pad;
  Array.iter
    (fun token ->
      (match token with
      | T_call -> emit_call ~spill_slot:(fresh_slot ()) ctx g b ~caller_index:(plan.index - 1)
      | T_diamond -> emit_diamond ctx g b ~pool ~scratch ~pad
      | T_loop -> emit_loop ctx g b ~pool ~caller_index:(plan.index - 1) ~scratch ~slot:(fresh_slot ()) ~pad
      | T_switch ->
          emit_switch ctx g b ~pool ~caller_index:(plan.index - 1) ~scratch ~slot:(fresh_slot ()) ~pad
      | T_straight -> emit_straight g b ~pool ~scratch pad);
      maybe_early_exit ())
    tokens;
  (* Top up with straight-line filler so the routine hits its planned
     size: construct overhead is estimated, not exact. *)
  let epilogue_cost = n_exits * (List.length saves + 2) in
  let deficit = plan.target_size - Builder.position b - epilogue_cost in
  if deficit > 0 then emit_straight g b ~pool ~scratch deficit;
  (* Route any unused extra epilogues somewhere reachable. *)
  List.iter
    (fun epi ->
      Builder.emit b (Insn.Bcond { cond = Insn.Ne; src = Prng.choose g pool; target = epi }))
    !pending_exit_branches;
  (match unknown_jump with
  | Some l ->
      Builder.emit b
        (Insn.Bcond { cond = Insn.Eq; src = Prng.choose g pool; target = l })
  | None -> ());
  (* Epilogues: restores, frame pop, ret. *)
  List.iter
    (fun epi ->
      Builder.label b epi;
      List.iteri
        (fun i s -> Builder.emit b (Insn.Load { dst = s; base = Reg.sp; offset = 8 * i }))
        saves;
      Builder.emit b (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = frame_size });
      Builder.emit b Insn.Ret)
    epilogues;
  (match unknown_jump with
  | Some l ->
      Builder.label b l;
      Builder.emit b (Insn.Jump_unknown { target = Prng.choose g pool })
  | None -> ());
  (* Occasional second entry point into the middle of the body. *)
  if Prng.chance g p.Params.extra_entry_prob then begin
    let position = Builder.position b in
    if position > 1 then begin
      (* A label at a random existing instruction would need tracking; use
         the first epilogue, which is always a block start. *)
      Builder.declare_entry b (List.hd epilogues)
    end
  end;
  Builder.finish b

let generate_stub name =
  let b = Builder.create ~exported:true name in
  Builder.emit b (Insn.Binop { op = Insn.Add; dst = Reg.v0; src1 = Reg.a0; src2 = Insn.Reg Reg.a1 });
  Builder.emit b (Insn.Binop { op = Insn.Xor; dst = Reg.t0; src1 = Reg.a2; src2 = Insn.Imm 3 });
  Builder.emit b (Insn.Li { dst = Reg.f0; imm = 1 });
  Builder.emit b Insn.Ret;
  Builder.finish b

let generate_main ctx g =
  let b = Builder.create ~exported:true ctx.main_name in
  (* Initialize the global call budget. *)
  if ctx.params.Params.guard_calls then begin
    Builder.emit b (Insn.Li { dst = Reg.t9; imm = 512 });
    Builder.emit b (Insn.Store { src = Reg.t9; base = Reg.zero; offset = budget_slot })
  end;
  let n_bodies = Array.length ctx.plans in
  let n_roots = min n_bodies (1 + Prng.int g 3) in
  Builder.emit b (Insn.Li { dst = Reg.v0; imm = 1 });
  for _ = 1 to n_roots do
    let root = ctx.plans.(Prng.int g (max 1 (min n_bodies 4))) in
    Builder.emit b (Insn.Call { callee = Insn.Direct root.name });
    (* Fold call results into an observable checksum: makes v0 depend on
       real dataflow, so semantics-preservation tests have teeth. *)
    let witness = Prng.choose g [| Reg.t0; Reg.t3; Reg.a1; Reg.a4; Reg.t8 |] in
    Builder.emit b
      (Insn.Binop { op = Insn.Xor; dst = Reg.v0; src1 = Reg.v0; src2 = Insn.Reg witness })
  done;
  if ctx.params.Params.guard_calls then begin
    (* The residual budget witnesses how many guarded calls ran. *)
    Builder.emit b (Insn.Load { dst = Reg.t9; base = Reg.zero; offset = budget_slot });
    Builder.emit b
      (Insn.Binop { op = Insn.Add; dst = Reg.v0; src1 = Reg.v0; src2 = Insn.Reg Reg.t9 })
  end;
  Builder.emit b Insn.Ret;
  Builder.finish b

let generate (p : Params.t) =
  let g = Prng.create p.Params.seed in
  let n = max 1 p.Params.routines in
  let per_routine = max 8 (p.Params.target_instructions / n) in
  let leaves = int_of_float (float_of_int n *. leaf_fraction) in
  let plans =
    Array.init n (fun i ->
        let jitter = 0.4 +. Prng.float g 1.2 in
        {
          index = i + 1;
          (* main occupies index 0 *)
          name = Printf.sprintf "r%d" i;
          target_size = max 8 (int_of_float (float_of_int per_routine *. jitter));
          exported = Prng.chance g p.Params.exported_prob;
          is_leaf = i >= n - leaves;
        })
  in
  let n_stubs = if p.Params.unknown_call_prob > 0.0 then max 1 (n / 64) else 0 in
  let stub_names = Array.init n_stubs (Printf.sprintf "stub%d") in
  let ctx = { params = p; plans; stub_names; main_name = "main" } in
  let bodies =
    Array.to_list
      (Array.map
         (fun plan ->
           let gr = Prng.split g in
           generate_body_routine ctx gr plan)
         plans)
  in
  let stubs = Array.to_list (Array.map generate_stub stub_names) in
  let main = generate_main ctx (Prng.split g) in
  Program.make ~main:ctx.main_name ((main :: bodies) @ stubs)
