(** Deterministic random program generator.

    Produces well-formed whole programs whose structural statistics
    (routines, basic blocks, instructions, calls/branches/switches per
    routine, entries/exits, save-restore idioms, indirect and unknown
    calls) track a {!Params.t}.  Programs generated with
    [guard_calls = true] always terminate under {!Spike_interp.Machine}:
    every call into the body call graph is guarded by a global budget
    counter in memory, loops and switch dispatches run off decrementing
    memory counters, and unknown-target indirect calls are routed to
    generated calling-standard-conforming stub routines (which are marked
    exported, modelling address-taken routines).

    The same [Params.t] always yields the identical program — the
    generator draws exclusively from a {!Spike_support.Prng.t} seeded from
    [params.seed], with an independent split per routine. *)

open Spike_ir

val generate : Params.t -> Program.t
(** The result always passes {!Spike_ir.Validate.check}. *)
