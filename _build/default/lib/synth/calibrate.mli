(** Calibration of the synthetic workloads to the paper's 16 benchmarks.

    The paper evaluates on SPEC95int and eight large PC applications we
    cannot obtain (commercial Alpha/NT binaries).  Their {e structural}
    characteristics, however, are published: Table 2 gives routines, basic
    blocks and instructions; Table 3 gives per-routine entrances, exits,
    calls and branches; Table 4's branch-node edge reductions pin down how
    much multiway-branch-in-loop structure each program has.  This module
    stores those published numbers and derives generator parameters that
    reproduce the shapes, so the benchmark harness can regenerate each
    table with measured values next to the paper's. *)

type paper_row = {
  name : string;
  suite : string;  (** ["SPECint95"] or ["PC"] *)
  description : string;  (** Table 1 *)
  routines : int;  (** Table 2 *)
  basic_blocks : int;
  instructions_k : float;
  time_s : float;  (** Table 2, on a 466 MHz Alpha 21164 *)
  memory_mb : float;
  entrances : float;  (** Table 3, per routine *)
  exits : float;
  calls : float;
  branches : float;
  psg_nodes_per_routine : float;
  psg_edges_per_routine : float;
  edge_reduction_pct : float;  (** Table 4 *)
  node_increase_pct : float;
  psg_nodes_k : float;  (** Table 5 *)
  psg_edges_k : float;
  cfg_arcs_k : float;
}

val benchmarks : paper_row list
(** All 16, SPEC first, in the paper's order. *)

val find : string -> paper_row option

val params_of : ?scale:float -> paper_row -> Params.t
(** Generator parameters reproducing the row's shape.  [scale] (default
    [1.0]) shrinks routines and instructions proportionally for quick
    runs.  The resulting workloads are analysis-only: calls are unguarded
    and a small fraction of unknown jumps is included. *)
