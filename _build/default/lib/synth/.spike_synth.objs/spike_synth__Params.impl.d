lib/synth/params.ml:
