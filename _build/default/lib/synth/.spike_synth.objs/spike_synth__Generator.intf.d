lib/synth/generator.mli: Params Program Spike_ir
