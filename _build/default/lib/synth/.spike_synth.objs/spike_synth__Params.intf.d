lib/synth/params.mli:
