lib/synth/calibrate.ml: Float Hashtbl List Params String
