lib/synth/generator.ml: Array Builder Insn Int List Machine Params Printf Prng Program Reg Spike_interp Spike_ir Spike_isa Spike_support
