lib/synth/calibrate.mli: Params
