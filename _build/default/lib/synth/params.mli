(** Shape parameters for the synthetic workload generator.

    Each field controls one structural characteristic the paper's
    evaluation depends on (Tables 2–4): program size, call density, branch
    density, multiway-branch behaviour, entries/exits per routine, and the
    features that exercise §3.4/§3.5 (callee-saved save/restore, indirect
    and unknown calls, unknown jumps).  {!Calibrate} provides one record
    per paper benchmark. *)

type t = {
  seed : int;  (** root of the deterministic generation stream *)
  routines : int;  (** number of routines besides [main] and stubs *)
  target_instructions : int;  (** approximate whole-program size *)
  calls_per_routine : float;
  branches_per_routine : float;
      (** two-way conditional constructs per routine (each if-diamond
          contributes a conditional and an unconditional branch) *)
  switches_per_routine : float;  (** multiway branches per routine *)
  switch_fanout : int;  (** jump-table size *)
  switch_loop_prob : float;
      (** probability that a switch arm loops back to the dispatch — the
          pattern that blows up PSG edges without branch nodes (§3.6) *)
  switch_arm_calls : float;
      (** probability that a switch arm contains a call site *)
  exits_per_routine : float;  (** epilogues ([ret]s) per routine, >= 1 *)
  extra_entry_prob : float;  (** probability of a second entry point *)
  recursion_prob : float;
      (** probability that a call site targets a same-or-earlier routine
          (creating call-graph cycles) *)
  indirect_known_prob : float;
      (** fraction of calls made indirect with a declared target list *)
  unknown_call_prob : float;
      (** fraction of calls made indirect with no static target; these are
          routed to generated calling-standard-conforming stubs *)
  unknown_jump_prob : float;
      (** per-routine probability of an indirect jump with unknown targets
          (makes the program non-executable; keep 0 for interpreter
          tests) *)
  exported_prob : float;  (** probability a routine is marked exported *)
  save_restore_prob : float;
      (** probability a routine saves/restores callee-saved registers
          (exercising the §3.4 filter) *)
  loops_per_routine : float;  (** bounded counter loops per routine *)
  loop_call_prob : float;
      (** probability a loop body contains a call site — the pattern that
          gives vortex-like high PSG edge counts (calls connected to each
          other through the loop's back edge) *)
  spill_prob : float;
      (** probability a call site spills a register around the call, the
          compiler-must-assume-killed pattern that Figure 1(c) removes
          when the summary disagrees *)
  guard_calls : bool;
      (** wrap every call in a global-budget guard so generated programs
          terminate under the interpreter; off for analysis-only
          workloads *)
}

val default : t
(** A small, executable program shape: 12 routines, ~600 instructions,
    guards on, no unknown jumps. *)

val scale : t -> float -> t
(** [scale p f] multiplies the program size (routines and instructions) by
    [f], keeping per-routine shape fixed — the knob for the Figure 14/15
    sweeps. *)
