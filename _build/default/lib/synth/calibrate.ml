type paper_row = {
  name : string;
  suite : string;
  description : string;
  routines : int;
  basic_blocks : int;
  instructions_k : float;
  time_s : float;
  memory_mb : float;
  entrances : float;
  exits : float;
  calls : float;
  branches : float;
  psg_nodes_per_routine : float;
  psg_edges_per_routine : float;
  edge_reduction_pct : float;
  node_increase_pct : float;
  psg_nodes_k : float;
  psg_edges_k : float;
  cfg_arcs_k : float;
}

let row ~name ~suite ~description ~routines ~basic_blocks ~instructions_k ~time_s
    ~memory_mb ~entrances ~exits ~calls ~branches ~psg_nodes_per_routine
    ~psg_edges_per_routine ~edge_reduction_pct ~node_increase_pct ~psg_nodes_k
    ~psg_edges_k ~cfg_arcs_k =
  {
    name;
    suite;
    description;
    routines;
    basic_blocks;
    instructions_k;
    time_s;
    memory_mb;
    entrances;
    exits;
    calls;
    branches;
    psg_nodes_per_routine;
    psg_edges_per_routine;
    edge_reduction_pct;
    node_increase_pct;
    psg_nodes_k;
    psg_edges_k;
    cfg_arcs_k;
  }

let benchmarks =
  [
    row ~name:"compress" ~suite:"SPECint95" ~description:"compression"
      ~routines:122 ~basic_blocks:2546 ~instructions_k:13.5 ~time_s:0.05
      ~memory_mb:0.20 ~entrances:1.04 ~exits:1.81 ~calls:3.30 ~branches:13.75
      ~psg_nodes_per_routine:9.47 ~psg_edges_per_routine:17.19
      ~edge_reduction_pct:35.4 ~node_increase_pct:0.4 ~psg_nodes_k:1.16
      ~psg_edges_k:2.10 ~cfg_arcs_k:4.20;
    row ~name:"gcc" ~suite:"SPECint95" ~description:"C compiler" ~routines:1878
      ~basic_blocks:69588 ~instructions_k:297.6 ~time_s:1.90 ~memory_mb:6.38
      ~entrances:1.00 ~exits:1.62 ~calls:9.86 ~branches:23.16
      ~psg_nodes_per_routine:22.45 ~psg_edges_per_routine:43.65
      ~edge_reduction_pct:48.5 ~node_increase_pct:0.5 ~psg_nodes_k:42.16
      ~psg_edges_k:81.97 ~cfg_arcs_k:125.91;
    row ~name:"go" ~suite:"SPECint95" ~description:"game playing" ~routines:462
      ~basic_blocks:12548 ~instructions_k:71.4 ~time_s:0.28 ~memory_mb:0.88
      ~entrances:1.01 ~exits:1.71 ~calls:4.92 ~branches:17.99
      ~psg_nodes_per_routine:12.58 ~psg_edges_per_routine:22.03
      ~edge_reduction_pct:12.2 ~node_increase_pct:0.2 ~psg_nodes_k:5.81
      ~psg_edges_k:10.18 ~cfg_arcs_k:21.95;
    row ~name:"ijpeg" ~suite:"SPECint95" ~description:"image compression"
      ~routines:393 ~basic_blocks:6814 ~instructions_k:42.8 ~time_s:0.16
      ~memory_mb:0.56 ~entrances:1.02 ~exits:1.49 ~calls:3.92 ~branches:10.55
      ~psg_nodes_per_routine:10.38 ~psg_edges_per_routine:16.16
      ~edge_reduction_pct:17.1 ~node_increase_pct:0.2 ~psg_nodes_k:4.08
      ~psg_edges_k:6.35 ~cfg_arcs_k:11.39;
    row ~name:"li" ~suite:"SPECint95" ~description:"lisp interpreter"
      ~routines:491 ~basic_blocks:6052 ~instructions_k:29.4 ~time_s:0.14
      ~memory_mb:0.56 ~entrances:1.01 ~exits:1.37 ~calls:3.49 ~branches:7.18
      ~psg_nodes_per_routine:9.41 ~psg_edges_per_routine:10.72
      ~edge_reduction_pct:1.3 ~node_increase_pct:0.4 ~psg_nodes_k:4.62
      ~psg_edges_k:5.27 ~cfg_arcs_k:10.74;
    row ~name:"m88ksim" ~suite:"SPECint95" ~description:"CPU simulator"
      ~routines:383 ~basic_blocks:8205 ~instructions_k:40.6 ~time_s:0.16
      ~memory_mb:0.58 ~entrances:1.02 ~exits:1.75 ~calls:4.66 ~branches:13.47
      ~psg_nodes_per_routine:12.14 ~psg_edges_per_routine:16.39
      ~edge_reduction_pct:1.2 ~node_increase_pct:0.5 ~psg_nodes_k:4.65
      ~psg_edges_k:6.28 ~cfg_arcs_k:14.02;
    row ~name:"perl" ~suite:"SPECint95" ~description:"perl interpreter"
      ~routines:487 ~basic_blocks:19468 ~instructions_k:92.7 ~time_s:0.42
      ~memory_mb:1.57 ~entrances:1.01 ~exits:1.47 ~calls:9.34 ~branches:25.55
      ~psg_nodes_per_routine:21.27 ~psg_edges_per_routine:40.73
      ~edge_reduction_pct:73.6 ~node_increase_pct:0.5 ~psg_nodes_k:10.36
      ~psg_edges_k:19.84 ~cfg_arcs_k:33.72;
    row ~name:"vortex" ~suite:"SPECint95" ~description:"object database"
      ~routines:818 ~basic_blocks:21880 ~instructions_k:110.0 ~time_s:0.59
      ~memory_mb:2.85 ~entrances:1.01 ~exits:1.20 ~calls:8.97 ~branches:15.00
      ~psg_nodes_per_routine:20.19 ~psg_edges_per_routine:50.11
      ~edge_reduction_pct:4.7 ~node_increase_pct:0.2 ~psg_nodes_k:16.51
      ~psg_edges_k:40.99 ~cfg_arcs_k:39.95;
    row ~name:"acad" ~suite:"PC" ~description:"Autodesk AutoCad (mechanical CAD)"
      ~routines:31766 ~basic_blocks:339962 ~instructions_k:1734.7 ~time_s:12.04
      ~memory_mb:41.11 ~entrances:1.00 ~exits:1.14 ~calls:5.02 ~branches:4.58
      ~psg_nodes_per_routine:12.18 ~psg_edges_per_routine:14.36
      ~edge_reduction_pct:1.8 ~node_increase_pct:0.2 ~psg_nodes_k:386.80
      ~psg_edges_k:456.07 ~cfg_arcs_k:612.11;
    row ~name:"excel" ~suite:"PC" ~description:"Microsoft Excel 5.0 (spreadsheet)"
      ~routines:12657 ~basic_blocks:301823 ~instructions_k:1506.3 ~time_s:8.95
      ~memory_mb:28.04 ~entrances:1.00 ~exits:1.00 ~calls:8.42 ~branches:12.98
      ~psg_nodes_per_routine:18.88 ~psg_edges_per_routine:26.66
      ~edge_reduction_pct:4.1 ~node_increase_pct:0.4 ~psg_nodes_k:238.91
      ~psg_edges_k:337.48 ~cfg_arcs_k:544.41;
    row ~name:"maxeda" ~suite:"PC" ~description:"OrCad MaxEDA 6.0 (electronic CAD)"
      ~routines:2126 ~basic_blocks:84053 ~instructions_k:418.6 ~time_s:2.02
      ~memory_mb:8.14 ~entrances:1.00 ~exits:1.12 ~calls:15.45 ~branches:20.25
      ~psg_nodes_per_routine:32.96 ~psg_edges_per_routine:46.33
      ~edge_reduction_pct:0.9 ~node_increase_pct:0.3 ~psg_nodes_k:70.08
      ~psg_edges_k:98.50 ~cfg_arcs_k:151.55;
    row ~name:"sqlservr" ~suite:"PC" ~description:"Microsoft Sqlservr 6.5 (database)"
      ~routines:3275 ~basic_blocks:123607 ~instructions_k:754.9 ~time_s:3.34
      ~memory_mb:10.17 ~entrances:1.02 ~exits:1.30 ~calls:10.48 ~branches:22.60
      ~psg_nodes_per_routine:23.31 ~psg_edges_per_routine:38.94
      ~edge_reduction_pct:80.0 ~node_increase_pct:0.2 ~psg_nodes_k:76.33
      ~psg_edges_k:127.54 ~cfg_arcs_k:211.74;
    row ~name:"texim" ~suite:"PC" ~description:"Welcom Software Texim 2.0 (project manager)"
      ~routines:1821 ~basic_blocks:50955 ~instructions_k:302.0 ~time_s:1.34
      ~memory_mb:5.36 ~entrances:1.00 ~exits:1.29 ~calls:11.24 ~branches:13.90
      ~psg_nodes_per_routine:24.91 ~psg_edges_per_routine:34.47
      ~edge_reduction_pct:3.6 ~node_increase_pct:0.6 ~psg_nodes_k:45.36
      ~psg_edges_k:62.77 ~cfg_arcs_k:90.79;
    row ~name:"ustation" ~suite:"PC"
      ~description:"Bentley Systems Microstation (mechanical CAD)" ~routines:12101
      ~basic_blocks:165929 ~instructions_k:916.4 ~time_s:5.21 ~memory_mb:16.61
      ~entrances:1.00 ~exits:1.35 ~calls:5.03 ~branches:6.86
      ~psg_nodes_per_routine:12.42 ~psg_edges_per_routine:15.76
      ~edge_reduction_pct:2.1 ~node_increase_pct:0.2 ~psg_nodes_k:150.27
      ~psg_edges_k:190.76 ~cfg_arcs_k:294.47;
    row ~name:"vc" ~suite:"PC" ~description:"Microsoft Visual C (compiler backend)"
      ~routines:2154 ~basic_blocks:82072 ~instructions_k:493.7 ~time_s:2.18
      ~memory_mb:6.18 ~entrances:1.03 ~exits:1.10 ~calls:9.11 ~branches:24.47
      ~psg_nodes_per_routine:20.51 ~psg_edges_per_routine:36.58
      ~edge_reduction_pct:55.4 ~node_increase_pct:0.8 ~psg_nodes_k:44.17
      ~psg_edges_k:78.80 ~cfg_arcs_k:146.34;
    row ~name:"winword" ~suite:"PC" ~description:"Microsoft Word 6.0 (word processing)"
      ~routines:12252 ~basic_blocks:288799 ~instructions_k:1520.8 ~time_s:8.30
      ~memory_mb:25.42 ~entrances:1.00 ~exits:1.01 ~calls:8.10 ~branches:13.02
      ~psg_nodes_per_routine:18.25 ~psg_edges_per_routine:24.64
      ~edge_reduction_pct:0.3 ~node_increase_pct:0.3 ~psg_nodes_k:223.56
      ~psg_edges_k:301.84 ~cfg_arcs_k:508.20;
  ]

let find name = List.find_opt (fun r -> String.equal r.name name) benchmarks

(* Multiway-branch dials, driven by the Table 4 edge reduction: a large
   reduction means the program has many call-carrying switch arms inside
   loops (§3.6's bad case); a tiny one means switches are rare or
   straight-through. *)
let switch_dials r =
  let red = r.edge_reduction_pct in
  if red >= 40.0 then (0.6, 6 + int_of_float (red /. 10.0), 0.9, 0.8)
  else if red >= 10.0 then (0.45, 8, 0.85, 0.7)
  else if red >= 1.0 then (0.1, 5, 0.65, 0.55)
  else (0.04, 4, 0.6, 0.5)

let params_of ?(scale = 1.0) r =
  let switches, fanout, loop_prob, arm_calls = switch_dials r in
  (* Calls placed as dedicated tokens: total calls minus those the switch
     arms will contribute. *)
  (* Loop-call density from the paper's PSG edge/node ratio: programs
     whose PSG has far more edges than nodes (vortex, gcc) get calls
     inside loops. *)
  let ratio = r.psg_edges_per_routine /. Float.max 1.0 r.psg_nodes_per_routine in
  (* Benchmarks with a high Table-4 reduction owe their edge density to
     switch loopbacks, already modelled by the dials above; discount it. *)
  let loop_call_prob =
    (* A few benchmarks need a hand-tuned density: their published edge
       counts mix loop-call connectivity with branching the generic
       formula cannot separate. *)
    match
      List.assoc_opt r.name
        [ ("go", 0.05); ("ijpeg", 0.08); ("texim", 0.3); ("ustation", 0.15);
          ("acad", 0.12); ("maxeda", 0.4) ]
    with
    | Some p -> p
    | None ->
        Float.min 0.9
          (Float.max 0.0 (((ratio -. 1.2) *. 1.2) -. (r.edge_reduction_pct /. 100.0)))
  in
  let loops = Float.min 1.5 (r.branches /. 8.0) in
  let arm_call_mean = switches *. float_of_int fanout *. arm_calls in
  let loop_call_mean = loops *. loop_call_prob *. 3.5 in
  let token_calls = Float.max 0.3 (r.calls -. arm_call_mean -. loop_call_mean) in
  (* Branch instructions contributed by non-diamond constructs. *)
  let switch_branches = switches *. (2.0 +. float_of_int fanout) in
  let exit_branches = r.exits -. 1.0 in
  let diamond_branches =
    Float.max 0.4 (r.branches -. loops -. switch_branches -. exit_branches)
  in
  {
    Params.seed = Hashtbl.hash r.name;
    routines = max 1 (int_of_float (float_of_int r.routines *. scale));
    target_instructions =
      max 64 (int_of_float (r.instructions_k *. 1000.0 *. scale));
    calls_per_routine = token_calls;
    branches_per_routine = diamond_branches;
    switches_per_routine = switches;
    switch_fanout = fanout;
    switch_loop_prob = loop_prob;
    switch_arm_calls = arm_calls;
    exits_per_routine = r.exits;
    extra_entry_prob = Float.max 0.0 (r.entrances -. 1.0);
    recursion_prob = 0.03;
    indirect_known_prob = 0.02;
    unknown_call_prob = 0.02;
    unknown_jump_prob = 0.01;
    exported_prob = 0.05;
    save_restore_prob = 0.6;
    loops_per_routine = loops;
    loop_call_prob;
    spill_prob = 0.1;
    guard_calls = false;
  }
