(** Structural well-formedness of programs.

    The analysis and interpreter assume these invariants; everything that
    constructs or parses a program should run [check] first.  Calls to
    routine names outside the program are {e not} errors — they model
    shared-library calls and are analysed conservatively (§3.5). *)

val check_routine : Routine.t -> string list
(** Diagnostics for one routine; empty when well-formed.  Checked:
    non-empty body, unique labels, labels within bounds, branch and switch
    targets defined, entry labels defined and pointing into the body,
    non-empty switch tables, and control unable to fall off the end. *)

val check : Program.t -> (unit, string list) result
(** All diagnostics for all routines. *)
