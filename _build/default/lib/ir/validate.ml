open Spike_isa

let check_routine (r : Routine.t) =
  let problems = ref [] in
  let report fmt = Format.kasprintf (fun s -> problems := (r.name ^ ": " ^ s) :: !problems) fmt in
  let len = Array.length r.insns in
  if len = 0 then report "empty routine body";
  (* Labels: unique, within [0 .. len]. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (l, i) ->
      if Hashtbl.mem seen l then report "duplicate label %s" l;
      Hashtbl.replace seen l ();
      if i < 0 || i > len then report "label %s out of bounds (%d)" l i)
    r.labels;
  let defined l = List.mem_assoc l r.labels in
  let target_ok l =
    match Routine.label_index r l with Some i -> i < len | None -> false
  in
  Array.iteri
    (fun i insn ->
      List.iter
        (fun l ->
          if not (defined l) then report "instruction %d branches to undefined label %s" i l
          else if not (target_ok l) then
            report "instruction %d branches to end-of-routine label %s" i l)
        (Insn.branch_targets insn);
      match insn with
      | Insn.Switch { table; _ } when Array.length table = 0 ->
          report "instruction %d has an empty jump table" i
      | Insn.Switch _ | Insn.Li _ | Insn.Lda _ | Insn.Mov _ | Insn.Binop _ | Insn.Load _
      | Insn.Store _ | Insn.Br _ | Insn.Bcond _ | Insn.Jump_unknown _ | Insn.Call _
      | Insn.Ret | Insn.Nop ->
          ())
    r.insns;
  List.iter
    (fun entry ->
      match Routine.label_index r entry with
      | None -> report "entry %s is not a defined label" entry
      | Some i -> if i >= len then report "entry %s points past the routine body" entry)
    r.entries;
  if len > 0 && Insn.falls_through r.insns.(len - 1) then
    report "control can fall off the end (last instruction %s falls through)"
      (Insn.to_string r.insns.(len - 1));
  List.rev !problems

let check p =
  let problems =
    Array.fold_left (fun acc r -> acc @ check_routine r) [] (Program.routines p)
  in
  match problems with [] -> Ok () | _ :: _ -> Error problems
