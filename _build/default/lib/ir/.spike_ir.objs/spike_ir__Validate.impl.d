lib/ir/validate.ml: Array Format Hashtbl Insn List Program Routine Spike_isa
