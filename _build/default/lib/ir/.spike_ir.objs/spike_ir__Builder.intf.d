lib/ir/builder.mli: Insn Routine Spike_isa
