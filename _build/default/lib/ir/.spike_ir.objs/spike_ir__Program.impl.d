lib/ir/program.ml: Array Format Fun Hashtbl Insn List Option Routine Spike_isa String
