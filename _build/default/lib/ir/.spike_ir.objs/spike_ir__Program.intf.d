lib/ir/program.mli: Format Insn Routine Spike_isa
