lib/ir/routine.mli: Format Insn Spike_isa
