lib/ir/validate.mli: Program Routine
