lib/ir/routine.ml: Array Format Insn List Spike_isa
