lib/ir/builder.ml: Insn List Printf Routine Spike_isa Spike_support Vec
