open Spike_isa

type t = {
  name : string;
  insns : Insn.t array;
  labels : (string * int) list;
  entries : string list;
  exported : bool;
}

let make ?(exported = false) ~name ~entries ~labels insns =
  if entries = [] then invalid_arg (name ^ ": routine needs at least one entry");
  { name; insns; labels; entries; exported }

let label_index r label = List.assoc_opt label r.labels

let primary_entry r =
  match r.entries with
  | entry :: _ -> entry
  | [] -> assert false (* excluded by [make] *)

let instruction_count r = Array.length r.insns

let exit_count r =
  Array.fold_left (fun n insn -> match insn with Insn.Ret -> n + 1 | _ -> n) 0 r.insns

let pp ppf r =
  Format.fprintf ppf ".routine %s%s@." r.name (if r.exported then " .exported" else "");
  List.iter (fun entry -> Format.fprintf ppf ".entry %s@." entry) r.entries;
  let labels_at i =
    List.filter_map (fun (l, j) -> if i = j then Some l else None) r.labels
  in
  Array.iteri
    (fun i insn ->
      List.iter (fun l -> Format.fprintf ppf "%s:@." l) (labels_at i);
      Format.fprintf ppf "  %a@." Insn.pp insn)
    r.insns;
  List.iter (fun l -> Format.fprintf ppf "%s:@." l) (labels_at (Array.length r.insns));
  Format.fprintf ppf ".end@."
