(** Routines: the unit the optimizer analyses and transforms.

    A routine is a labelled instruction stream with one or more entry
    points and zero or more exits ([ret] instructions).  Labels name
    instruction positions; branch targets refer to labels within the same
    routine, call targets refer to other routines by name. *)

open Spike_isa

type t = {
  name : string;
  insns : Insn.t array;
  labels : (string * int) list;
      (** label [->] index of the instruction it precedes; an index equal to
          [Array.length insns] labels the routine's end (only valid if
          nothing branches there). *)
  entries : string list;
      (** labels at which callers may enter; never empty.  The first is the
          primary entry used by direct calls. *)
  exported : bool;
      (** whether the routine may be called from outside the analysed image
          (forces conservative live-at-exit assumptions). *)
}

val make :
  ?exported:bool ->
  name:string ->
  entries:string list ->
  labels:(string * int) list ->
  Insn.t array ->
  t

val label_index : t -> string -> int option
(** Position of a label, if defined. *)

val primary_entry : t -> string

val instruction_count : t -> int

val exit_count : t -> int
(** Number of [ret] instructions. *)

val pp : Format.formatter -> t -> unit
(** Assembly-style listing with labels and directives. *)
