(** Whole programs: the unit Spike optimizes.

    A program is a set of routines plus the name of the routine where
    execution starts.  Direct calls naming a routine that is not in the
    program are treated as calls to shared-library code and analysed under
    the calling-standard assumption (paper §3.5). *)

open Spike_isa

type t

val make : main:string -> Routine.t list -> t
(** @raise Invalid_argument on duplicate routine names or a missing
    [main]. *)

val main : t -> string
val routines : t -> Routine.t array
val routine_count : t -> int
val find : t -> string -> Routine.t option
val find_index : t -> string -> int option
val get : t -> int -> Routine.t
val iter : (int -> Routine.t -> unit) -> t -> unit
val instruction_count : t -> int

val map_routines : (Routine.t -> Routine.t) -> t -> t
(** Rebuild the program with each routine transformed (names must be
    preserved by the transformation). *)

val callees_of : t -> Routine.t -> string list
(** Names of routines in [t] called directly by the given routine
    (deduplicated, program order). *)

val pp : Format.formatter -> t -> unit
(** Full assembly listing, starting with a [.main] directive. *)

val callee_summary_targets : t -> Insn.callee -> int list option
(** Indices of the routines a call may target: [Some []] never happens;
    [None] means the target set is unknown (apply the calling-standard
    assumption).  Direct calls to names outside the program and indirect
    calls without a target list are both [None]. *)
