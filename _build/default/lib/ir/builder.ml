open Spike_support
open Spike_isa

type t = {
  name : string;
  exported : bool;
  insns : Insn.t Vec.t;
  mutable labels : (string * int) list;
  mutable entries : string list; (* reverse declaration order *)
  mutable counter : int;
}

let create ?(exported = false) name =
  { name; exported; insns = Vec.create (); labels = []; entries = []; counter = 0 }

let emit b insn = Vec.push b.insns insn
let position b = Vec.length b.insns

let label b l =
  if List.mem_assoc l b.labels then
    invalid_arg (Printf.sprintf "Builder.label: %s already defined in %s" l b.name);
  b.labels <- (l, position b) :: b.labels

let fresh_label b prefix =
  let rec attempt () =
    let candidate = Printf.sprintf "%s%d" prefix b.counter in
    b.counter <- b.counter + 1;
    if List.mem_assoc candidate b.labels then attempt () else candidate
  in
  attempt ()

let declare_entry b l = b.entries <- l :: b.entries

let finish b =
  let entries =
    match List.rev b.entries with
    | [] ->
        let l = b.name ^ "$entry" in
        if not (List.mem_assoc l b.labels) then b.labels <- (l, 0) :: b.labels;
        [ l ]
    | declared -> declared
  in
  Routine.make ~exported:b.exported ~name:b.name ~entries
    ~labels:(List.rev b.labels) (Vec.to_array b.insns)
