open Spike_isa

type t = {
  routines : Routine.t array;
  index : (string, int) Hashtbl.t;
  main : string;
}

let make ~main routine_list =
  let routines = Array.of_list routine_list in
  let index = Hashtbl.create (Array.length routines) in
  Array.iteri
    (fun i (r : Routine.t) ->
      if Hashtbl.mem index r.name then
        invalid_arg ("Program.make: duplicate routine " ^ r.name);
      Hashtbl.add index r.name i)
    routines;
  if not (Hashtbl.mem index main) then
    invalid_arg ("Program.make: main routine " ^ main ^ " not defined");
  { routines; index; main }

let main p = p.main
let routines p = p.routines
let routine_count p = Array.length p.routines
let find_index p name = Hashtbl.find_opt p.index name
let find p name = Option.map (fun i -> p.routines.(i)) (find_index p name)
let get p i = p.routines.(i)
let iter f p = Array.iteri f p.routines

let instruction_count p =
  Array.fold_left (fun n r -> n + Routine.instruction_count r) 0 p.routines

let map_routines f p =
  let routines = Array.map f p.routines in
  Array.iteri
    (fun i (r : Routine.t) ->
      if not (String.equal r.name p.routines.(i).Routine.name) then
        invalid_arg "Program.map_routines: transformation renamed a routine")
    routines;
  { p with routines }

let callees_of p (r : Routine.t) =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  Array.iter
    (fun insn ->
      match Insn.call_callee insn with
      | Some (Insn.Direct name) when Hashtbl.mem p.index name ->
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.add seen name ();
            out := name :: !out
          end
      | Some (Insn.Direct _) | Some (Insn.Indirect _) | None -> ())
    r.insns;
  List.rev !out

let callee_summary_targets p callee =
  let resolve name = find_index p name in
  match callee with
  | Insn.Direct name -> (
      match resolve name with Some i -> Some [ i ] | None -> None)
  | Insn.Indirect (_, None) -> None
  | Insn.Indirect (_, Some names) ->
      let indices = List.map resolve names in
      if List.exists Option.is_none indices || names = [] then None
      else Some (List.filter_map Fun.id indices)

let pp ppf p =
  Format.fprintf ppf ".main %s@.@." p.main;
  Array.iter (fun r -> Format.fprintf ppf "%a@." Routine.pp r) p.routines
