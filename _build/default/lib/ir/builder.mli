(** Imperative construction of routines.

    The generator, the examples and many tests build routines
    programmatically; this module keeps label bookkeeping out of their way.
    A builder accumulates instructions and label definitions; {!finish}
    freezes it into a {!Routine.t}.  Unless an entry is declared explicitly,
    the routine gets a single entry at its first instruction. *)

open Spike_isa

type t

val create : ?exported:bool -> string -> t
(** [create name] starts a routine called [name]. *)

val emit : t -> Insn.t -> unit

val label : t -> string -> unit
(** Define a label at the current position.
    @raise Invalid_argument if the label is already defined. *)

val fresh_label : t -> string -> string
(** [fresh_label b prefix] invents a unique label (not yet defined nor
    previously returned) of the form [prefix<n>]. *)

val declare_entry : t -> string -> unit
(** Mark a label as an additional entry point.  Entries keep declaration
    order; the first becomes the primary entry. *)

val position : t -> int
(** Number of instructions emitted so far. *)

val finish : t -> Routine.t
(** Freeze the builder.  If no entry was declared, defines label
    ["<name>$entry"] at position 0 and uses it. *)
