bench/tables.ml: Calibrate Format Int List Measure Params Printf Spike_core Spike_synth String
