bench/measure.ml: Analysis Array Calibrate Generator Insn List Memmeter Program Psg Psg_build Psg_stats Routine Spike_cfg Spike_core Spike_ir Spike_isa Spike_supercfg Spike_support Spike_synth Timer
