bench/layout_bench.ml: Array Format Generator Icache List Params Pettis_hansen Spike_layout Spike_synth String
