bench/figure1.ml: Analysis Cost_model Format Generator List Opt Params Spike_core Spike_interp Spike_opt Spike_synth String
