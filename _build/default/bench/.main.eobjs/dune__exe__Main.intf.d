bench/main.mli:
