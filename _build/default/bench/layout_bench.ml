(* Profile-guided code positioning (paper §1, [Pettis90]): Spike's other
   headline use of whole-program information.  For each workload we
   profile once, reorder routines with Pettis-Hansen, and replay under a
   direct-mapped I-cache model, comparing against the original and a
   pessimal (reversed) layout. *)

open Spike_layout
open Spike_synth

let line ppf = Format.fprintf ppf "%s@." (String.make 100 '-')

let workloads =
  [
    ("small", { Params.default with Params.seed = 21 });
    ( "call-heavy",
      {
        Params.default with
        Params.seed = 22;
        routines = 48;
        target_instructions = 4000;
        calls_per_routine = 6.0;
      } );
    ( "deep",
      {
        Params.default with
        Params.seed = 23;
        routines = 64;
        target_instructions = 6000;
        recursion_prob = 0.3;
      } );
  ]

let print ppf =
  Format.fprintf ppf "@.=== Code layout: Pettis-Hansen routine ordering under an 8KB I-cache@.";
  line ppf;
  Format.fprintf ppf "%-12s %10s | %10s %10s %10s@." "workload" "accesses" "original"
    "reversed" "pettis-hansen";
  List.iter
    (fun (label, params) ->
      let program = Generator.generate params in
      let config = { Icache.line_instructions = 8; lines = 64 } in
      (* a 2KB cache stresses layout on these program sizes *)
      let _, weights = Pettis_hansen.collect_weights ~fuel:5_000_000 program in
      let identity = Pettis_hansen.original_order program in
      let reversed =
        let a = Array.copy identity in
        let n = Array.length a in
        Array.mapi (fun i _ -> a.(n - 1 - i)) a
      in
      let ph = Pettis_hansen.order program weights in
      let rate layout =
        let _, stats = Icache.simulate ~fuel:5_000_000 config ~layout program in
        (stats.Icache.accesses, Icache.miss_rate stats)
      in
      let accesses, original = rate identity in
      let _, rev = rate reversed in
      let _, pettis = rate ph in
      Format.fprintf ppf "%-12s %10d | %9.3f%% %9.3f%% %9.3f%%@." label accesses
        (100.0 *. original) (100.0 *. rev) (100.0 *. pettis))
    workloads
