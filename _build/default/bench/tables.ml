(* Rendering of the paper's tables and figures, paper numbers next to the
   measurements taken on the calibrated synthetic workloads. *)

open Spike_synth

let fl = float_of_int
let line ppf = Format.fprintf ppf "%s@." (String.make 100 '-')

let header title ppf =
  Format.fprintf ppf "@.=== %s@." title;
  line ppf

let table1 ppf =
  header "Table 1: PC application benchmarks (paper) -> synthetic equivalents" ppf;
  Format.fprintf ppf "%-10s %-48s %s@." "name" "paper application" "our workload";
  line ppf;
  List.iter
    (fun (r : Calibrate.paper_row) ->
      if String.equal r.suite "PC" then
        Format.fprintf ppf "%-10s %-48s calibrated synthetic (seed %d)@." r.name
          r.description
          (Calibrate.params_of r).Params.seed)
    Calibrate.benchmarks

let table2 ppf (ms : Measure.t list) =
  header "Table 2: benchmark size, dataflow analysis time and memory usage" ppf;
  Format.fprintf ppf "%-10s %9s %9s %8s | %9s %9s | %9s %9s@." "benchmark" "routines"
    "blocks" "insns(k)" "paper(s)" "ours(s)" "paper(MB)" "ours(MB)";
  line ppf;
  List.iter
    (fun (m : Measure.t) ->
      Format.fprintf ppf "%-10s %9d %9d %8.1f | %9.2f %9.3f | %9.2f %9.2f@."
        m.Measure.row.Calibrate.name m.Measure.routines m.Measure.blocks
        (fl m.Measure.instructions /. 1000.0)
        m.Measure.row.Calibrate.time_s m.Measure.time_s
        m.Measure.row.Calibrate.memory_mb m.Measure.memory_mb)
    ms

let table3 ppf (ms : Measure.t list) =
  header "Table 3: benchmark characteristics influencing PSG size (per routine)" ppf;
  Format.fprintf ppf "%-10s | %-11s | %-11s | %-13s | %-13s | %-13s | %-13s@."
    "benchmark" "entrances" "exits" "calls" "branches" "PSG nodes" "PSG edges";
  Format.fprintf ppf "%-10s | %5s %5s | %5s %5s | %6s %6s | %6s %6s | %6s %6s | %6s %6s@."
    "" "paper" "ours" "paper" "ours" "paper" "ours" "paper" "ours" "paper" "ours"
    "paper" "ours";
  line ppf;
  List.iter
    (fun (m : Measure.t) ->
      let r = m.Measure.row in
      let per x = fl x /. fl m.Measure.routines in
      Format.fprintf ppf
        "%-10s | %5.2f %5.2f | %5.2f %5.2f | %6.2f %6.2f | %6.2f %6.2f | %6.2f %6.2f \
         | %6.2f %6.2f@."
        r.Calibrate.name r.Calibrate.entrances m.Measure.entrances_per_routine
        r.Calibrate.exits m.Measure.exits_per_routine r.Calibrate.calls
        m.Measure.calls_per_routine r.Calibrate.branches m.Measure.branches_per_routine
        r.Calibrate.psg_nodes_per_routine
        (per m.Measure.psg.Spike_core.Psg_stats.nodes)
        r.Calibrate.psg_edges_per_routine
        (per m.Measure.psg.Spike_core.Psg_stats.edges))
    ms

let table4 ppf (ms : Measure.t list) =
  header "Table 4: PSG edge reduction provided by branch nodes" ppf;
  Format.fprintf ppf "%-10s | %-19s | %-19s@." "benchmark" "edge reduction"
    "node increase";
  Format.fprintf ppf "%-10s | %8s %8s | %8s %8s@." "" "paper" "ours" "paper" "ours";
  line ppf;
  List.iter
    (fun (m : Measure.t) ->
      let r = m.Measure.row in
      Format.fprintf ppf "%-10s | %7.1f%% %7.1f%% | %7.1f%% %7.1f%%@." r.Calibrate.name
        r.Calibrate.edge_reduction_pct
        (Measure.edge_reduction_pct m)
        r.Calibrate.node_increase_pct
        (Measure.node_increase_pct m))
    ms

let table5 ppf (ms : Measure.t list) =
  header "Table 5: PSG nodes and edges vs CFG basic blocks and arcs (thousands)" ppf;
  Format.fprintf ppf "%-10s | %-17s | %-17s | %-17s | %-17s | %5s %5s@." "benchmark"
    "PSG nodes (k)" "PSG edges (k)" "blocks (k)" "CFG arcs (k)" "n/bb" "e/arc";
  Format.fprintf ppf "%-10s | %8s %8s | %8s %8s | %8s %8s | %8s %8s |@." "" "paper"
    "ours" "paper" "ours" "paper" "ours" "paper" "ours";
  line ppf;
  List.iter
    (fun (m : Measure.t) ->
      let r = m.Measure.row in
      let k x = fl x /. 1000.0 in
      let nodes_k = k m.Measure.psg.Spike_core.Psg_stats.nodes in
      let edges_k = k m.Measure.psg.Spike_core.Psg_stats.edges in
      let blocks_k = k m.Measure.blocks in
      let arcs_k = k m.Measure.supergraph_arcs in
      Format.fprintf ppf
        "%-10s | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f | %5.2f %5.2f@."
        r.Calibrate.name r.Calibrate.psg_nodes_k nodes_k r.Calibrate.psg_edges_k edges_k
        (fl r.Calibrate.basic_blocks /. 1000.0)
        blocks_k r.Calibrate.cfg_arcs_k arcs_k (nodes_k /. blocks_k)
        (edges_k /. arcs_k))
    ms

let figure13 ppf (ms : Measure.t list) =
  header "Figure 13: fraction of total dataflow time per analysis stage" ppf;
  Format.fprintf ppf "%-10s %10s %10s %10s %10s %10s | %8s@." "benchmark" "CFG build"
    "Init" "PSG build" "Phase 1" "Phase 2" "total(s)";
  line ppf;
  List.iter
    (fun (m : Measure.t) ->
      let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 m.Measure.stages in
      let pct stage =
        match List.assoc_opt stage m.Measure.stages with
        | Some s when total > 0.0 -> 100.0 *. s /. total
        | Some _ | None -> 0.0
      in
      Format.fprintf ppf "%-10s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%% | %8.3f@."
        m.Measure.row.Calibrate.name
        (pct Spike_core.Analysis.stage_cfg_build)
        (pct Spike_core.Analysis.stage_init)
        (pct Spike_core.Analysis.stage_psg_build)
        (pct Spike_core.Analysis.stage_phase1)
        (pct Spike_core.Analysis.stage_phase2)
        total)
    ms

let figure14 ppf (ms : Measure.t list) sweep =
  header "Figure 14: total analysis time vs routines / basic blocks / instructions" ppf;
  Format.fprintf ppf "%-12s %9s %9s %12s %10s@." "benchmark" "routines" "blocks"
    "instructions" "time(s)";
  line ppf;
  let sorted =
    List.sort
      (fun (a : Measure.t) b -> Int.compare a.Measure.instructions b.Measure.instructions)
      ms
  in
  List.iter
    (fun (m : Measure.t) ->
      Format.fprintf ppf "%-12s %9d %9d %12d %10.3f@." m.Measure.row.Calibrate.name
        m.Measure.routines m.Measure.blocks m.Measure.instructions m.Measure.time_s)
    sorted;
  Format.fprintf ppf "@.scaling sweep (gcc shape, scale factor on routines and size):@.";
  List.iter
    (fun (scale, (m : Measure.t)) ->
      Format.fprintf ppf "%-12s %9d %9d %12d %10.3f@."
        (Printf.sprintf "gcc x%.2f" scale)
        m.Measure.routines m.Measure.blocks m.Measure.instructions m.Measure.time_s)
    sweep

let figure15 ppf (ms : Measure.t list) sweep =
  header "Figure 15: analysis memory vs routines / basic blocks / instructions" ppf;
  Format.fprintf ppf "%-12s %9s %9s %12s %12s@." "benchmark" "routines" "blocks"
    "instructions" "memory(MB)";
  line ppf;
  let sorted =
    List.sort
      (fun (a : Measure.t) b -> Int.compare a.Measure.instructions b.Measure.instructions)
      ms
  in
  List.iter
    (fun (m : Measure.t) ->
      Format.fprintf ppf "%-12s %9d %9d %12d %12.2f@." m.Measure.row.Calibrate.name
        m.Measure.routines m.Measure.blocks m.Measure.instructions m.Measure.memory_mb)
    sorted;
  Format.fprintf ppf "@.scaling sweep (gcc shape):@.";
  List.iter
    (fun (scale, (m : Measure.t)) ->
      Format.fprintf ppf "%-12s %9d %9d %12d %12.2f@."
        (Printf.sprintf "gcc x%.2f" scale)
        m.Measure.routines m.Measure.blocks m.Measure.instructions m.Measure.memory_mb)
    sweep
