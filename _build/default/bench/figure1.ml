(* Figure 1 / §1: the optimizations the summaries enable, with
   profile-weighted cycle savings.  The paper reports 5-10% improvements
   (up to 20%) from the summary-driven transformations; we report the same
   statistic from the cost model over executable synthetic workloads. *)

open Spike_synth
open Spike_core
open Spike_opt

type result = {
  label : string;
  report : Opt.report;
  cycles_before : int;
  cycles_after : int;
  improvement_pct : float;
}

let optimize_workload label params =
  let program = Generator.generate params in
  let analysis = Analysis.run program in
  let optimized, report = Opt.run analysis in
  let profile_of p =
    match Spike_interp.Profile.collect ~fuel:5_000_000 p with
    | Spike_interp.Machine.Halted _, profile -> profile
    | Spike_interp.Machine.Trapped _, profile -> profile
  in
  let before_profile = profile_of program in
  let after_profile = profile_of optimized in
  let cycles p profile =
    Cost_model.program_cycles
      ~count:(fun ~routine ~index -> Spike_interp.Profile.count profile ~routine ~index)
      p
  in
  let cycles_before = cycles program before_profile in
  let cycles_after = cycles optimized after_profile in
  {
    label;
    report;
    cycles_before;
    cycles_after;
    improvement_pct = Cost_model.improvement_percent ~before:cycles_before ~after:cycles_after;
  }

let workloads =
  [
    ("small", { Params.default with Params.seed = 11 });
    ( "spill-heavy",
      {
        Params.default with
        Params.seed = 12;
        routines = 24;
        target_instructions = 1600;
        save_restore_prob = 0.9;
        calls_per_routine = 5.0;
      } );
    ( "call-heavy",
      {
        Params.default with
        Params.seed = 13;
        routines = 40;
        target_instructions = 3000;
        calls_per_routine = 8.0;
        branches_per_routine = 2.0;
      } );
  ]

let print ppf =
  Format.fprintf ppf "@.=== Figure 1: summary-enabled optimizations@.";
  Format.fprintf ppf "%s@." (String.make 100 '-');
  Format.fprintf ppf "%-12s %7s %7s %7s %10s %12s %12s %12s@." "workload" "spill"
    "s/r" "dead" "insns" "cycles-pre" "cycles-post" "improvement";
  List.iter
    (fun (label, params) ->
      let r = optimize_workload label params in
      Format.fprintf ppf "%-12s %7d %7d %7d %4d->%-5d %12d %12d %11.1f%%@." r.label
        r.report.Opt.spills_removed r.report.Opt.save_restores_rewritten
        r.report.Opt.dead_instructions_removed r.report.Opt.instructions_before
        r.report.Opt.instructions_after r.cycles_before r.cycles_after
        r.improvement_pct)
    workloads
