(* Ablations of the paper's design choices, beyond the branch-node ablation
   Table 4 already measures:

   1. The §3.4 callee-saved filter: how much summary precision and
      optimization opportunity the save/restore transparency buys.
   2. §3.5 external summaries: precision with compiler/linker-provided
      summaries for out-of-image calls vs the calling-standard assumption.
   3. PSG valid-paths precision vs the context-insensitive supergraph. *)

open Spike_support
open Spike_isa
open Spike_ir
open Spike_core
open Spike_synth

let line ppf = Format.fprintf ppf "%s@." (String.make 100 '-')

let mean_cardinal sets =
  if sets = [] then 0.0
  else
    float_of_int (List.fold_left (fun n s -> n + Regset.cardinal s) 0 sets)
    /. float_of_int (List.length sets)

(* --- 1. §3.4 filter ----------------------------------------------------- *)

let filter_ablation ppf =
  Format.fprintf ppf "@.=== Ablation: the §3.4 callee-saved save/restore filter@.";
  line ppf;
  let params =
    { Params.default with Params.seed = 31; routines = 40; target_instructions = 3000;
      save_restore_prob = 0.8 }
  in
  let program = Generator.generate params in
  let with_filter = Analysis.run program in
  let without = Analysis.run ~callee_saved_filter:false program in
  let killed a =
    Array.to_list (Array.map (fun (c : Summary.call_class) -> c.Summary.killed) a.Analysis.call_classes)
  in
  let used a =
    Array.to_list (Array.map (fun (c : Summary.call_class) -> c.Summary.used) a.Analysis.call_classes)
  in
  Format.fprintf ppf "mean |call-killed| with filter:    %.2f@."
    (mean_cardinal (killed with_filter));
  Format.fprintf ppf "mean |call-killed| without filter: %.2f@."
    (mean_cardinal (killed without));
  Format.fprintf ppf "mean |call-used|   with filter:    %.2f@."
    (mean_cardinal (used with_filter));
  Format.fprintf ppf "mean |call-used|   without filter: %.2f@."
    (mean_cardinal (used without));
  let _, report_with = Spike_opt.Opt.run with_filter in
  let _, report_without = Spike_opt.Opt.run without in
  Format.fprintf ppf
    "optimizer with filter:    %d save/restores reallocated, %d dead instructions@."
    report_with.Spike_opt.Opt.save_restores_rewritten
    report_with.Spike_opt.Opt.dead_instructions_removed;
  Format.fprintf ppf
    "optimizer without filter: %d save/restores reallocated, %d dead instructions@."
    report_without.Spike_opt.Opt.save_restores_rewritten
    report_without.Spike_opt.Opt.dead_instructions_removed

(* --- 2. §3.5 external summaries ------------------------------------------ *)

(* Externalize a fraction of direct call targets: rename the callee to a
   name outside the image and remember the true summary under that name.
   Comparing analyses with and without the summaries isolates what the
   compiler/linker channel is worth. *)
let externalize program (analysis : Analysis.t) fraction =
  let victims = ref [] in
  Program.iter
    (fun r (routine : Routine.t) ->
      if
        (not (String.equal routine.Routine.name (Program.main program)))
        && r * 7919 mod 100 < int_of_float (fraction *. 100.0)
        && Routine.exit_count routine > 0
      then victims := routine.Routine.name :: !victims)
    program;
  let victims = !victims in
  let is_victim name = List.mem name victims in
  let externals_table =
    List.map
      (fun name ->
        let idx = Option.get (Program.find_index program name) in
        let c = analysis.Analysis.call_classes.(idx) in
        ( "ext_" ^ name,
          {
            Psg.x_used = c.Summary.used;
            x_defined = c.Summary.defined;
            x_killed = c.Summary.killed;
          } ))
      victims
  in
  (* Rewrite calls to victims into calls to the external names; the victim
     routines stay in the image (now possibly uncalled), modelling a
     library boundary. *)
  let rewritten =
    Program.map_routines
      (fun (routine : Routine.t) ->
        let insns =
          Array.map
            (fun insn ->
              match insn with
              | Insn.Call { callee = Insn.Direct name } when is_victim name ->
                  Insn.Call { callee = Insn.Direct ("ext_" ^ name) }
              | _ -> insn)
            routine.Routine.insns
        in
        { routine with Routine.insns })
      program
  in
  (rewritten, externals_table)

let externals_ablation ppf =
  Format.fprintf ppf "@.=== Ablation: §3.5 compiler/linker summaries for external calls@.";
  line ppf;
  let params =
    { Params.default with Params.seed = 77; routines = 40; target_instructions = 3000 }
  in
  let program = Generator.generate params in
  let base = Analysis.run program in
  let rewritten, table = externalize program base 0.3 in
  let with_summaries =
    Analysis.run
      ~externals:(fun name -> List.assoc_opt name table)
      rewritten
  in
  let without = Analysis.run rewritten in
  let live_entry a =
    Array.to_list
      (Array.map
         (fun (s : Summary.t) ->
           match s.Summary.live_at_entry with (_, l) :: _ -> l | [] -> Regset.empty)
         a.Analysis.summaries)
  in
  Format.fprintf ppf "externalized direct-call targets: %d@." (List.length table);
  (* Per-site comparison: what each analysis believes external calls use
     and kill.  The assumption is not a safe over-approximation — it is the
     calling standard taken on faith (arguments used, temporaries killed) —
     so the summaries both tighten and correct it. *)
  let site_sets (a : Analysis.t) =
    Array.to_list a.Analysis.psg.Psg.calls
    |> List.filter_map (fun (info : Psg.call_info) ->
           match info.Psg.callee with
           | Insn.Direct name when String.length name > 4 && String.sub name 0 4 = "ext_"
             ->
               Some (Analysis.site_class a info)
           | _ -> None)
  in
  let used_of sites = List.map (fun (c : Summary.call_class) -> c.Summary.used) sites in
  let killed_of sites = List.map (fun (c : Summary.call_class) -> c.Summary.killed) sites in
  let s_with = site_sets with_summaries and s_without = site_sets without in
  Format.fprintf ppf "mean |call-used| at external sites, summaries:  %.2f@."
    (mean_cardinal (used_of s_with));
  Format.fprintf ppf "mean |call-used| at external sites, assumption: %.2f@."
    (mean_cardinal (used_of s_without));
  Format.fprintf ppf "mean |call-killed| at external sites, summaries:  %.2f@."
    (mean_cardinal (killed_of s_with));
  Format.fprintf ppf "mean |call-killed| at external sites, assumption: %.2f@."
    (mean_cardinal (killed_of s_without));
  Format.fprintf ppf "mean |live-at-entry| with summaries:   %.2f@."
    (mean_cardinal (live_entry with_summaries));
  Format.fprintf ppf "mean |live-at-entry| with assumption:  %.2f@."
    (mean_cardinal (live_entry without));
  let _, r_with = Spike_opt.Opt.run with_summaries in
  let _, r_without = Spike_opt.Opt.run without in
  Format.fprintf ppf "dead instructions removed with summaries:  %d@."
    r_with.Spike_opt.Opt.dead_instructions_removed;
  Format.fprintf ppf "dead instructions removed with assumption: %d@."
    r_without.Spike_opt.Opt.dead_instructions_removed

(* --- 3. valid-paths precision vs the supergraph --------------------------- *)

let precision_ablation ppf =
  Format.fprintf ppf
    "@.=== Ablation: meet-over-valid-paths (PSG) vs the context-insensitive \
     supergraph@.";
  line ppf;
  Format.fprintf ppf "%-10s %10s %14s %16s@." "benchmark" "entries" "looser-entries"
    "extra-live-regs";
  List.iter
    (fun name ->
      match Calibrate.find name with
      | None -> ()
      | Some row ->
          let program = Generator.generate (Calibrate.params_of ~scale:0.1 row) in
          let analysis = Analysis.run program in
          let super = Spike_supercfg.Supercfg.build program analysis.Analysis.cfgs in
          let live = Spike_supercfg.Supercfg.liveness super analysis.Analysis.defuses in
          let total = ref 0 and looser = ref 0 and extra = ref 0 in
          Program.iter
            (fun r (_ : Routine.t) ->
              match
                ( (analysis.Analysis.summaries.(r)).Summary.live_at_entry,
                  analysis.Analysis.cfgs.(r).Spike_cfg.Cfg.entry_blocks )
              with
              | (_, psg_live) :: _, (_, entry_block) :: _ ->
                  incr total;
                  let super_live =
                    Regset.inter
                      (Spike_supercfg.Supercfg.live_in live ~routine:r ~block:entry_block)
                      Calling_standard.all_allocatable
                  in
                  let d = Regset.cardinal (Regset.diff super_live psg_live) in
                  if d > 0 then begin
                    incr looser;
                    extra := !extra + d
                  end
              | _, _ -> ())
            program;
          Format.fprintf ppf "%-10s %10d %14d %16.1f@." name !total !looser
            (if !looser = 0 then 0.0 else float_of_int !extra /. float_of_int !looser))
    [ "compress"; "li"; "perl"; "vortex"; "vc" ]

let print ppf =
  filter_ablation ppf;
  externals_ablation ppf;
  precision_ablation ppf
