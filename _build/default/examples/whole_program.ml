(* Whole-program scale: generate a gcc-shaped synthetic application,
   analyse it, compare the PSG against the whole-program CFG baseline, and
   check the summaries against the brute-force reference and (on an
   executable workload) against actual execution.

     dune exec examples/whole_program.exe *)

open Spike_support
open Spike_ir
open Spike_core
open Spike_synth

let () =
  (* A tenth-scale gcc: ~190 routines, ~30k instructions. *)
  let row =
    match Calibrate.find "gcc" with Some r -> r | None -> assert false
  in
  let program = Generator.generate (Calibrate.params_of ~scale:0.1 row) in
  Format.printf "generated gcc-shaped workload: %d routines, %d instructions@."
    (Program.routine_count program)
    (Program.instruction_count program);
  let analysis, bytes = Memmeter.measure (fun () -> Analysis.run program) in
  Format.printf "@.%a@." Analysis.pp_times analysis;
  Format.printf "memory retained by the analysis: %.2f MB@." (Memmeter.megabytes bytes);
  Format.printf "%a@." Psg_stats.pp (Psg_stats.of_psg analysis.Analysis.psg);
  (* The compact representation vs the full CFG (Table 5's point). *)
  let blocks =
    Array.fold_left (fun n c -> n + Spike_cfg.Cfg.block_count c) 0 analysis.Analysis.cfgs
  in
  let super = Spike_supercfg.Supercfg.build program analysis.Analysis.cfgs in
  let stats = Psg_stats.of_psg analysis.Analysis.psg in
  Format.printf "@.PSG nodes / CFG blocks: %d / %d = %.2f@." stats.Psg_stats.nodes blocks
    (float_of_int stats.Psg_stats.nodes /. float_of_int blocks);
  Format.printf "PSG edges / CFG arcs:   %d / %d = %.2f@." stats.Psg_stats.edges
    (Spike_supercfg.Supercfg.arc_count super)
    (float_of_int stats.Psg_stats.edges
    /. float_of_int (Spike_supercfg.Supercfg.arc_count super));
  (* Precision: context-insensitive supergraph liveness vs the PSG's
     valid-paths liveness at every routine entry. *)
  let live = Spike_supercfg.Supercfg.liveness super analysis.Analysis.defuses in
  let looser = ref 0 and total = ref 0 and extra_regs = ref 0 in
  Program.iter
    (fun r (_ : Routine.t) ->
      match
        ((analysis.Analysis.summaries.(r)).Summary.live_at_entry,
         analysis.Analysis.cfgs.(r).Spike_cfg.Cfg.entry_blocks)
      with
      | (_, psg_live) :: _, (_, entry_block) :: _ ->
          incr total;
          let super_live =
            Regset.inter
              (Spike_supercfg.Supercfg.live_in live ~routine:r ~block:entry_block)
              Spike_isa.Calling_standard.all_allocatable
          in
          let extra = Regset.cardinal (Regset.diff super_live psg_live) in
          if extra > 0 then begin
            incr looser;
            extra_regs := !extra_regs + extra
          end
      | _, _ -> ())
    program;
  Format.printf
    "@.supergraph liveness is strictly looser at %d/%d entries (%.1f extra live \
     registers on average there)@."
    !looser !total
    (if !looser = 0 then 0.0 else float_of_int !extra_regs /. float_of_int !looser);
  (* Exact agreement with the brute-force reference. *)
  let reference = Spike_reference.Reference.run program in
  let disagreements = ref 0 in
  Array.iteri
    (fun r (c : Summary.call_class) ->
      let d = reference.Spike_reference.Reference.call_classes.(r) in
      if
        not
          (Regset.equal c.Summary.used d.Summary.used
          && Regset.equal c.Summary.defined d.Summary.defined
          && Regset.equal c.Summary.killed d.Summary.killed)
      then incr disagreements)
    analysis.Analysis.call_classes;
  Format.printf "reference fixpoint disagreements: %d (expected 0)@." !disagreements;
  (* Dynamic check on an executable workload. *)
  let exe = Generator.generate { Params.default with Params.seed = 2026; routines = 20 } in
  let exe_analysis = Analysis.run exe in
  let outcome, violations = Spike_interp.Oracle.check exe_analysis in
  (match outcome with
  | Spike_interp.Machine.Halted v -> Format.printf "@.executable workload halted (v0 = %d)@." v
  | Spike_interp.Machine.Trapped _ -> Format.printf "@.executable workload trapped@.");
  Format.printf "dynamic soundness violations: %d (expected 0)@."
    (List.length violations)
