(* §3.5 in practice: analysing a program that calls a shared library.
   Without extra information Spike must assume every library call obeys the
   calling standard (arguments used, temporaries killed).  A summary file
   from the compiler or linker replaces the assumption with exact sets.

     dune exec examples/external_library.exe *)

open Spike_isa
open Spike_ir
open Spike_core

(* The application: computes with t3 live across a library call, and sets
   up two arguments the library may or may not read. *)
let app =
  let b = Builder.create "main" in
  Builder.emit b (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
  Builder.emit b (Insn.Store { src = Reg.ra; base = Reg.sp; offset = 0 });
  Builder.emit b (Insn.Li { dst = Reg.a0; imm = 100 });
  Builder.emit b (Insn.Li { dst = Reg.a1; imm = 200 });
  (* would be dead if the library doesn't read a1 *)
  Builder.emit b (Insn.Call { callee = Insn.Direct "lib_checksum" });
  Builder.emit b (Insn.Store { src = Reg.v0; base = Reg.zero; offset = 8192 });
  Builder.emit b (Insn.Load { dst = Reg.ra; base = Reg.sp; offset = 0 });
  Builder.emit b (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
  Builder.emit b Insn.Ret;
  Program.make ~main:"main" [ Builder.finish b ]

(* What the linker knows about lib_checksum: reads only a0, returns in v0,
   clobbers v0/t0/ra. *)
let summary_file =
  ".summary lib_checksum\n  used = {a0}\n  defined = {v0}\n  killed = {v0, t0, ra}\n.end\n"

let describe label analysis =
  let info = analysis.Analysis.psg.Psg.calls.(0) in
  let site = Analysis.site_class analysis info in
  let pp = Spike_support.Regset.pp ~name:Reg.name in
  Format.printf "%s@.  call-used   = %a@.  call-killed = %a@." label pp
    site.Summary.used pp site.Summary.killed;
  let optimized, report = Spike_opt.Opt.run analysis in
  Format.printf "  dead instructions removed: %d@."
    report.Spike_opt.Opt.dead_instructions_removed;
  let kept_a1 =
    Array.exists
      (fun insn -> match insn with Insn.Li { dst; imm = 200 } -> dst = Reg.a1 | _ -> false)
      (Option.get (Program.find optimized "main")).Routine.insns
  in
  Format.printf "  the a1 argument setup %s@.@."
    (if kept_a1 then "is kept (might be read)" else "was deleted (provably unread)")

let () =
  (match Validate.check app with
  | Ok () -> ()
  | Error e ->
      List.iter print_endline e;
      exit 1);
  Format.printf "=== Calling-standard assumption (no summary file)@.";
  describe "lib_checksum assumed to obey the standard:" (Analysis.run app);
  Format.printf "=== With the linker's summary file@.%s@." summary_file;
  let entries = Spike_asm.Summaries.of_string summary_file in
  describe "lib_checksum summarised exactly:"
    (Analysis.run ~externals:(Spike_asm.Summaries.lookup entries) app)
