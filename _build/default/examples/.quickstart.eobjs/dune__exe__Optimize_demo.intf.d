examples/optimize_demo.mli:
