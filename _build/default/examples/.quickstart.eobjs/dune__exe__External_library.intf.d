examples/external_library.mli:
