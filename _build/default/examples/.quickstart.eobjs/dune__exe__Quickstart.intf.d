examples/quickstart.mli:
