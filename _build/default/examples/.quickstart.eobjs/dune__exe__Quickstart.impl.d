examples/quickstart.ml: Analysis Array Builder Format Insn List Program Reg Regset Spike_core Spike_ir Spike_isa Spike_support Summary Validate
