examples/optimize_demo.ml: Analysis Builder Format Insn Program Reg Spike_asm Spike_core Spike_interp Spike_ir Spike_isa Spike_opt
