examples/external_library.ml: Analysis Array Builder Format Insn List Option Program Psg Reg Routine Spike_asm Spike_core Spike_ir Spike_isa Spike_opt Spike_support Summary Validate
