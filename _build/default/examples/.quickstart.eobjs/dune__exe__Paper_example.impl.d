examples/paper_example.ml: Analysis Array Builder Format Insn List Program Psg Reg Spike_core Spike_ir Spike_isa
