(* The four Figure 1 optimizations, each demonstrated on the smallest
   program that exhibits it, with before/after assembly and an interpreter
   run proving behaviour is preserved.

     dune exec examples/optimize_demo.exe *)

open Spike_isa
open Spike_ir
open Spike_core

let show title program =
  let analysis = Analysis.run program in
  let optimized, report = Spike_opt.Opt.run analysis in
  Format.printf "@.=== %s@." title;
  Format.printf "--- before ---@.%a" Spike_asm.Printer.pp_program program;
  Format.printf "--- after ----@.%a" Spike_asm.Printer.pp_program optimized;
  Format.printf "%a@." Spike_opt.Opt.pp_report report;
  let before = Spike_interp.Machine.execute program in
  let after = Spike_interp.Machine.execute optimized in
  (match (before, after) with
  | Spike_interp.Machine.Halted a, Spike_interp.Machine.Halted b ->
      Format.printf "execution: v0 = %d before, %d after%s@." a b
        (if a = b then " (preserved)" else " (BUG!)")
  | _, _ -> Format.printf "execution: trapped@.");
  optimized

let direct name = Insn.Call { callee = Insn.Direct name }

(* 1(a): f computes a would-be result nobody reads. *)
let fig1a =
  let f = Builder.create "f" in
  Builder.emit f (Insn.Li { dst = Reg.t5; imm = 42 });
  Builder.emit f Insn.Ret;
  let main = Builder.create "main" in
  Builder.emit main (direct "f");
  Builder.emit main (Insn.Li { dst = Reg.v0; imm = 0 });
  Builder.emit main Insn.Ret;
  Program.make ~main:"main" [ Builder.finish main; Builder.finish f ]

(* 1(b): main passes two arguments; callee reads only one. *)
let fig1b =
  let callee = Builder.create "callee" in
  Builder.emit callee
    (Insn.Binop { op = Insn.Add; dst = Reg.v0; src1 = Reg.a1; src2 = Insn.Imm 1 });
  Builder.emit callee Insn.Ret;
  let main = Builder.create "main" in
  Builder.emit main (Insn.Li { dst = Reg.a0; imm = 10 });
  Builder.emit main (Insn.Li { dst = Reg.a1; imm = 20 });
  Builder.emit main (direct "callee");
  Builder.emit main Insn.Ret;
  Program.make ~main:"main" [ Builder.finish main; Builder.finish callee ]

(* 1(c): a spill around a call that kills nothing relevant. *)
let fig1c =
  let leaf = Builder.create "leaf" in
  Builder.emit leaf (Insn.Li { dst = Reg.t1; imm = 9 });
  Builder.emit leaf Insn.Ret;
  let g = Builder.create "g" in
  Builder.emit g (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
  Builder.emit g (Insn.Store { src = Reg.ra; base = Reg.sp; offset = 0 });
  Builder.emit g (Insn.Li { dst = Reg.t0; imm = 7 });
  Builder.emit g (Insn.Store { src = Reg.t0; base = Reg.sp; offset = 8 });
  Builder.emit g (direct "leaf");
  Builder.emit g (Insn.Load { dst = Reg.t0; base = Reg.sp; offset = 8 });
  Builder.emit g (Insn.Binop { op = Insn.Add; dst = Reg.v0; src1 = Reg.t0; src2 = Insn.Reg Reg.t1 });
  Builder.emit g (Insn.Load { dst = Reg.ra; base = Reg.sp; offset = 0 });
  Builder.emit g (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
  Builder.emit g Insn.Ret;
  let main = Builder.create "main" in
  Builder.emit main (direct "g");
  Builder.emit main Insn.Ret;
  Program.make ~main:"main" [ Builder.finish main; Builder.finish g; Builder.finish leaf ]

(* 1(d): a value parked in callee-saved s0 across a call that does not
   kill t0: the save/restore of s0 disappears and the value moves to a
   caller-saved register. *)
let fig1d =
  let leaf = Builder.create "leaf" in
  Builder.emit leaf (Insn.Li { dst = Reg.t1; imm = 9 });
  Builder.emit leaf Insn.Ret;
  let h = Builder.create "h" in
  Builder.emit h (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -24 });
  Builder.emit h (Insn.Store { src = Reg.s0; base = Reg.sp; offset = 0 });
  Builder.emit h (Insn.Store { src = Reg.ra; base = Reg.sp; offset = 8 });
  Builder.emit h (Insn.Li { dst = Reg.s0; imm = 5 });
  Builder.emit h (direct "leaf");
  Builder.emit h
    (Insn.Binop { op = Insn.Add; dst = Reg.v0; src1 = Reg.s0; src2 = Insn.Reg Reg.t1 });
  Builder.emit h (Insn.Load { dst = Reg.s0; base = Reg.sp; offset = 0 });
  Builder.emit h (Insn.Load { dst = Reg.ra; base = Reg.sp; offset = 8 });
  Builder.emit h (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 24 });
  Builder.emit h Insn.Ret;
  let main = Builder.create "main" in
  Builder.emit main (direct "h");
  Builder.emit main Insn.Ret;
  Program.make ~main:"main" [ Builder.finish main; Builder.finish h; Builder.finish leaf ]

let () =
  ignore (show "Figure 1(a): dead return-value computation" fig1a);
  ignore (show "Figure 1(b): dead argument setup" fig1b);
  ignore (show "Figure 1(c): redundant spill around a call" fig1c);
  ignore (show "Figure 1(d): callee-saved save/restore becomes caller-saved" fig1d)
