# Hand-written example program in the spike assembly format:
# iterative factorial plus a recursive Fibonacci, with the standard
# prologue/epilogue discipline.
.main main

.routine main .exported
  # v0 = fact(6) + fib(8)
  li a0, 6
  bsr ra, fact
  mov v0, t0
  li a0, 8
  bsr ra, fib
  addq v0, t0, v0
  ret
.end

.routine fact
  # iterative: acc in t1, counter in t2
  li t1, 1
  mov a0, t2
loop:
  ble t2, done
  mulq t1, t2, t1
  subq t2, 1, t2
  br loop
done:
  mov t1, v0
  ret
.end

.routine fib
  lda sp, -24(sp)
  stq ra, 0(sp)
  stq s0, 8(sp)        # fib(n-1) survives the second call in s0
  cmple a0, 1, t3
  beq t3, recurse
  mov a0, v0           # fib(0) = 0, fib(1) = 1
  br out
recurse:
  subq a0, 1, a0
  stq a0, 16(sp)       # save n-1
  bsr ra, fib
  mov v0, s0
  ldq a0, 16(sp)
  subq a0, 1, a0
  bsr ra, fib
  addq v0, s0, v0
out:
  ldq s0, 8(sp)
  ldq ra, 0(sp)
  lda sp, 24(sp)
  ret
.end
