(* A guided tour of the Program Summary Graph on the paper's Figure 4 CFG:
   one routine with a diamond and a call, showing the PSG nodes, the
   flow-summary edges with their MUST-DEF / MAY-DEF / MAY-USE labels
   (Figures 5-7), and the effect of branch nodes on the Figure 12 example.

     dune exec examples/paper_example.exe *)

open Spike_isa
open Spike_ir
open Spike_core

let r1 = Reg.t0
let r2 = Reg.t1
let r3 = Reg.t2

(* Figure 4(a): bb1 branches to bb2/bb3; bb3 calls f and returns into bb4;
   bb2 flows into bb4; bb4 is the exit. *)
let g_routine =
  let b = Builder.create "g" in
  (* bb1: uses R1, defines R2 *)
  Builder.emit b (Insn.Store { src = r1; base = Reg.sp; offset = 0 });
  Builder.emit b (Insn.Li { dst = r2; imm = 1 });
  Builder.emit b (Insn.Bcond { cond = Insn.Eq; src = r2; target = "bb3" });
  (* bb2: defines R3 *)
  Builder.emit b (Insn.Li { dst = r3; imm = 2 });
  Builder.emit b (Insn.Br { target = "bb4" });
  (* bb3: defines R1, calls f *)
  Builder.label b "bb3";
  Builder.emit b (Insn.Li { dst = r1; imm = 4 });
  Builder.emit b (Insn.Call { callee = Insn.Direct "f" });
  (* bb4: exit *)
  Builder.label b "bb4";
  Builder.emit b Insn.Ret;
  Builder.finish b

let f_routine =
  let b = Builder.create "f" in
  Builder.emit b (Insn.Li { dst = r2; imm = 0 });
  Builder.emit b Insn.Ret;
  Builder.finish b

let main_routine =
  let b = Builder.create "main" in
  Builder.emit b (Insn.Call { callee = Insn.Direct "g" });
  Builder.emit b Insn.Ret;
  Builder.finish b

(* Figure 12: a multiway branch in a loop with a call at each target. *)
let switchy =
  let b = Builder.create "dispatch" in
  Builder.label b "head";
  Builder.emit b (Insn.Switch { index = r1; table = [| "tA"; "tB"; "tC"; "out" |] });
  List.iter
    (fun arm ->
      Builder.label b arm;
      Builder.emit b (Insn.Call { callee = Insn.Direct "f" });
      Builder.emit b (Insn.Br { target = "head" }))
    [ "tA"; "tB"; "tC" ];
  Builder.label b "out";
  Builder.emit b Insn.Ret;
  Builder.finish b

let flow_edges analysis name =
  let psg = analysis.Analysis.psg in
  match Program.find_index analysis.Analysis.program name with
  | None -> 0
  | Some r ->
      Array.fold_left
        (fun n (e : Psg.edge) ->
          if e.Psg.ekind = Psg.Flow && Psg.node_routine psg.Psg.nodes.(e.src).Psg.kind = r
          then n + 1
          else n)
        0 psg.Psg.edges

let () =
  let program = Program.make ~main:"main" [ main_routine; g_routine; f_routine ] in
  let analysis = Analysis.run program in
  Format.printf "=== The PSG for the Figure 4 routine and its neighbours@.";
  Format.printf "%a@." Psg.pp analysis.Analysis.psg;
  Format.printf
    "Note routine g: four nodes (entry, exit, call, return) and three@.\
     flow-summary edges E_A entry->exit, E_B entry->call, E_C return->exit,@.\
     each labelled with the dataflow of the CFG subgraph it summarizes@.\
     (Figures 4-7 of the paper).@.";
  (* Branch nodes: Figure 12. *)
  let program12 =
    Program.make ~main:"main"
      [ main_routine; switchy; f_routine ]
  in
  let with_bn = Analysis.run ~branch_nodes:true program12 in
  let without = Analysis.run ~branch_nodes:false program12 in
  Format.printf "@.=== Figure 12: branch nodes at the 4-way dispatch@.";
  Format.printf "flow-summary edges without branch nodes: %d@."
    (flow_edges without "dispatch");
  Format.printf "flow-summary edges with branch nodes:    %d@."
    (flow_edges with_bn "dispatch");
  Format.printf
    "(every return reaches every call through the dispatch: O(n^2) edges@.\
     collapse to O(n) through the branch node, with identical dataflow)@."
