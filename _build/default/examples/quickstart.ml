(* Quickstart: build a small program with the builder API, run the
   interprocedural analysis, and read the summaries.

   The program is the paper's Figure 2: P1 and P3 both call P2; P2 uses R1,
   always defines R2 and sometimes R3.  We use v0,t0,t1,t2 for R0..R3.

     dune exec examples/quickstart.exe *)

open Spike_support
open Spike_isa
open Spike_ir
open Spike_core

let r0 = Reg.v0
let r1 = Reg.t0
let r2 = Reg.t1
let r3 = Reg.t2

(* P1: defines R0 and R1, calls P2, then uses R0. *)
let p1 =
  let b = Builder.create "P1" in
  Builder.emit b (Insn.Li { dst = r0; imm = 1 });
  Builder.emit b (Insn.Li { dst = r1; imm = 2 });
  Builder.emit b (Insn.Call { callee = Insn.Direct "P2" });
  Builder.emit b (Insn.Store { src = r0; base = Reg.sp; offset = 0 });
  Builder.emit b Insn.Ret;
  Builder.finish b

(* P2: branches on R1; defines R2 on both arms, R3 on one. *)
let p2 =
  let b = Builder.create "P2" in
  Builder.emit b (Insn.Bcond { cond = Insn.Ne; src = r1; target = "right" });
  Builder.emit b (Insn.Li { dst = r2; imm = 5 });
  Builder.emit b (Insn.Li { dst = r3; imm = 7 });
  Builder.emit b (Insn.Br { target = "join" });
  Builder.label b "right";
  Builder.emit b (Insn.Li { dst = r2; imm = 9 });
  Builder.label b "join";
  Builder.emit b Insn.Ret;
  Builder.finish b

(* P3: defines R1, calls P2. *)
let p3 =
  let b = Builder.create "P3" in
  Builder.emit b (Insn.Li { dst = r1; imm = 3 });
  Builder.emit b (Insn.Call { callee = Insn.Direct "P2" });
  Builder.emit b Insn.Ret;
  Builder.finish b

let main =
  let b = Builder.create "main" in
  Builder.emit b (Insn.Call { callee = Insn.Direct "P1" });
  Builder.emit b (Insn.Call { callee = Insn.Direct "P3" });
  Builder.emit b Insn.Ret;
  Builder.finish b

let () =
  let program = Program.make ~main:"main" [ main; p1; p2; p3 ] in
  (match Validate.check program with
  | Ok () -> ()
  | Error problems ->
      List.iter print_endline problems;
      exit 1);
  (* The whole analysis is one call. *)
  let analysis = Analysis.run program in
  (* Per-routine summaries: call-used / call-defined / call-killed and the
     live sets (paper §2).  Restrict printing to the paper's R0..R3. *)
  let interesting = Regset.of_list [ r0; r1; r2; r3 ] in
  let pp = Regset.pp ~name:(fun r -> "R" ^ string_of_int r) in
  Array.iter
    (fun (s : Summary.t) ->
      let narrow set = Regset.inter set interesting in
      Format.printf "%s:@." s.Summary.name;
      Format.printf "  call-used    = %a@." pp (narrow s.Summary.call_class.Summary.used);
      Format.printf "  call-defined = %a@." pp
        (narrow s.Summary.call_class.Summary.defined);
      Format.printf "  call-killed  = %a@." pp
        (narrow s.Summary.call_class.Summary.killed);
      List.iter
        (fun (label, live) ->
          Format.printf "  live-at-entry(%s) = %a@." label pp (narrow live))
        s.Summary.live_at_entry;
      List.iter
        (fun (block, live) ->
          Format.printf "  live-at-exit(B%d)  = %a@." block pp (narrow live))
        s.Summary.live_at_exit)
    analysis.Analysis.summaries;
  (* The paper's headline sets for P2 (Section 2): call-used {R1},
     call-defined {R2}, call-killed {R2,R3}, live-at-entry {R0,R1},
     live-at-exit {R0}. *)
  Format.printf "@.analysis of %d routines took %.4fs@."
    (Program.routine_count program)
    (Analysis.total_seconds analysis)
