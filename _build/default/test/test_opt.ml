(* The Figure-1 optimizations: each motivating scenario from the paper's
   introduction, plus semantics preservation on random whole programs. *)

open Spike_support
open Spike_isa
open Spike_ir
open Spike_core
open Spike_opt
open Test_helpers

let optimize p =
  let program, report = Opt.run (Analysis.run p) in
  (match Validate.check program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "optimized program invalid: %s" (String.concat "; " e));
  (program, report)

let count_insns p name pred =
  match Program.find p name with
  | None -> Alcotest.failf "routine %s missing" name
  | Some (r : Routine.t) ->
      Array.fold_left (fun n insn -> if pred insn then n + 1 else n) 0 r.Routine.insns

(* Figure 1(a): a value computed for the return is dead because no caller
   uses it. *)
let test_fig1a_dead_return_value () =
  let f =
    routine "f" [ (None, li Reg.t5 42) (* would-be return value *); (None, ret) ]
  in
  let main = routine "main" [ (None, call "f"); (None, li r0 0); (None, ret) ] in
  let p = program ~main:"main" [ main; f ] in
  let optimized, report = optimize p in
  Alcotest.(check int) "dead def deleted" 0
    (count_insns optimized "f" (fun i -> i = li Reg.t5 42));
  if report.Opt.dead_instructions_removed < 1 then
    Alcotest.fail "expected at least one dead instruction removed"

(* Figure 1(b): an argument the callee never reads is dead at the call
   site. *)
let test_fig1b_dead_argument () =
  let callee =
    routine "callee"
      [ (None, Insn.Binop { op = Insn.Add; dst = r0; src1 = Reg.a1; src2 = Insn.Imm 1 });
        (None, ret) ]
  in
  let main =
    routine "main"
      [
        (None, li Reg.a0 1);
        (* dead: callee only reads a1 *)
        (None, li Reg.a1 2);
        (None, call "callee");
        (None, use r0);
        (None, ret);
      ]
  in
  let p = program ~main:"main" [ main; callee ] in
  let optimized, _ = optimize p in
  Alcotest.(check int) "a0 def deleted" 0
    (count_insns optimized "main" (fun i -> i = li Reg.a0 1));
  Alcotest.(check int) "a1 def kept" 1
    (count_insns optimized "main" (fun i -> i = li Reg.a1 2))

(* A non-leaf routine with the standard ra discipline. *)
let nonleaf name body =
  routine name
    ([ (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
       (None, store Reg.ra ~base:Reg.sp ~offset:0) ]
    @ body
    @ [ (None, load Reg.ra ~base:Reg.sp ~offset:0);
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
        (None, ret) ])

(* Figure 1(c): a spill around a call the summary proves unnecessary. *)
let test_fig1c_spill_removal () =
  let leaf = routine "leaf" [ (None, li Reg.t1 9); (None, ret) ] in
  let g =
    nonleaf "g"
      [
        (None, li Reg.t0 7);
        (None, store Reg.t0 ~base:Reg.sp ~offset:8);
        (* spill *)
        (None, call "leaf");
        (None, load Reg.t0 ~base:Reg.sp ~offset:8);
        (* reload *)
        (None, store Reg.t0 ~base:Reg.zero ~offset:8192);
        (* observable use *)
      ]
  in
  let main = routine "main" [ (None, call "g"); (None, ret) ] in
  let p = program ~main:"main" [ main; g; leaf ] in
  let analysis = Analysis.run p in
  let removals = Spill.find analysis in
  Alcotest.(check int) "one spill pair found" 1 (List.length removals);
  let optimized, report = optimize p in
  Alcotest.(check int) "spills removed" 1 report.Opt.spills_removed;
  Alcotest.(check int) "spill store gone" 1
    (count_insns optimized "g" (fun i ->
         match i with Insn.Store { base; _ } -> base = Reg.sp | _ -> false));
  (* Behaviour unchanged: the observable store writes 7. *)
  let before = Spike_interp.Machine.execute p in
  let after = Spike_interp.Machine.execute optimized in
  Alcotest.(check bool) "same outcome" true (before = after)

(* Figure 1(d): a value parked in a callee-saved register moves to a
   caller-saved one the call does not kill; save/restore disappears. *)
let test_fig1d_save_restore () =
  let leaf = routine "leaf" [ (None, li Reg.t1 9); (None, ret) ] in
  let h =
    routine "h"
      [
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -24 });
        (None, store Reg.s0 ~base:Reg.sp ~offset:0);
        (* save *)
        (None, store Reg.ra ~base:Reg.sp ~offset:8);
        (None, li Reg.s0 5);
        (None, call "leaf");
        (None, store Reg.s0 ~base:Reg.zero ~offset:8192);
        (* s0 live across the call *)
        (None, load Reg.s0 ~base:Reg.sp ~offset:0);
        (* restore *)
        (None, load Reg.ra ~base:Reg.sp ~offset:8);
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 24 });
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "h"); (None, ret) ] in
  let p = program ~main:"main" [ main; h; leaf ] in
  let optimized, report = optimize p in
  if report.Opt.save_restores_rewritten < 1 then
    Alcotest.fail "expected a save/restore reallocation";
  Alcotest.(check int) "no s0 occurrences left" 0
    (count_insns optimized "h" (fun i ->
         Regset.mem Reg.s0 (Regset.union (Insn.defs i) (Insn.uses i))));
  let before = Spike_interp.Machine.execute p in
  let after = Spike_interp.Machine.execute optimized in
  Alcotest.(check bool) "same outcome" true (before = after)

(* Whole-program semantics preservation on random workloads. *)
let test_semantics_preserved () =
  List.iter
    (fun seed ->
      let p =
        Spike_synth.Generator.generate { Spike_synth.Params.default with seed }
      in
      let optimized, report = optimize p in
      if report.Opt.instructions_after > report.Opt.instructions_before then
        Alcotest.fail "optimization grew the program";
      match
        (Spike_interp.Machine.execute ~fuel:3_000_000 p,
         Spike_interp.Machine.execute ~fuel:3_000_000 optimized)
      with
      | Spike_interp.Machine.Halted a, Spike_interp.Machine.Halted b ->
          Alcotest.(check int) (Printf.sprintf "seed %d exit status" seed) a b
      | _, _ -> Alcotest.failf "seed %d: execution did not halt" seed)
    (List.init 12 Fun.id)

(* The optimized program's analysis must still be sound. *)
let test_optimized_soundness () =
  List.iter
    (fun seed ->
      let p =
        Spike_synth.Generator.generate { Spike_synth.Params.default with seed }
      in
      let optimized, _ = optimize p in
      let analysis = Analysis.run optimized in
      let _, violations = Spike_interp.Oracle.check ~fuel:3_000_000 analysis in
      match violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "seed %d: %s" seed
            (Format.asprintf "%a" Spike_interp.Oracle.pp_violation v))
    [ 3; 17; 23 ]

let () =
  Alcotest.run "opt"
    [
      ( "figure1",
        [
          Alcotest.test_case "1a dead return value" `Quick test_fig1a_dead_return_value;
          Alcotest.test_case "1b dead argument" `Quick test_fig1b_dead_argument;
          Alcotest.test_case "1c spill removal" `Quick test_fig1c_spill_removal;
          Alcotest.test_case "1d save/restore" `Quick test_fig1d_save_restore;
        ] );
      ( "preservation",
        [
          Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved;
          Alcotest.test_case "optimized still sound" `Quick test_optimized_soundness;
        ] );
    ]
