(* CFG construction: block partitioning (including the ends-at-call rule),
   arcs, orders, and DEF/UBD computation — validated against a naive
   per-instruction simulation on random programs. *)

open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg
open Test_helpers

let regset = Alcotest.testable (Regset.pp ~name:Reg.name) Regset.equal

let diamond_with_call () =
  routine "g"
    [
      (None, use r1);
      (None, li r2 1);
      (None, beq r2 "bb3");
      (None, li r3 2);
      (None, br "bb4");
      (Some "bb3", li r1 4);
      (None, call "f");
      (Some "bb4", ret);
    ]

let test_partition () =
  let g = Cfg.build (diamond_with_call ()) in
  Alcotest.(check int) "four blocks" 4 (Cfg.block_count g);
  (* Blocks tile the instruction stream. *)
  let covered = Array.make 8 (-1) in
  Array.iter
    (fun (b : Cfg.block) ->
      for i = b.first to b.last do
        if covered.(i) <> -1 then Alcotest.failf "instruction %d in two blocks" i;
        covered.(i) <- b.id
      done)
    g.blocks;
  Array.iteri
    (fun i owner -> if owner = -1 then Alcotest.failf "instruction %d uncovered" i)
    covered;
  Alcotest.(check (list int)) "block_of_insn matches" (Array.to_list covered)
    (Array.to_list g.block_of_insn);
  (* The call ends its block; the return point starts the next. *)
  (match g.blocks.(2).ending with
  | Ends_call (Insn.Direct "f") -> ()
  | _ -> Alcotest.fail "block 2 should end with the call");
  Alcotest.(check int) "call block ends at call" 6 g.blocks.(2).last;
  (match g.blocks.(3).ending with
  | Ends_ret -> ()
  | _ -> Alcotest.fail "block 3 should be the exit");
  Alcotest.(check (list int)) "exit blocks" [ 3 ] (Cfg.exit_blocks g);
  Alcotest.(check int) "one call site" 1 (List.length (Cfg.call_sites g));
  Alcotest.(check int) "branch instructions" 2 (Cfg.branch_instruction_count g)

let test_arcs_symmetry () =
  for seed = 0 to 9 do
    let p = Spike_synth.Generator.generate { Spike_synth.Params.default with seed } in
    Program.iter
      (fun _ r ->
        let g = Cfg.build r in
        Array.iter
          (fun (b : Cfg.block) ->
            Array.iter
              (fun s ->
                if not (Array.exists (fun p' -> p' = b.id) g.blocks.(s).preds) then
                  Alcotest.failf "%s: arc B%d->B%d missing reverse" r.Routine.name b.id s)
              b.succs;
            Array.iter
              (fun pr ->
                if not (Array.exists (fun s' -> s' = b.id) g.blocks.(pr).succs) then
                  Alcotest.failf "%s: pred B%d of B%d missing forward" r.Routine.name pr
                    b.id)
              b.preds)
          g.blocks)
      p
  done

let test_reverse_postorder () =
  let g = Cfg.build (diamond_with_call ()) in
  let rpo = Cfg.reverse_postorder g in
  Alcotest.(check int) "covers all blocks" (Cfg.block_count g) (Array.length rpo);
  let position = Array.make (Cfg.block_count g) 0 in
  Array.iteri (fun i b -> position.(b) <- i) rpo;
  (* For this acyclic CFG, RPO is a topological order. *)
  Array.iter
    (fun (b : Cfg.block) ->
      Array.iter
        (fun s ->
          if position.(s) <= position.(b.id) then
            Alcotest.failf "B%d before its predecessor B%d" s b.id)
        b.succs)
    g.blocks

(* DEF/UBD against a straightforward per-instruction simulation. *)
let naive_def_ubd (r : Routine.t) (b : Cfg.block) =
  let upper =
    if Insn.is_call r.insns.(b.last) then b.last - 1 else b.last
  in
  let def = ref Regset.empty and ubd = ref Regset.empty in
  for i = b.first to upper do
    Regset.iter
      (fun reg -> if not (Regset.mem reg !def) then ubd := Regset.add reg !ubd)
      (Insn.uses r.insns.(i));
    Regset.iter (fun reg -> def := Regset.add reg !def) (Insn.defs r.insns.(i))
  done;
  (!def, !ubd)

let test_defuse_matches_naive () =
  for seed = 0 to 9 do
    let p = Spike_synth.Generator.generate { Spike_synth.Params.default with seed } in
    Program.iter
      (fun _ r ->
        let g = Cfg.build r in
        let du = Defuse.compute g in
        Array.iter
          (fun (b : Cfg.block) ->
            let def, ubd = naive_def_ubd r b in
            Alcotest.check regset
              (Printf.sprintf "%s B%d def" r.Routine.name b.id)
              def (Defuse.def du b.id);
            Alcotest.check regset
              (Printf.sprintf "%s B%d ubd" r.Routine.name b.id)
              ubd (Defuse.ubd du b.id))
          g.blocks)
      p
  done

let test_switch_and_unknown_blocks () =
  let r =
    routine "s"
      [
        (Some "head", switch r1 [ "a"; "b" ]);
        (Some "a", li r2 1);
        (None, br "head");
        (Some "b", Insn.Jump_unknown { target = r3 });
      ]
  in
  let g = Cfg.build r in
  (match g.blocks.(0).ending with
  | Ends_switch -> ()
  | _ -> Alcotest.fail "switch block");
  Alcotest.(check (list int)) "unknown jump blocks" [ 2 ] (Cfg.unknown_jump_blocks g);
  Alcotest.(check (list int)) "no exits" [] (Cfg.exit_blocks g);
  (* Switch successors are deduplicated and ordered. *)
  Alcotest.(check (list int)) "switch succs" [ 1; 2 ]
    (List.sort Int.compare (Array.to_list g.blocks.(0).succs))

let test_multiple_entries () =
  let r =
    routine ~entries:[ "e1"; "e2" ] "m"
      [ (Some "e1", li r1 1); (Some "e2", li r2 2); (None, ret) ]
  in
  let g = Cfg.build r in
  Alcotest.(check int) "entry blocks" 2 (List.length g.entry_blocks);
  Alcotest.(check (option int)) "e2 at block 1" (Some 1)
    (List.assoc_opt "e2" g.entry_blocks)

let () =
  Alcotest.run "cfg"
    [
      ( "structure",
        [
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "arc symmetry" `Quick test_arcs_symmetry;
          Alcotest.test_case "reverse postorder" `Quick test_reverse_postorder;
          Alcotest.test_case "switch + unknown" `Quick test_switch_and_unknown_blocks;
          Alcotest.test_case "multiple entries" `Quick test_multiple_entries;
        ] );
      ( "defuse",
        [ Alcotest.test_case "matches naive simulation" `Quick test_defuse_matches_naive ]
      );
    ]
