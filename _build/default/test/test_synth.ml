(* The workload generator: well-formedness, determinism, shape tracking and
   executability of generated programs. *)

open Spike_ir
open Spike_synth

let check_valid p =
  match Validate.check p with
  | Ok () -> ()
  | Error problems ->
      Alcotest.failf "generated program invalid: %s"
        (String.concat "; " (List.filteri (fun i _ -> i < 5) problems))

let test_validity () =
  for seed = 0 to 24 do
    let p = Generator.generate { Params.default with Params.seed } in
    check_valid p
  done

let test_determinism () =
  let p1 = Generator.generate Params.default in
  let p2 = Generator.generate Params.default in
  Alcotest.(check string)
    "same seed, same program" (Spike_asm.Printer.to_string p1)
    (Spike_asm.Printer.to_string p2);
  let p3 = Generator.generate { Params.default with Params.seed = 43 } in
  if String.equal (Spike_asm.Printer.to_string p1) (Spike_asm.Printer.to_string p3) then
    Alcotest.fail "different seeds should give different programs"

let test_shape () =
  let params =
    { Params.default with Params.routines = 40; target_instructions = 4000; seed = 7 }
  in
  let p = Generator.generate params in
  check_valid p;
  let total = Program.instruction_count p in
  if total < 2000 || total > 8000 then
    Alcotest.failf "instruction count %d far from target 4000" total;
  (* Count call instructions across body routines; should track
     calls_per_routine within a loose factor (switch arms add more). *)
  let calls = ref 0 and bodies = ref 0 in
  Program.iter
    (fun _ (r : Routine.t) ->
      if String.length r.Routine.name > 0 && r.Routine.name.[0] = 'r' then begin
        incr bodies;
        Array.iter
          (fun insn -> if Spike_isa.Insn.is_call insn then incr calls)
          r.Routine.insns
      end)
    p;
  let per_routine = float_of_int !calls /. float_of_int !bodies in
  if per_routine < 1.0 || per_routine > 12.0 then
    Alcotest.failf "calls per routine %.2f wildly off target %.2f" per_routine
      params.Params.calls_per_routine

let test_executability () =
  for seed = 0 to 14 do
    let p = Generator.generate { Params.default with Params.seed } in
    match Spike_interp.Machine.execute ~fuel:2_000_000 p with
    | Spike_interp.Machine.Halted _ -> ()
    | Spike_interp.Machine.Trapped t ->
        let name =
          match t with
          | Spike_interp.Machine.Bad_return_address _ -> "bad return address"
          | Spike_interp.Machine.Bad_call_target _ -> "bad call target"
          | Spike_interp.Machine.Undeclared_call_target _ -> "undeclared call target"
          | Spike_interp.Machine.Unknown_routine _ -> "unknown routine"
          | Spike_interp.Machine.Unknown_jump -> "unknown jump"
          | Spike_interp.Machine.Out_of_fuel -> "out of fuel"
        in
        Alcotest.failf "seed %d trapped: %s" seed name
  done

let test_scaling () =
  let base = { Params.default with Params.routines = 10; target_instructions = 1000 } in
  let big = Params.scale base 4.0 in
  Alcotest.(check int) "routines scaled" 40 big.Params.routines;
  Alcotest.(check int) "instructions scaled" 4000 big.Params.target_instructions;
  let p_small = Generator.generate base and p_big = Generator.generate big in
  let c_small = Program.instruction_count p_small
  and c_big = Program.instruction_count p_big in
  if c_big < 2 * c_small then
    Alcotest.failf "scaling had too little effect: %d -> %d" c_small c_big

let test_unknown_jump_workloads () =
  (* Analysis-only workloads may contain unknown jumps and must still
     validate. *)
  let params =
    {
      Params.default with
      Params.unknown_jump_prob = 0.3;
      guard_calls = false;
      seed = 99;
    }
  in
  check_valid (Generator.generate params)

let () =
  Alcotest.run "synth"
    [
      ( "generator",
        [
          Alcotest.test_case "validity" `Quick test_validity;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "shape" `Quick test_shape;
          Alcotest.test_case "executability" `Quick test_executability;
          Alcotest.test_case "scaling" `Quick test_scaling;
          Alcotest.test_case "unknown jumps" `Quick test_unknown_jump_workloads;
        ] );
    ]
