(* The interpreter: arithmetic, memory and control semantics, the trap
   surface (failure injection), and profiles. *)

open Spike_isa
open Spike_ir
open Spike_interp
open Test_helpers

let exec ?fuel rows_by_routine ~main:main_name =
  let routines = List.map (fun (name, rows) -> routine name rows) rows_by_routine in
  Machine.execute ?fuel (program ~main:main_name routines)

let expect_halt msg expected outcome =
  match outcome with
  | Machine.Halted v -> Alcotest.(check int) msg expected v
  | Machine.Trapped _ -> Alcotest.failf "%s: trapped" msg

let imm_binop op a b dst =
  [
    (None, li Reg.t0 a);
    (None, li Reg.t1 b);
    (None, Insn.Binop { op; dst; src1 = Reg.t0; src2 = Insn.Reg Reg.t1 });
  ]

let test_arithmetic () =
  let run op a b =
    exec ~main:"m"
      [ ("m", imm_binop op a b Reg.v0 @ [ (None, ret) ]) ]
  in
  expect_halt "add" 7 (run Insn.Add 3 4);
  expect_halt "sub" (-1) (run Insn.Sub 3 4);
  expect_halt "mul" 12 (run Insn.Mul 3 4);
  expect_halt "and" 2 (run Insn.And 6 3);
  expect_halt "or" 7 (run Insn.Or 6 3);
  expect_halt "xor" 5 (run Insn.Xor 6 3);
  expect_halt "sll" 24 (run Insn.Sll 6 2);
  expect_halt "srl" 1 (run Insn.Srl 6 2);
  expect_halt "cmpeq true" 1 (run Insn.Cmpeq 5 5);
  expect_halt "cmpeq false" 0 (run Insn.Cmpeq 5 6);
  expect_halt "cmplt" 1 (run Insn.Cmplt 5 6);
  expect_halt "cmple" 1 (run Insn.Cmple 6 6)

let test_zero_register () =
  expect_halt "writes to zero are discarded" 0
    (exec ~main:"m"
       [
         ( "m",
           [
             (None, li Reg.zero 42);
             (None, Insn.Mov { dst = Reg.v0; src = Reg.zero });
             (None, ret);
           ] );
       ])

let test_memory () =
  expect_halt "store/load" 9
    (exec ~main:"m"
       [
         ( "m",
           [
             (None, li Reg.t0 9);
             (None, store Reg.t0 ~base:Reg.sp ~offset:16);
             (None, load Reg.v0 ~base:Reg.sp ~offset:16);
             (None, ret);
           ] );
       ]);
  expect_halt "unmapped memory reads 0" 0
    (exec ~main:"m"
       [ ("m", [ (None, load Reg.v0 ~base:Reg.zero ~offset:123456); (None, ret) ]) ])

let test_branches () =
  expect_halt "taken beq" 1
    (exec ~main:"m"
       [
         ( "m",
           [
             (None, li Reg.t0 0);
             (None, beq Reg.t0 "yes");
             (None, li Reg.v0 0);
             (None, ret);
             (Some "yes", li Reg.v0 1);
             (None, ret);
           ] );
       ]);
  expect_halt "fallthrough bne" 0
    (exec ~main:"m"
       [
         ( "m",
           [
             (None, li Reg.t0 0);
             (None, bne Reg.t0 "yes");
             (None, li Reg.v0 0);
             (None, ret);
             (Some "yes", li Reg.v0 1);
             (None, ret);
           ] );
       ])

let test_switch_modulo () =
  (* Dispatch index 5 on a 3-entry table lands on 5 mod 3 = 2. *)
  expect_halt "switch wraps" 2
    (exec ~main:"m"
       [
         ( "m",
           [
             (None, li Reg.t0 5);
             (None, switch Reg.t0 [ "a0"; "a1"; "a2" ]);
             (Some "a0", li Reg.v0 0);
             (None, ret);
             (Some "a1", li Reg.v0 1);
             (None, ret);
             (Some "a2", li Reg.v0 2);
             (None, ret);
           ] );
       ])

let test_calls () =
  expect_halt "call and return" 8
    (exec ~main:"m"
       [
         ("m", [ (None, call "f"); (None, ret) ]);
         ("f", [ (None, li Reg.v0 8); (None, ret) ]);
       ]);
  (* Indirect call through the fixed addressing convention. *)
  let p =
    program ~main:"m"
      [
        routine "m"
          [
            (None, li Reg.pv 0 (* patched below *));
            (None, call_indirect Reg.pv);
            (None, ret);
          ];
        routine "f" [ (None, li Reg.v0 3); (None, ret) ];
      ]
  in
  let address =
    match Machine.address_of_name p "f" with Some a -> a | None -> assert false
  in
  let patched =
    Program.map_routines
      (fun (r : Routine.t) ->
        if String.equal r.Routine.name "m" then
          { r with Routine.insns = (let a = Array.copy r.Routine.insns in a.(0) <- li Reg.pv address; a) }
        else r)
      p
  in
  expect_halt "indirect call" 3 (Machine.execute patched)

let expect_trap msg pred outcome =
  match outcome with
  | Machine.Trapped t when pred t -> ()
  | Machine.Trapped _ -> Alcotest.failf "%s: wrong trap" msg
  | Machine.Halted _ -> Alcotest.failf "%s: expected a trap" msg

let test_traps () =
  expect_trap "clobbered ra"
    (function Machine.Bad_return_address _ -> true | _ -> false)
    (exec ~main:"m"
       [
         ("m", [ (None, call "f"); (None, ret) ]);
         ("f", [ (None, li Reg.ra 0); (None, ret) ]);
       ]);
  expect_trap "unknown routine"
    (function Machine.Unknown_routine "ghost" -> true | _ -> false)
    (exec ~main:"m" [ ("m", [ (None, call "ghost"); (None, ret) ]) ]);
  expect_trap "bad indirect target"
    (function Machine.Bad_call_target _ -> true | _ -> false)
    (exec ~main:"m"
       [ ("m", [ (None, li Reg.pv 12345); (None, call_indirect Reg.pv); (None, ret) ]) ]);
  expect_trap "unknown jump"
    (function Machine.Unknown_jump -> true | _ -> false)
    (exec ~main:"m"
       [ ("m", [ (None, Insn.Jump_unknown { target = Reg.t0 }); (None, ret) ]) ]);
  expect_trap "out of fuel"
    (function Machine.Out_of_fuel -> true | _ -> false)
    (exec ~fuel:100 ~main:"m"
       [ ("m", [ (Some "spin", br "spin"); (None, ret) ]) ]);
  (* A declared-target indirect call whose runtime target lies: trap. *)
  let p =
    program ~main:"m"
      [
        routine "m"
          [ (None, li Reg.pv 0); (None, call_indirect ~targets:[ "g" ] Reg.pv); (None, ret) ];
        routine "f" [ (None, li Reg.v0 3); (None, ret) ];
        routine "g" [ (None, li Reg.v0 4); (None, ret) ];
      ]
  in
  let address = Option.get (Machine.address_of_name p "f") in
  let patched =
    Program.map_routines
      (fun (r : Routine.t) ->
        if String.equal r.Routine.name "m" then
          { r with Routine.insns = (let a = Array.copy r.Routine.insns in a.(0) <- li Reg.pv address; a) }
        else r)
      p
  in
  expect_trap "undeclared target"
    (function Machine.Undeclared_call_target "f" -> true | _ -> false)
    (Machine.execute patched)

let test_save_restore_semantics () =
  (* The callee clobbers s0 but saves/restores it: caller sees it intact. *)
  expect_halt "callee-saved survives" 5
    (exec ~main:"m"
       [
         ( "m",
           [
             (None, li Reg.s0 5);
             (None, call "f");
             (None, Insn.Mov { dst = Reg.v0; src = Reg.s0 });
             (None, ret);
           ] );
         ( "f",
           [
             (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
             (None, store Reg.s0 ~base:Reg.sp ~offset:0);
             (None, li Reg.s0 99);
             (None, load Reg.s0 ~base:Reg.sp ~offset:0);
             (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
             (None, ret);
           ] );
       ])

let test_profile () =
  let p =
    program ~main:"m"
      [
        routine "m"
          [
            (None, li Reg.t0 3);
            (Some "loop", store Reg.t0 ~base:Reg.sp ~offset:0);
            (None, Insn.Binop { op = Insn.Sub; dst = Reg.t0; src1 = Reg.t0; src2 = Insn.Imm 1 });
            (None, Insn.Bcond { cond = Insn.Gt; src = Reg.t0; target = "loop" });
            (None, ret);
          ];
      ]
  in
  let outcome, profile = Profile.collect p in
  (match outcome with
  | Machine.Halted _ -> ()
  | Machine.Trapped _ -> Alcotest.fail "should halt");
  Alcotest.(check int) "li once" 1 (Profile.count profile ~routine:0 ~index:0);
  Alcotest.(check int) "loop body thrice" 3 (Profile.count profile ~routine:0 ~index:1);
  Alcotest.(check int) "total" (Profile.total profile)
    (Profile.routine_total profile ~routine:0);
  let uniform = Profile.uniform p in
  Alcotest.(check int) "uniform" 1 (Profile.count uniform ~routine:0 ~index:3)

let test_steps_and_fuel_accounting () =
  let p =
    program ~main:"m" [ routine "m" [ (None, li Reg.v0 0); (None, ret) ] ]
  in
  let state = Machine.create p in
  (match Machine.run state with
  | Machine.Halted 0 -> ()
  | Machine.Halted _ | Machine.Trapped _ -> Alcotest.fail "unexpected outcome");
  Alcotest.(check int) "two steps" 2 (Machine.steps state)

let () =
  Alcotest.run "interp"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "zero register" `Quick test_zero_register;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "switch modulo" `Quick test_switch_modulo;
          Alcotest.test_case "calls" `Quick test_calls;
          Alcotest.test_case "save/restore" `Quick test_save_restore_semantics;
        ] );
      ("traps", [ Alcotest.test_case "failure injection" `Quick test_traps ]);
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile;
          Alcotest.test_case "steps" `Quick test_steps_and_fuel_accounting;
        ] );
    ]
