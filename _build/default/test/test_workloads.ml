(* The calibrated benchmark workloads and the hand-written assembly
   example: every calibration row must generate a valid program whose
   shape tracks the paper's, and the checked-in fact.s must parse, pass
   the analysis oracles, and compute the right answer. *)

open Spike_ir
open Spike_synth

let test_every_calibration_generates () =
  List.iter
    (fun (row : Calibrate.paper_row) ->
      let p = Generator.generate (Calibrate.params_of ~scale:0.02 row) in
      match Validate.check p with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s: invalid program: %s" row.Calibrate.name
            (String.concat "; " (List.filteri (fun i _ -> i < 3) e)))
    Calibrate.benchmarks

let test_calibration_shape_tracks_paper () =
  (* At modest scale, instructions per routine should be within 2x of the
     paper's figure for every benchmark. *)
  List.iter
    (fun (row : Calibrate.paper_row) ->
      let p = Generator.generate (Calibrate.params_of ~scale:0.1 row) in
      let routines = Program.routine_count p in
      let measured = float_of_int (Program.instruction_count p) /. float_of_int routines in
      let target = row.Calibrate.instructions_k *. 1000.0 /. float_of_int row.Calibrate.routines in
      let ratio = measured /. target in
      if ratio < 0.5 || ratio > 2.0 then
        Alcotest.failf "%s: %.1f instructions/routine vs paper %.1f"
          row.Calibrate.name measured target)
    Calibrate.benchmarks

let test_calibration_is_deterministic () =
  let row = Option.get (Calibrate.find "perl") in
  let a = Generator.generate (Calibrate.params_of ~scale:0.05 row) in
  let b = Generator.generate (Calibrate.params_of ~scale:0.05 row) in
  Alcotest.(check string) "same program" (Spike_asm.Printer.to_string a)
    (Spike_asm.Printer.to_string b)

let fact_path =
  (* dune runtest runs with cwd = the test directory inside _build; dune
     exec runs from the workspace root.  Accept either. *)
  if Sys.file_exists "../examples/fact.s" then "../examples/fact.s"
  else "examples/fact.s"

let test_fact_s () =
  let p = Spike_asm.Parser.program_of_file fact_path in
  (match Validate.check p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fact.s invalid: %s" (String.concat "; " e));
  (* fact(6) + fib(8) = 720 + 21 *)
  (match Spike_interp.Machine.execute p with
  | Spike_interp.Machine.Halted v -> Alcotest.(check int) "result" 741 v
  | Spike_interp.Machine.Trapped _ -> Alcotest.fail "fact.s trapped");
  (* The analysis is dynamically sound on it and fib's s0 save/restore is
     detected and filtered. *)
  let analysis = Spike_core.Analysis.run p in
  let _, violations = Spike_interp.Oracle.check analysis in
  Alcotest.(check int) "no violations" 0 (List.length violations);
  let fib = Option.get (Program.find_index p "fib") in
  Alcotest.(check bool) "s0 filtered in fib" true
    (Spike_support.Regset.mem Spike_isa.Reg.s0
       analysis.Spike_core.Analysis.psg.Spike_core.Psg.entry_filter.(fib));
  (* Optimizing it must not change the answer. *)
  let optimized, _ = Spike_opt.Opt.run analysis in
  match Spike_interp.Machine.execute optimized with
  | Spike_interp.Machine.Halted v -> Alcotest.(check int) "optimized result" 741 v
  | Spike_interp.Machine.Trapped _ -> Alcotest.fail "optimized fact.s trapped"

let () =
  Alcotest.run "workloads"
    [
      ( "calibration",
        [
          Alcotest.test_case "all benchmarks generate" `Quick
            test_every_calibration_generates;
          Alcotest.test_case "shape tracks the paper" `Quick
            test_calibration_shape_tracks_paper;
          Alcotest.test_case "deterministic" `Quick test_calibration_is_deterministic;
        ] );
      ("fact.s", [ Alcotest.test_case "end to end" `Quick test_fact_s ]);
    ]
