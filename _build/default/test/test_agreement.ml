(* Cross-validation of the PSG analysis:

   1. Exact agreement with the brute-force reference fixpoint
      (spike_reference) on call classes and liveness.
   2. Conservativeness of the context-insensitive supergraph liveness:
      it must contain the PSG's meet-over-valid-paths liveness.
   3. Branch nodes change graph size, never the solution.
   4. Dynamic soundness: summaries hold on actual executions (oracle). *)

open Spike_support
open Spike_ir
open Spike_core
open Spike_synth
open Test_helpers

let workloads () =
  let base = Params.default in
  let variants =
    [
      base;
      { base with Params.seed = 1; recursion_prob = 0.4 };
      { base with Params.seed = 2; switches_per_routine = 1.0; switch_loop_prob = 0.9 };
      { base with Params.seed = 3; save_restore_prob = 0.9 };
      { base with Params.seed = 4; unknown_call_prob = 0.2; indirect_known_prob = 0.2 };
      { base with Params.seed = 5; routines = 30; target_instructions = 2000 };
      { base with Params.seed = 6; exits_per_routine = 2.5 };
      { base with Params.seed = 7; branches_per_routine = 10.0 };
      { base with Params.seed = 8; extra_entry_prob = 0.3 };
      { base with Params.seed = 9; unknown_jump_prob = 0.2; guard_calls = false };
    ]
  in
  let seeds = List.init 10 (fun i -> { base with Params.seed = 100 + i }) in
  List.map Generator.generate (variants @ seeds)

let check_program_agreement p =
  let analysis = Analysis.run p in
  let reference = Spike_reference.Reference.run p in
  Program.iter
    (fun r (routine : Routine.t) ->
      let name = routine.Routine.name in
      let a = analysis.Analysis.call_classes.(r)
      and b = reference.Spike_reference.Reference.call_classes.(r) in
      check_regset (name ^ " call-used") b.Summary.used a.Summary.used;
      check_regset (name ^ " call-defined") b.Summary.defined a.Summary.defined;
      check_regset (name ^ " call-killed") b.Summary.killed a.Summary.killed;
      let s = analysis.Analysis.summaries.(r) in
      (match s.Summary.live_at_entry with
      | (_, live) :: _ ->
          check_regset (name ^ " live-at-entry")
            reference.Spike_reference.Reference.live_at_entry.(r)
            live
      | [] -> ());
      List.iter
        (fun (block, live) ->
          match
            List.assoc_opt block reference.Spike_reference.Reference.live_at_exit.(r)
          with
          | Some expected ->
              check_regset
                (Printf.sprintf "%s live-at-exit B%d" name block)
                expected live
          | None -> Alcotest.failf "%s: exit block B%d missing in reference" name block)
        s.Summary.live_at_exit)
    p

let test_reference_agreement () =
  check_program_agreement (figure2_program ());
  List.iter check_program_agreement (workloads ())

let check_supergraph_conservative p =
  let analysis = Analysis.run p in
  let super = Spike_supercfg.Supercfg.build p analysis.Analysis.cfgs in
  let live = Spike_supercfg.Supercfg.liveness super analysis.Analysis.defuses in
  Program.iter
    (fun r (routine : Routine.t) ->
      let name = routine.Routine.name in
      let s = analysis.Analysis.summaries.(r) in
      let cfg = analysis.Analysis.cfgs.(r) in
      (match (s.Summary.live_at_entry, cfg.Spike_cfg.Cfg.entry_blocks) with
      | (_, psg_live) :: _, (_, entry_block) :: _ ->
          let super_live =
            Regset.inter
              (Spike_supercfg.Supercfg.live_in live ~routine:r ~block:entry_block)
              Spike_isa.Calling_standard.all_allocatable
          in
          if not (Regset.subset psg_live super_live) then
            Alcotest.failf "%s: PSG live-at-entry %s not within supergraph %s" name
              (Regset.to_string ~name:Spike_isa.Reg.name psg_live)
              (Regset.to_string ~name:Spike_isa.Reg.name super_live)
      | _, _ -> ());
      List.iter
        (fun (block, psg_live) ->
          let super_live =
            Regset.inter
              (Spike_supercfg.Supercfg.live_out live ~routine:r ~block)
              Spike_isa.Calling_standard.all_allocatable
          in
          if not (Regset.subset psg_live super_live) then
            Alcotest.failf "%s B%d: PSG live-at-exit %s not within supergraph %s" name
              block
              (Regset.to_string ~name:Spike_isa.Reg.name psg_live)
              (Regset.to_string ~name:Spike_isa.Reg.name super_live))
        s.Summary.live_at_exit)
    p

let test_supergraph_conservative () =
  check_supergraph_conservative (figure2_program ());
  List.iter check_supergraph_conservative (workloads ())

let test_branch_nodes_solution_invariant () =
  List.iter
    (fun p ->
      let with_bn = Analysis.run ~branch_nodes:true p in
      let without = Analysis.run ~branch_nodes:false p in
      Program.iter
        (fun r (routine : Routine.t) ->
          let name = routine.Routine.name in
          let a = with_bn.Analysis.call_classes.(r)
          and b = without.Analysis.call_classes.(r) in
          check_regset (name ^ " used") b.Summary.used a.Summary.used;
          check_regset (name ^ " defined") b.Summary.defined a.Summary.defined;
          check_regset (name ^ " killed") b.Summary.killed a.Summary.killed;
          List.iter2
            (fun (_, la) (_, lb) -> check_regset (name ^ " live-entry") lb la)
            with_bn.Analysis.summaries.(r).Summary.live_at_entry
            without.Analysis.summaries.(r).Summary.live_at_entry;
          List.iter2
            (fun (_, la) (_, lb) -> check_regset (name ^ " live-exit") lb la)
            with_bn.Analysis.summaries.(r).Summary.live_at_exit
            without.Analysis.summaries.(r).Summary.live_at_exit)
        p)
    (workloads ())

let executable_workloads () =
  List.filter
    (fun p ->
      (* The unknown-jump variant cannot run under the interpreter. *)
      Array.for_all
        (fun (r : Routine.t) ->
          Array.for_all
            (fun insn ->
              match insn with Spike_isa.Insn.Jump_unknown _ -> false | _ -> true)
            r.Routine.insns)
        (Program.routines p))
    (workloads ())

let test_dynamic_soundness () =
  List.iter
    (fun p ->
      let analysis = Analysis.run p in
      let outcome, violations = Spike_interp.Oracle.check ~fuel:3_000_000 analysis in
      (match outcome with
      | Spike_interp.Machine.Halted _ -> ()
      | Spike_interp.Machine.Trapped _ -> Alcotest.fail "workload should halt");
      match violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "soundness violation: %s"
            (Format.asprintf "%a" Spike_interp.Oracle.pp_violation v))
    (executable_workloads ())

let () =
  Alcotest.run "agreement"
    [
      ( "cross-validation",
        [
          Alcotest.test_case "psg = reference" `Quick test_reference_agreement;
          Alcotest.test_case "psg within supergraph" `Quick test_supergraph_conservative;
          Alcotest.test_case "branch nodes invariant" `Quick
            test_branch_nodes_solution_invariant;
          Alcotest.test_case "dynamic soundness" `Quick test_dynamic_soundness;
        ] );
    ]
