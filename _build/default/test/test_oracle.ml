(* The dynamic soundness oracle must not just stay quiet on correct
   analyses — it must actually catch wrong ones.  These tests corrupt
   computed summaries in controlled ways and demand a violation. *)

open Spike_support
open Spike_isa
open Spike_core
open Test_helpers

(* callee reads a0 and writes t0; caller invokes it once. *)
let base_program () =
  program ~main:"main"
    [
      routine "main"
        [ (None, li Reg.a0 5); (None, call "callee"); (None, use Reg.v0); (None, ret) ];
      routine "callee"
        [
          (None, Insn.Binop { op = Insn.Add; dst = Reg.t0; src1 = Reg.a0; src2 = Insn.Imm 1 });
          (None, Insn.Mov { dst = Reg.v0; src = Reg.t0 });
          (None, ret);
        ];
    ]

let corrupt_class analysis name f =
  let idx = Option.get (Spike_ir.Program.find_index analysis.Analysis.program name) in
  analysis.Analysis.call_classes.(idx) <- f analysis.Analysis.call_classes.(idx);
  analysis

let expect_violation kind analysis =
  let _, violations = Spike_interp.Oracle.check analysis in
  if not (List.exists (fun (v : Spike_interp.Oracle.violation) -> String.equal v.Spike_interp.Oracle.check kind) violations)
  then
    Alcotest.failf "expected a %s violation, got: %s" kind
      (String.concat "; "
         (List.map
            (fun v -> Format.asprintf "%a" Spike_interp.Oracle.pp_violation v)
            violations))

let test_detects_missing_call_used () =
  (* Claim the callee does not read a0: the run reads it, so the oracle
     must object. *)
  let analysis = Analysis.run (base_program ()) in
  let analysis =
    corrupt_class analysis "callee" (fun c ->
        { c with Summary.used = Regset.remove Reg.a0 c.Summary.used })
  in
  expect_violation "call-used" analysis

let test_detects_missing_call_killed () =
  (* Claim the callee does not clobber t0. *)
  let analysis = Analysis.run (base_program ()) in
  let analysis =
    corrupt_class analysis "callee" (fun c ->
        { c with Summary.killed = Regset.remove Reg.t0 c.Summary.killed })
  in
  expect_violation "call-killed" analysis

let test_detects_bogus_call_defined () =
  (* Claim the callee always defines a5; it never writes it. *)
  let analysis = Analysis.run (base_program ()) in
  let analysis =
    corrupt_class analysis "callee" (fun c ->
        { c with Summary.defined = Regset.add Reg.a5 c.Summary.defined })
  in
  expect_violation "call-defined" analysis

let test_detects_missing_liveness () =
  (* Claim nothing is live at the callee's exit; the caller reads v0 after
     the return. *)
  let analysis = Analysis.run (base_program ()) in
  let idx = Option.get (Spike_ir.Program.find_index analysis.Analysis.program "callee") in
  let summary = analysis.Analysis.summaries.(idx) in
  analysis.Analysis.summaries.(idx) <-
    {
      summary with
      Summary.live_at_exit =
        List.map (fun (b, _) -> (b, Regset.empty)) summary.Summary.live_at_exit;
    };
  expect_violation "live-at-exit" analysis

let test_clean_on_correct_analysis () =
  let analysis = Analysis.run (base_program ()) in
  let outcome, violations = Spike_interp.Oracle.check analysis in
  (match outcome with
  | Spike_interp.Machine.Halted _ -> ()
  | Spike_interp.Machine.Trapped _ -> Alcotest.fail "should halt");
  Alcotest.(check int) "no violations" 0 (List.length violations)

let () =
  Alcotest.run "oracle"
    [
      ( "detection",
        [
          Alcotest.test_case "missing call-used" `Quick test_detects_missing_call_used;
          Alcotest.test_case "missing call-killed" `Quick test_detects_missing_call_killed;
          Alcotest.test_case "bogus call-defined" `Quick test_detects_bogus_call_defined;
          Alcotest.test_case "missing liveness" `Quick test_detects_missing_liveness;
          Alcotest.test_case "clean baseline" `Quick test_clean_on_correct_analysis;
        ] );
    ]
