(* §3.5 external summaries: the compiler/linker channel for exact
   information about code outside the image.  Covers the summary-file
   syntax, the precision improvement over the calling-standard assumption,
   and agreement with the reference under externals. *)

open Spike_support
open Spike_isa
open Spike_core
open Test_helpers

let memcpyish =
  {
    Psg.x_used = rs [ Reg.a0; Reg.a1; Reg.a2 ];
    x_defined = rs [ Reg.v0 ];
    x_killed = rs [ Reg.v0; Reg.t0; Reg.t1; Reg.ra ];
  }

let externals name = if String.equal name "memcpy" then Some memcpyish else None

(* --- Summary files ------------------------------------------------------- *)

let test_summaries_parse () =
  let text =
    "# libc summaries\n.summary memcpy\n  used = {a0, a1, a2}\n  defined = {v0}\n\
     \  killed = {v0, t0, t1, ra}\n.end\n.summary pure\n  used = {}\n  defined = \
     {}\n  killed = {}\n.end\n"
  in
  let entries = Spike_asm.Summaries.of_string text in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  (match Spike_asm.Summaries.lookup entries "memcpy" with
  | Some c ->
      check_regset "used" memcpyish.Psg.x_used c.Psg.x_used;
      check_regset "defined" memcpyish.Psg.x_defined c.Psg.x_defined;
      check_regset "killed" memcpyish.Psg.x_killed c.Psg.x_killed
  | None -> Alcotest.fail "memcpy missing");
  (match Spike_asm.Summaries.lookup entries "pure" with
  | Some c -> check_regset "empty sets" Regset.empty c.Psg.x_used
  | None -> Alcotest.fail "pure missing");
  Alcotest.(check (option bool)) "unlisted" None
    (Option.map (fun _ -> true) (Spike_asm.Summaries.lookup entries "ghost"));
  (* Round trip. *)
  let again = Spike_asm.Summaries.of_string (Spike_asm.Summaries.to_string entries) in
  Alcotest.(check int) "roundtrip count" 2 (List.length again);
  List.iter2
    (fun (n1, c1) (n2, (c2 : Psg.external_class)) ->
      Alcotest.(check string) "name" n1 n2;
      check_regset "rt used" c1.Psg.x_used c2.Psg.x_used;
      check_regset "rt defined" c1.Psg.x_defined c2.Psg.x_defined;
      check_regset "rt killed" c1.Psg.x_killed c2.Psg.x_killed)
    entries again

let test_summaries_errors () =
  let expect_error ~line text =
    match Spike_asm.Summaries.of_string text with
    | _ -> Alcotest.failf "expected error at line %d" line
    | exception Spike_asm.Summaries.Error e -> Alcotest.(check int) "line" line e.line
  in
  expect_error ~line:1 "garbage";
  expect_error ~line:2 ".summary f\n  bogus = {}\n.end\n";
  expect_error ~line:2 ".summary f\n  used = {xyzzy}\n.end\n";
  expect_error ~line:3 ".summary f\n  used = {}\n.end\n";
  (* missing defined/killed *)
  expect_error ~line:0 ".summary f\n  used = {}\n"

(* --- Analysis precision ---------------------------------------------------- *)

(* main defines a0 and a3 then calls memcpy (external).  Under the standard
   assumption both defs are argument registers, hence live; with the
   summary, a3 is not used by memcpy and its def is dead. *)
let caller_program () =
  program ~main:"main"
    [
      routine "main"
        [
          (None, li Reg.a0 1);
          (None, li Reg.a3 2);
          (None, call "memcpy");
          (None, use Reg.v0);
          (None, ret);
        ];
    ]

let test_precision_over_assumption () =
  let p = caller_program () in
  let with_ext = Analysis.run ~externals p in
  let without = Analysis.run p in
  let info_of (a : Analysis.t) = a.Analysis.psg.Psg.calls.(0) in
  let site_with = Analysis.site_class with_ext (info_of with_ext) in
  let site_without = Analysis.site_class without (info_of without) in
  Alcotest.(check bool) "a3 assumed used without summary" true
    (Regset.mem Reg.a3 site_without.Summary.used);
  Alcotest.(check bool) "a3 known unused with summary" false
    (Regset.mem Reg.a3 site_with.Summary.used);
  (* And the optimizer exploits it. *)
  let optimized, _ = Spike_opt.Opt.run with_ext in
  let main_r = Option.get (Spike_ir.Program.find optimized "main") in
  let has_a3_def =
    Array.exists
      (fun insn -> match insn with Insn.Li { dst; _ } -> dst = Reg.a3 | _ -> false)
      main_r.Spike_ir.Routine.insns
  in
  Alcotest.(check bool) "dead a3 def removed under summary" false has_a3_def;
  let optimized_without, _ = Spike_opt.Opt.run (Analysis.run p) in
  let main_r = Option.get (Spike_ir.Program.find optimized_without "main") in
  let has_a3_def =
    Array.exists
      (fun insn -> match insn with Insn.Li { dst; _ } -> dst = Reg.a3 | _ -> false)
      main_r.Spike_ir.Routine.insns
  in
  Alcotest.(check bool) "a3 def kept under the assumption" true has_a3_def

let test_external_must_def_kills_liveness () =
  (* v0 is must-defined by memcpy, so a pre-call def of v0 feeding only the
     post-call use is dead with the summary. *)
  let p =
    program ~main:"main"
      [
        routine "main"
          [
            (None, li Reg.v0 1);
            (* dead: memcpy must-defines v0 *)
            (None, li Reg.a0 2);
            (None, call "memcpy");
            (None, use Reg.v0);
            (None, ret);
          ];
      ]
  in
  let optimized, _ = Spike_opt.Opt.run (Analysis.run ~externals p) in
  let main_r = Option.get (Spike_ir.Program.find optimized "main") in
  Alcotest.(check bool) "pre-call v0 def removed" false
    (Array.exists
       (fun insn -> match insn with Insn.Li { dst; imm } -> dst = Reg.v0 && imm = 1 | _ -> false)
       main_r.Spike_ir.Routine.insns)

let test_mixed_targets () =
  (* An indirect call that may hit a routine of the image or memcpy. *)
  let local = routine "local" [ (None, use Reg.a4); (None, li Reg.v0 3); (None, ret) ] in
  let main =
    routine "main"
      [
        (None, li Reg.pv 0);
        (None, call_indirect ~targets:[ "local"; "memcpy" ] Reg.pv);
        (None, use Reg.v0);
        (None, ret);
      ]
  in
  let p = program ~main:"main" [ main; local ] in
  let analysis = Analysis.run ~externals p in
  let site = Analysis.site_class analysis analysis.Analysis.psg.Psg.calls.(0) in
  Alcotest.(check bool) "a4 used (local)" true (Regset.mem Reg.a4 site.Summary.used);
  Alcotest.(check bool) "a0 used (memcpy)" true (Regset.mem Reg.a0 site.Summary.used);
  Alcotest.(check bool) "v0 must-defined (both)" true
    (Regset.mem Reg.v0 site.Summary.defined);
  (* Without externals the same call is fully unknown. *)
  let plain = Analysis.run p in
  let site_plain = Analysis.site_class plain plain.Analysis.psg.Psg.calls.(0) in
  check_regset "falls back to the assumption" Calling_standard.unknown_call_used
    site_plain.Summary.used

let test_reference_agreement_with_externals () =
  let p = caller_program () in
  let analysis = Analysis.run ~externals p in
  let reference = Spike_reference.Reference.run ~externals p in
  Array.iteri
    (fun r (c : Summary.call_class) ->
      let d = reference.Spike_reference.Reference.call_classes.(r) in
      check_regset "used" d.Summary.used c.Summary.used;
      check_regset "defined" d.Summary.defined c.Summary.defined;
      check_regset "killed" d.Summary.killed c.Summary.killed;
      (match (analysis.Analysis.summaries.(r)).Summary.live_at_entry with
      | (_, live) :: _ ->
          check_regset "live-at-entry"
            reference.Spike_reference.Reference.live_at_entry.(r)
            live
      | [] -> ()))
    analysis.Analysis.call_classes

let () =
  Alcotest.run "externals"
    [
      ( "summary-files",
        [
          Alcotest.test_case "parse + roundtrip" `Quick test_summaries_parse;
          Alcotest.test_case "errors" `Quick test_summaries_errors;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "precision over assumption" `Quick
            test_precision_over_assumption;
          Alcotest.test_case "must-def kills liveness" `Quick
            test_external_must_def_kills_liveness;
          Alcotest.test_case "mixed targets" `Quick test_mixed_targets;
          Alcotest.test_case "reference agreement" `Quick
            test_reference_agreement_with_externals;
        ] );
    ]
