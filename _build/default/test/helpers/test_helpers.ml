(* Shared helpers for the test suites. *)

open Spike_support
open Spike_isa
open Spike_ir

let regset_testable =
  Alcotest.testable (Regset.pp ~name:Reg.name) Regset.equal

let check_regset = Alcotest.check regset_testable

(* Check equality of a set restricted to the registers of interest — the
   paper's examples speak only about abstract registers R0..R3, while our
   IR adds real [ra]/[sp] traffic around calls and returns. *)
let check_restricted msg ~over expected actual =
  check_regset msg expected (Regset.inter actual over)

let rs = Regset.of_list

(* Instruction shorthands used throughout the tests.  Registers R0..R3 of
   the paper's examples map to v0, t0, t1, t2. *)
let r0 = Reg.v0
let r1 = Reg.t0
let r2 = Reg.t1
let r3 = Reg.t2

let li dst imm = Insn.Li { dst; imm }
let mov ~src ~dst = Insn.Mov { dst; src }
let add dst src1 src2 = Insn.Binop { op = Insn.Add; dst; src1; src2 = Insn.Reg src2 }
let load dst ~base ~offset = Insn.Load { dst; base; offset }
let store src ~base ~offset = Insn.Store { src; base; offset }
let use r = store r ~base:Reg.sp ~offset:0 (* an instruction that only reads [r] *)
let br target = Insn.Br { target }
let beq src target = Insn.Bcond { cond = Insn.Eq; src; target }
let bne src target = Insn.Bcond { cond = Insn.Ne; src; target }
let switch index table = Insn.Switch { index; table = Array.of_list table }
let call name = Insn.Call { callee = Insn.Direct name }
let call_indirect ?targets reg = Insn.Call { callee = Insn.Indirect (reg, targets) }
let ret = Insn.Ret

(* Assemble a routine from (label option, insn) rows. *)
let routine ?exported ?entries name rows =
  let labels = ref [] and insns = ref [] in
  List.iteri
    (fun i (label, insn) ->
      (match label with Some l -> labels := (l, i) :: !labels | None -> ());
      insns := insn :: !insns)
    rows;
  let entries =
    match entries with
    | Some e -> e
    | None ->
        let l = name ^ "$entry" in
        labels := (l, 0) :: !labels;
        [ l ]
  in
  Routine.make ?exported ~name ~entries ~labels:(List.rev !labels)
    (Array.of_list (List.rev !insns))

let program ~main routines =
  let p = Program.make ~main routines in
  (match Validate.check p with
  | Ok () -> ()
  | Error problems ->
      Alcotest.failf "test program ill-formed:@ %s" (String.concat "; " problems));
  p

(* The paper's Figure 2 example: P1 and P3 both call P2.
   P1: defines R0 and R1, calls P2, uses R0 afterwards.
   P2: uses R1, defines R2 on both arms of a diamond, R3 on one arm.
   P3: defines R1, calls P2.
   main calls P1 and P3. *)
let figure2_program () =
  let p1 =
    routine "P1"
      [ (None, li r0 1); (None, li r1 2); (None, call "P2"); (None, use r0); (None, ret) ]
  in
  let p2 =
    routine "P2"
      [
        (None, bne r1 "P2_right");
        (None, li r2 5);
        (None, li r3 7);
        (None, br "P2_join");
        (Some "P2_right", li r2 9);
        (Some "P2_join", ret);
      ]
  in
  let p3 = routine "P3" [ (None, li r1 3); (None, call "P2"); (None, ret) ] in
  let main = routine "main" [ (None, call "P1"); (None, call "P3"); (None, ret) ] in
  program ~main:"main" [ main; p1; p2; p3 ]
