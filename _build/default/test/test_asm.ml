(* The assembly front-end: print/parse round-trips (hand-written and
   generator-produced programs), every instruction form, and error
   reporting with line numbers. *)

open Spike_isa
open Spike_ir

let program_eq a b =
  String.equal (Spike_asm.Printer.to_string a) (Spike_asm.Printer.to_string b)

let roundtrip msg p =
  let text = Spike_asm.Printer.to_string p in
  let p' = Spike_asm.Parser.program_of_string text in
  if not (program_eq p p') then
    Alcotest.failf "%s: roundtrip mismatch@.first print:@.%s@.reparsed print:@.%s" msg
      text
      (Spike_asm.Printer.to_string p')

(* One routine exercising every instruction form the printer can emit. *)
let kitchen_sink =
  let b = Builder.create ~exported:true "sink" in
  Builder.emit b (Insn.Li { dst = Reg.t0; imm = -5 });
  Builder.emit b (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -32 });
  Builder.emit b (Insn.Mov { dst = Reg.a0; src = Reg.t0 });
  Builder.emit b (Insn.Binop { op = Insn.Add; dst = Reg.v0; src1 = Reg.t0; src2 = Insn.Reg Reg.t1 });
  Builder.emit b (Insn.Binop { op = Insn.Sll; dst = Reg.v0; src1 = Reg.v0; src2 = Insn.Imm 3 });
  Builder.emit b (Insn.Load { dst = Reg.t2; base = Reg.sp; offset = 8 });
  Builder.emit b (Insn.Store { src = Reg.t2; base = Reg.sp; offset = 16 });
  Builder.emit b (Insn.Bcond { cond = Insn.Ge; src = Reg.t2; target = "skip" });
  Builder.emit b (Insn.Switch { index = Reg.t3; table = [| "skip"; "other" |] });
  Builder.label b "other";
  Builder.emit b (Insn.Call { callee = Insn.Direct "ext" });
  Builder.emit b (Insn.Call { callee = Insn.Indirect (Reg.pv, None) });
  Builder.emit b (Insn.Call { callee = Insn.Indirect (Reg.pv, Some [ "a"; "b" ]) });
  Builder.emit b Insn.Nop;
  Builder.label b "skip";
  Builder.emit b (Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 32 });
  Builder.emit b (Insn.Jump_unknown { target = Reg.t4 });
  Builder.finish b

let test_kitchen_sink () =
  roundtrip "kitchen sink" (Program.make ~main:"sink" [ kitchen_sink ])

let test_multi_entry_and_exports () =
  let b = Builder.create ~exported:true "m" in
  Builder.declare_entry b "m$a";
  Builder.label b "m$a";
  Builder.emit b (Insn.Li { dst = Reg.t0; imm = 1 });
  Builder.declare_entry b "m$b";
  Builder.label b "m$b";
  Builder.emit b Insn.Ret;
  let r = Builder.finish b in
  let p = Program.make ~main:"m" [ r ] in
  roundtrip "multi-entry exported" p;
  let reparsed = Spike_asm.Parser.program_of_string (Spike_asm.Printer.to_string p) in
  match Program.find reparsed "m" with
  | Some m ->
      Alcotest.(check (list string)) "entries survive" [ "m$a"; "m$b" ] m.Routine.entries;
      Alcotest.(check bool) "exported survives" true m.Routine.exported
  | None -> Alcotest.fail "routine lost"

let test_generated_roundtrip () =
  for seed = 0 to 9 do
    let p =
      Spike_synth.Generator.generate { Spike_synth.Params.default with seed }
    in
    roundtrip (Printf.sprintf "generated seed %d" seed) p
  done;
  (* Also the analysis-only shapes with unknown jumps. *)
  let p =
    Spike_synth.Generator.generate
      {
        Spike_synth.Params.default with
        seed = 77;
        unknown_jump_prob = 0.4;
        guard_calls = false;
      }
  in
  roundtrip "unknown-jump workload" p

let expect_error ~line text =
  match Spike_asm.Parser.program_of_string text with
  | _ -> Alcotest.failf "expected a parse error at line %d" line
  | exception Spike_asm.Parser.Error e ->
      Alcotest.(check int) "error line" line e.line

let test_errors () =
  expect_error ~line:1 "bogus";
  expect_error ~line:2 ".main m\n.routine\n";
  expect_error ~line:3 ".main m\n.routine m\n  li xyzzy, 1\n.end\n";
  expect_error ~line:3 ".main m\n.routine m\n  frobnicate t0\n.end\n";
  expect_error ~line:4 ".main m\n.routine m\n  ret\n  jsr ra, (pv), [a,\n.end\n";
  expect_error ~line:3 ".main m\n.routine m\n  li t0, 99999999999999999999999\n.end\n";
  expect_error ~line:0 ".main m\n.routine m\n  ret\n";
  (* unterminated routine *)
  expect_error ~line:0 "";
  (* no .main *)
  expect_error ~line:3 ".main m\n.routine m\n.routine n\n.end\n.end\n"

let test_comments_and_blank_lines () =
  let text =
    "# leading comment\n\n.main m   # trailing\n.routine m\n  li t0, 3 # imm\n\n  \
     ret\n.end\n"
  in
  let p = Spike_asm.Parser.program_of_string text in
  Alcotest.(check int) "instructions" 2 (Program.instruction_count p)

let test_file_io () =
  let p = Program.make ~main:"sink" [ kitchen_sink ] in
  let path = Filename.temp_file "spike_asm_test" ".s" in
  Spike_asm.Printer.to_file path p;
  let p' = Spike_asm.Parser.program_of_file path in
  Sys.remove path;
  if not (program_eq p p') then Alcotest.fail "file roundtrip mismatch"

(* The parser must be total: any input either parses or raises its own
   Error — never an unexpected exception. *)
let test_fuzz_totality () =
  let g = Spike_support.Prng.create 1234 in
  let alphabet = "abz09 _$.,:(){}[]=#-\nliret" in
  for _ = 1 to 2000 do
    let len = Spike_support.Prng.int g 120 in
    let text =
      String.init len (fun _ ->
          alphabet.[Spike_support.Prng.int g (String.length alphabet)])
    in
    (match Spike_asm.Parser.program_of_string text with
    | _ -> ()
    | exception Spike_asm.Parser.Error _ -> ());
    match Spike_asm.Summaries.of_string text with
    | _ -> ()
    | exception Spike_asm.Summaries.Error _ -> ()
  done

let () =
  Alcotest.run "asm"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "kitchen sink" `Quick test_kitchen_sink;
          Alcotest.test_case "multi-entry + exported" `Quick test_multi_entry_and_exports;
          Alcotest.test_case "generated programs" `Quick test_generated_roundtrip;
          Alcotest.test_case "file io" `Quick test_file_io;
        ] );
      ( "errors",
        [
          Alcotest.test_case "positions" `Quick test_errors;
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blank_lines;
          Alcotest.test_case "fuzz totality" `Quick test_fuzz_totality;
        ] );
    ]
