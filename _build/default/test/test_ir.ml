(* The IR layer: routines, programs, the builder, and failure injection
   through the validator. *)

open Spike_isa
open Spike_ir

let li r imm = Insn.Li { dst = r; imm }
let call name = Insn.Call { callee = Insn.Direct name }

(* --- Builder ----------------------------------------------------------- *)

let test_builder () =
  let b = Builder.create "f" in
  Alcotest.(check int) "empty position" 0 (Builder.position b);
  Builder.emit b (li Reg.t0 1);
  Builder.label b "mid";
  Builder.emit b Insn.Ret;
  let r = Builder.finish b in
  Alcotest.(check int) "two instructions" 2 (Routine.instruction_count r);
  Alcotest.(check (list string)) "default entry" [ "f$entry" ] r.Routine.entries;
  Alcotest.(check (option int)) "mid label" (Some 1) (Routine.label_index r "mid");
  Alcotest.(check (option int)) "entry label" (Some 0) (Routine.label_index r "f$entry");
  Alcotest.(check string) "primary entry" "f$entry" (Routine.primary_entry r)

let test_builder_fresh_labels () =
  let b = Builder.create "f" in
  let l1 = Builder.fresh_label b "x" in
  let l2 = Builder.fresh_label b "x" in
  if String.equal l1 l2 then Alcotest.fail "fresh labels must differ";
  Builder.label b l1;
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Builder.label: x0 already defined in f") (fun () ->
      Builder.label b l1)

let test_builder_declared_entries () =
  let b = Builder.create "f" in
  Builder.declare_entry b "first";
  Builder.label b "first";
  Builder.emit b (li Reg.t0 1);
  Builder.declare_entry b "second";
  Builder.label b "second";
  Builder.emit b Insn.Ret;
  let r = Builder.finish b in
  Alcotest.(check (list string)) "entry order" [ "first"; "second" ] r.Routine.entries;
  Alcotest.(check int) "exit count" 1 (Routine.exit_count r)

(* --- Program ------------------------------------------------------------ *)

let mk name insns = Routine.make ~name ~entries:[ name ^ "$e" ] ~labels:[ (name ^ "$e", 0) ] (Array.of_list insns)

let test_program () =
  let f = mk "f" [ li Reg.t0 1; Insn.Ret ] in
  let g = mk "g" [ call "f"; Insn.Ret ] in
  let p = Program.make ~main:"g" [ g; f ] in
  Alcotest.(check int) "count" 2 (Program.routine_count p);
  Alcotest.(check int) "instructions" 4 (Program.instruction_count p);
  Alcotest.(check (option int)) "find_index" (Some 1) (Program.find_index p "f");
  Alcotest.(check bool) "find" true (Option.is_some (Program.find p "f"));
  Alcotest.(check (list string)) "callees_of g" [ "f" ] (Program.callees_of p g);
  Alcotest.(check (list string)) "callees_of f" [] (Program.callees_of p f);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Program.make: duplicate routine f") (fun () ->
      ignore (Program.make ~main:"f" [ f; f ]));
  Alcotest.check_raises "missing main"
    (Invalid_argument "Program.make: main routine nope not defined") (fun () ->
      ignore (Program.make ~main:"nope" [ f ]))

let test_callee_targets () =
  let f = mk "f" [ li Reg.t0 1; Insn.Ret ] in
  let g = mk "g" [ li Reg.t0 2; Insn.Ret ] in
  let p = Program.make ~main:"f" [ f; g ] in
  let check msg expected callee =
    Alcotest.(check (option (list int))) msg expected (Program.callee_summary_targets p callee)
  in
  check "direct resolved" (Some [ 0 ]) (Insn.Direct "f");
  check "direct external" None (Insn.Direct "library_routine");
  check "indirect unknown" None (Insn.Indirect (Reg.pv, None));
  check "indirect known" (Some [ 0; 1 ]) (Insn.Indirect (Reg.pv, Some [ "f"; "g" ]));
  check "indirect partially unresolved" None
    (Insn.Indirect (Reg.pv, Some [ "f"; "mystery" ]))

(* --- Validation failure injection ---------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || at (i + 1)) in
  at 0

let expect_problem fragment routine =
  match Validate.check_routine routine with
  | [] -> Alcotest.failf "expected a diagnostic mentioning %S" fragment
  | problems ->
      if not (List.exists (fun p -> contains p fragment) problems) then
        Alcotest.failf "no diagnostic mentions %S in: %s" fragment
          (String.concat " | " problems)

let test_validate () =
  let ok = mk "ok" [ li Reg.t0 1; Insn.Ret ] in
  Alcotest.(check (list string)) "well-formed" [] (Validate.check_routine ok);
  expect_problem "empty"
    (Routine.make ~name:"e" ~entries:[ "x" ] ~labels:[ ("x", 0) ] [||]);
  expect_problem "undefined label"
    (mk "b" [ Insn.Br { target = "nowhere" }; Insn.Ret ]);
  expect_problem "duplicate label"
    (Routine.make ~name:"d" ~entries:[ "l" ]
       ~labels:[ ("l", 0); ("l", 1) ]
       [| li Reg.t0 1; Insn.Ret |]);
  expect_problem "fall off the end" (mk "f" [ li Reg.t0 1 ]);
  expect_problem "empty jump table"
    (mk "s" [ Insn.Switch { index = Reg.t0; table = [||] }; Insn.Ret ]);
  expect_problem "entry"
    (Routine.make ~name:"n" ~entries:[ "ghost" ] ~labels:[ ("x", 0) ]
       [| li Reg.t0 1; Insn.Ret |]);
  expect_problem "end-of-routine label"
    (Routine.make ~name:"eol" ~entries:[ "e" ]
       ~labels:[ ("e", 0); ("tail", 2) ]
       [| Insn.Br { target = "tail" }; Insn.Ret |]);
  (* Program-level aggregation. *)
  let bad = mk "bad" [ li Reg.t0 1 ] in
  match Validate.check (Program.make ~main:"bad" [ bad ]) with
  | Ok () -> Alcotest.fail "expected program-level failure"
  | Error problems -> Alcotest.(check bool) "has problems" true (problems <> [])

let test_routine_pp_roundtrip_format () =
  (* Routine.pp is the assembly syntax; it must contain the directives. *)
  let r = mk "f" [ li Reg.t0 1; Insn.Ret ] in
  let text = Format.asprintf "%a" Routine.pp r in
  List.iter
    (fun fragment ->
      if not (contains text fragment) then
        Alcotest.failf "missing %S in rendering:\n%s" fragment text)
    [ ".routine f"; ".entry f$e"; "li t0, 1"; "ret"; ".end" ]

let () =
  Alcotest.run "ir"
    [
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick test_builder;
          Alcotest.test_case "fresh labels" `Quick test_builder_fresh_labels;
          Alcotest.test_case "declared entries" `Quick test_builder_declared_entries;
        ] );
      ( "program",
        [
          Alcotest.test_case "construction" `Quick test_program;
          Alcotest.test_case "callee targets" `Quick test_callee_targets;
        ] );
      ( "validate",
        [
          Alcotest.test_case "failure injection" `Quick test_validate;
          Alcotest.test_case "rendering" `Quick test_routine_pp_roundtrip_format;
        ] );
    ]
