(* The whole-program supergraph baseline: arc accounting (call and return
   arcs) and context-insensitive liveness, including its characteristic
   imprecision relative to the PSG. *)

open Spike_support
open Spike_isa
open Spike_core
open Spike_supercfg
open Test_helpers

let test_arc_accounting () =
  (* main calls f twice; f has two exits.  Each resolved call adds one call
     arc and one return arc per callee exit. *)
  let f =
    routine "f"
      [
        (None, beq r1 "second");
        (None, li r2 1);
        (None, ret);
        (Some "second", li r3 2);
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "f"); (None, call "f"); (None, ret) ] in
  let p = program ~main:"main" [ main; f ] in
  let analysis = Analysis.run p in
  let super = Supercfg.build p analysis.Analysis.cfgs in
  Alcotest.(check int) "call arcs" 2 (Supercfg.call_arc_count super);
  Alcotest.(check int) "return arcs" 4 (Supercfg.return_arc_count super);
  Alcotest.(check int) "blocks" 6 (Supercfg.block_count super);
  (* Unknown calls keep a plain fallthrough arc instead. *)
  let m2 =
    routine "m2" [ (None, li Reg.pv 0); (None, call_indirect Reg.pv); (None, ret) ]
  in
  let p2 = program ~main:"m2" [ m2 ] in
  let analysis2 = Analysis.run p2 in
  let super2 = Supercfg.build p2 analysis2.Analysis.cfgs in
  Alcotest.(check int) "no call arcs for unknown" 0 (Supercfg.call_arc_count super2);
  Alcotest.(check int) "no return arcs for unknown" 0 (Supercfg.return_arc_count super2)

let test_liveness_through_calls () =
  (* R0 defined in main before the call, used after: it must be live
     through the callee's blocks on the supergraph. *)
  let p = figure2_program () in
  let analysis = Analysis.run p in
  let super = Supercfg.build p analysis.Analysis.cfgs in
  let live = Supercfg.liveness super analysis.Analysis.defuses in
  let p2 = Option.get (Spike_ir.Program.find_index p "P2") in
  let entry_block =
    match analysis.Analysis.cfgs.(p2).Spike_cfg.Cfg.entry_blocks with
    | (_, b) :: _ -> b
    | [] -> assert false
  in
  let at_entry = Supercfg.live_in live ~routine:p2 ~block:entry_block in
  Alcotest.(check bool) "R0 live at P2 entry" true (Regset.mem r0 at_entry);
  Alcotest.(check bool) "R1 live at P2 entry" true (Regset.mem r1 at_entry)

let test_context_insensitivity () =
  (* Two callers: one keeps t3 live across the call, the other does not.
     The supergraph merges the return paths, so the callee's exit sees t3
     live even for the second caller; the PSG does not. *)
  let callee = routine "callee" [ (None, li r2 1); (None, ret) ] in
  let keeper =
    routine "keeper"
      [
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
        (None, store Reg.ra ~base:Reg.sp ~offset:0);
        (None, li Reg.t3 7);
        (None, call "callee");
        (None, use Reg.t3);
        (None, load Reg.ra ~base:Reg.sp ~offset:0);
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
        (None, ret);
      ]
  in
  let other =
    routine "other"
      [
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
        (None, store Reg.ra ~base:Reg.sp ~offset:0);
        (None, call "callee");
        (None, load Reg.ra ~base:Reg.sp ~offset:0);
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "keeper"); (None, call "other"); (None, ret) ] in
  let p = program ~main:"main" [ main; keeper; other; callee ] in
  let analysis = Analysis.run p in
  let super = Supercfg.build p analysis.Analysis.cfgs in
  let live = Supercfg.liveness super analysis.Analysis.defuses in
  let callee_idx = Option.get (Spike_ir.Program.find_index p "callee") in
  let exit_block = List.hd (Spike_cfg.Cfg.exit_blocks analysis.Analysis.cfgs.(callee_idx)) in
  let super_exit = Supercfg.live_out live ~routine:callee_idx ~block:exit_block in
  let psg_exit =
    List.assoc exit_block
      (analysis.Analysis.summaries.(callee_idx)).Summary.live_at_exit
  in
  Alcotest.(check bool) "supergraph sees t3 live (merged contexts)" true
    (Regset.mem Reg.t3 super_exit);
  Alcotest.(check bool) "psg also reports t3 (some caller uses it)" true
    (Regset.mem Reg.t3 psg_exit);
  (* The observable difference: liveness flows backward out of the merged
     callee exit, so before `other`'s call the supergraph claims t3 live
     (it leaked from keeper's continuation); valid-paths liveness does
     not. *)
  let other_idx = Option.get (Spike_ir.Program.find_index p "other") in
  let other_cfg = analysis.Analysis.cfgs.(other_idx) in
  let call_block, _ = List.hd (Spike_cfg.Cfg.call_sites other_cfg) in
  let super_before_call = Supercfg.live_in live ~routine:other_idx ~block:call_block in
  Alcotest.(check bool) "supergraph leaks t3 into other" true
    (Regset.mem Reg.t3 super_before_call);
  let liveness = Spike_opt.Liveness.compute analysis in
  let psg_before_call =
    Spike_opt.Liveness.live_in liveness ~routine:other_idx ~block:call_block
  in
  Alcotest.(check bool) "valid-paths liveness does not" false
    (Regset.mem Reg.t3 psg_before_call)

let () =
  Alcotest.run "supercfg"
    [
      ( "structure",
        [ Alcotest.test_case "arc accounting" `Quick test_arc_accounting ] );
      ( "liveness",
        [
          Alcotest.test_case "through calls" `Quick test_liveness_through_calls;
          Alcotest.test_case "context insensitivity" `Quick test_context_insensitivity;
        ] );
    ]
