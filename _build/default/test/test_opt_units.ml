(* Optimizer internals: routine surgery (deletion with label remapping,
   register renaming), summary-driven liveness, and the cost model. *)

open Spike_support
open Spike_isa
open Spike_ir
open Spike_core
open Spike_opt
open Test_helpers

(* --- Rewrite -------------------------------------------------------------- *)

let test_delete_remaps_labels () =
  let r =
    routine "f"
      [
        (None, li r1 1);
        (Some "mid", li r2 2);
        (None, li r3 3);
        (Some "tail", use r3);
        (None, ret);
      ]
  in
  (* Delete the instruction "mid" points at and the one before "tail". *)
  let r' = Rewrite.delete_instructions r [ 1; 2 ] in
  Alcotest.(check int) "three left" 3 (Routine.instruction_count r');
  (* "mid" moves to the next survivor. *)
  Alcotest.(check (option int)) "mid remapped" (Some 1) (Routine.label_index r' "mid");
  Alcotest.(check (option int)) "tail remapped" (Some 1) (Routine.label_index r' "tail");
  Alcotest.(check (option int)) "entry unchanged" (Some 0)
    (Routine.label_index r' "f$entry");
  Alcotest.(check (list string)) "no validation problems" []
    (Validate.check_routine r')

let test_delete_rejects_terminators () =
  let r = routine "f" [ (None, li r1 1); (None, ret) ] in
  Alcotest.check_raises "refuses ret"
    (Invalid_argument "Rewrite.delete_instructions: ret is a terminator") (fun () ->
      ignore (Rewrite.delete_instructions r [ 1 ]));
  Alcotest.check_raises "bounds" (Invalid_argument "Rewrite.delete_instructions: index 9")
    (fun () -> ignore (Rewrite.delete_instructions r [ 9 ]))

let test_delete_duplicates_ok () =
  let r = routine "f" [ (None, li r1 1); (None, li r2 2); (None, ret) ] in
  let r' = Rewrite.delete_instructions r [ 0; 0; 0 ] in
  Alcotest.(check int) "deleted once" 2 (Routine.instruction_count r')

let test_rename () =
  let r =
    routine "f"
      [
        (None, li Reg.s0 1);
        (None, Insn.Binop { op = Insn.Add; dst = Reg.s0; src1 = Reg.s0; src2 = Insn.Reg r1 });
        (None, store Reg.s0 ~base:Reg.sp ~offset:0);
        (None, load Reg.s0 ~base:Reg.sp ~offset:0);
        (None, ret);
      ]
  in
  let r' = Rewrite.rename_register r ~from_reg:Reg.s0 ~to_reg:Reg.t5 ~except:[ 2; 3 ] in
  let occurrences reg =
    Array.fold_left
      (fun n insn ->
        if Regset.mem reg (Regset.union (Insn.defs insn) (Insn.uses insn)) then n + 1
        else n)
      0 r'.Routine.insns
  in
  Alcotest.(check int) "s0 remains in excepted" 2 (occurrences Reg.s0);
  Alcotest.(check int) "t5 in renamed" 2 (occurrences Reg.t5)

(* --- Liveness -------------------------------------------------------------- *)

let test_liveness_across_call () =
  (* t3 live across the call in keeper, nothing extra in other. *)
  let callee = routine "callee" [ (None, li r2 1); (None, ret) ] in
  let keeper =
    routine "keeper"
      [
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
        (None, store Reg.ra ~base:Reg.sp ~offset:0);
        (None, li Reg.t3 7);
        (None, call "callee");
        (None, use Reg.t3);
        (None, load Reg.ra ~base:Reg.sp ~offset:0);
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "keeper"); (None, ret) ] in
  let p = program ~main:"main" [ main; keeper; callee ] in
  let analysis = Analysis.run p in
  let liveness = Liveness.compute analysis in
  let keeper_idx = Option.get (Program.find_index p "keeper") in
  let call_block, _ =
    List.hd (Spike_cfg.Cfg.call_sites analysis.Analysis.cfgs.(keeper_idx))
  in
  let across = Liveness.live_across_call liveness ~routine:keeper_idx ~block:call_block in
  Alcotest.(check bool) "t3 live across" true (Regset.mem Reg.t3 across);
  Alcotest.(check bool) "t4 not live across" false (Regset.mem Reg.t4 across);
  (* iter_block_backward yields per-instruction live-after sets. *)
  let saw_def = ref false in
  Liveness.iter_block_backward liveness ~routine:keeper_idx ~block:call_block
    (fun _ insn live_after ->
      match insn with
      | Insn.Li { dst; _ } when dst = Reg.t3 ->
          saw_def := true;
          Alcotest.(check bool) "t3 live after its def" true (Regset.mem Reg.t3 live_after)
      | _ -> ());
  Alcotest.(check bool) "visited the def" true !saw_def;
  Alcotest.check_raises "live_across_call on non-call"
    (Invalid_argument "Liveness.live_across_call: block does not end in a call")
    (fun () ->
      let exit_block =
        List.hd (Spike_cfg.Cfg.exit_blocks analysis.Analysis.cfgs.(keeper_idx))
      in
      ignore (Liveness.live_across_call liveness ~routine:keeper_idx ~block:exit_block))

(* --- Cost model ------------------------------------------------------------ *)

let test_cost_model () =
  Alcotest.(check int) "load" 2 (Cost_model.insn_cycles (load r1 ~base:Reg.sp ~offset:0));
  Alcotest.(check int) "store" 2
    (Cost_model.insn_cycles (store r1 ~base:Reg.sp ~offset:0));
  Alcotest.(check int) "call" 3 (Cost_model.insn_cycles (call "f"));
  Alcotest.(check int) "ret" 3 (Cost_model.insn_cycles ret);
  Alcotest.(check int) "alu" 1 (Cost_model.insn_cycles (li r1 0));
  let r = routine "f" [ (None, li r1 0); (None, load r2 ~base:Reg.sp ~offset:0); (None, ret) ] in
  Alcotest.(check int) "routine cycles weighted" (1 + (2 * 2) + (3 * 3))
    (Cost_model.routine_cycles ~counts:[| 1; 2; 3 |] r);
  let p = program ~main:"f" [ r ] in
  Alcotest.(check int) "program cycles, uniform" 6
    (Cost_model.program_cycles ~count:(fun ~routine:_ ~index:_ -> 1) p);
  Alcotest.(check bool) "improvement" true
    (Cost_model.improvement_percent ~before:200 ~after:150 = 25.0)

(* --- Dead code specifics ---------------------------------------------------- *)

let test_dead_code_keeps_stores_and_sp () =
  (* A store is never deleted even if its value looks dead; an sp def is
     never deleted either. *)
  let f =
    routine "f"
      [
        (None, li r1 1);
        (None, store r1 ~base:Reg.zero ~offset:8192);
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "f"); (None, ret) ] in
  let p = program ~main:"main" [ main; f ] in
  let optimized, _ = Dead_code.eliminate (Analysis.run p) in
  let f' = Option.get (Program.find optimized "f") in
  let count pred = Array.fold_left (fun n i -> if pred i then n + 1 else n) 0 f'.Routine.insns in
  Alcotest.(check int) "store kept" 1
    (count (function Insn.Store _ -> true | _ -> false));
  Alcotest.(check int) "sp defs kept" 2
    (count (function Insn.Lda { dst; _ } -> dst = Reg.sp | _ -> false));
  Alcotest.(check int) "feeding def kept" 1
    (count (function Insn.Li { dst; _ } -> dst = r1 | _ -> false))

let test_dead_code_cascades () =
  (* A chain of defs feeding only each other dies entirely. *)
  let f =
    routine "f"
      [
        (None, li r1 1);
        (None, Insn.Mov { dst = r2; src = r1 });
        (None, Insn.Mov { dst = r3; src = r2 });
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "f"); (None, ret) ] in
  let p = program ~main:"main" [ main; f ] in
  let optimized, removed = Dead_code.eliminate (Analysis.run p) in
  Alcotest.(check int) "all three removed" 3 removed;
  let f' = Option.get (Program.find optimized "f") in
  Alcotest.(check int) "only ret left" 1 (Routine.instruction_count f')

let () =
  Alcotest.run "opt-units"
    [
      ( "rewrite",
        [
          Alcotest.test_case "delete remaps labels" `Quick test_delete_remaps_labels;
          Alcotest.test_case "delete rejects terminators" `Quick
            test_delete_rejects_terminators;
          Alcotest.test_case "duplicate indexes" `Quick test_delete_duplicates_ok;
          Alcotest.test_case "rename with exceptions" `Quick test_rename;
        ] );
      ( "liveness",
        [ Alcotest.test_case "across calls" `Quick test_liveness_across_call ] );
      ("cost", [ Alcotest.test_case "model" `Quick test_cost_model ]);
      ( "dead-code",
        [
          Alcotest.test_case "effects preserved" `Quick test_dead_code_keeps_stores_and_sp;
          Alcotest.test_case "cascades" `Quick test_dead_code_cascades;
        ] );
    ]
