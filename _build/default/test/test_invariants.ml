(* Structural invariants of the PSG and semantic invariants of the
   summaries, checked over random generated programs. *)

open Spike_support
open Spike_isa
open Spike_ir
open Spike_core

let programs () =
  List.map
    (fun seed ->
      Spike_synth.Generator.generate
        { Spike_synth.Params.default with Spike_synth.Params.seed = 300 + seed })
    (List.init 8 Fun.id)

let for_all_programs f = List.iter (fun p -> f p (Analysis.run p)) (programs ())

(* --- PSG structure --------------------------------------------------------- *)

let test_psg_node_counts () =
  for_all_programs (fun p analysis ->
      let psg = analysis.Analysis.psg in
      let stats = Psg_stats.of_psg psg in
      let entries = ref 0 and exits = ref 0 and calls = ref 0 and switches = ref 0 in
      Program.iter
        (fun r (routine : Routine.t) ->
          entries := !entries + List.length routine.Routine.entries;
          exits := !exits + Routine.exit_count routine;
          Array.iter
            (fun insn ->
              if Insn.is_call insn then incr calls;
              match insn with Insn.Switch _ -> incr switches | _ -> ())
            routine.Routine.insns;
          ignore r)
        p;
      Alcotest.(check int) "entry nodes" !entries stats.Psg_stats.entry_nodes;
      Alcotest.(check int) "exit nodes" !exits stats.Psg_stats.exit_nodes;
      Alcotest.(check int) "call nodes" !calls stats.Psg_stats.call_nodes;
      Alcotest.(check int) "return nodes" !calls stats.Psg_stats.return_nodes;
      Alcotest.(check int) "call-return edges" !calls stats.Psg_stats.call_return_edges;
      Alcotest.(check int) "branch nodes" !switches stats.Psg_stats.branch_nodes)

let test_psg_edge_endpoints () =
  for_all_programs (fun _ analysis ->
      let psg = analysis.Analysis.psg in
      Array.iter
        (fun (e : Psg.edge) ->
          let src = psg.Psg.nodes.(e.Psg.src) and dst = psg.Psg.nodes.(e.Psg.dst) in
          (* Every edge stays within one routine. *)
          Alcotest.(check int) "same routine"
            (Psg.node_routine src.Psg.kind)
            (Psg.node_routine dst.Psg.kind);
          match e.Psg.ekind with
          | Psg.Call_return -> (
              match (src.Psg.kind, dst.Psg.kind) with
              | Psg.Call _, Psg.Return _ -> ()
              | _, _ -> Alcotest.fail "call-return edge endpoints")
          | Psg.Flow -> (
              (* Sources are entry/return/branch; sinks are
                 call/exit/unknown-exit/branch. *)
              (match src.Psg.kind with
              | Psg.Entry _ | Psg.Return _ | Psg.Branch _ -> ()
              | Psg.Exit _ | Psg.Call _ | Psg.Unknown_exit _ ->
                  Alcotest.fail "flow edge from a sink");
              match dst.Psg.kind with
              | Psg.Call _ | Psg.Exit _ | Psg.Unknown_exit _ | Psg.Branch _ -> ()
              | Psg.Entry _ | Psg.Return _ -> Alcotest.fail "flow edge into a source"))
        psg.Psg.edges)

let test_psg_adjacency_consistency () =
  for_all_programs (fun _ analysis ->
      let psg = analysis.Analysis.psg in
      Array.iteri
        (fun node out ->
          Array.iter
            (fun eid ->
              Alcotest.(check int) "out edge source" node psg.Psg.edges.(eid).Psg.src)
            out)
        psg.Psg.out_edges;
      Array.iteri
        (fun node inn ->
          Array.iter
            (fun eid ->
              Alcotest.(check int) "in edge destination" node psg.Psg.edges.(eid).Psg.dst)
            inn)
        psg.Psg.in_edges;
      (* Every edge appears in both adjacency maps. *)
      let total_out = Array.fold_left (fun n a -> n + Array.length a) 0 psg.Psg.out_edges in
      let total_in = Array.fold_left (fun n a -> n + Array.length a) 0 psg.Psg.in_edges in
      Alcotest.(check int) "out count" (Psg.edge_count psg) total_out;
      Alcotest.(check int) "in count" (Psg.edge_count psg) total_in)

let test_callers_of_consistency () =
  for_all_programs (fun _ analysis ->
      let psg = analysis.Analysis.psg in
      Array.iteri
        (fun call_index (info : Psg.call_info) ->
          match info.Psg.targets with
          | None -> ()
          | Some targets ->
              List.iter
                (fun target ->
                  match target with
                  | Psg.Target_external _ -> ()
                  | Psg.Target_routine r ->
                      if not (List.mem call_index psg.Psg.callers_of.(r)) then
                        Alcotest.failf "call %d missing from callers_of %d" call_index r)
                targets)
        psg.Psg.calls)

(* --- Summary semantics ------------------------------------------------------ *)

let test_defined_subset_killed () =
  (* MUST-DEF ⊆ MAY-DEF, always. *)
  for_all_programs (fun _ analysis ->
      Array.iter
        (fun (c : Summary.call_class) ->
          if not (Regset.subset c.Summary.defined c.Summary.killed) then
            Alcotest.failf "call-defined ⊄ call-killed: %s vs %s"
              (Regset.to_string ~name:Reg.name c.Summary.defined)
              (Regset.to_string ~name:Reg.name c.Summary.killed))
        analysis.Analysis.call_classes)

let test_no_zero_registers_in_summaries () =
  let zeros = Calling_standard.zero_regs in
  for_all_programs (fun _ analysis ->
      Array.iter
        (fun (c : Summary.call_class) ->
          Alcotest.(check bool) "used" true (Regset.disjoint c.Summary.used zeros);
          Alcotest.(check bool) "defined" true (Regset.disjoint c.Summary.defined zeros);
          Alcotest.(check bool) "killed" true (Regset.disjoint c.Summary.killed zeros))
        analysis.Analysis.call_classes;
      Array.iter
        (fun (s : Summary.t) ->
          List.iter
            (fun (_, l) -> Alcotest.(check bool) "live-entry" true (Regset.disjoint l zeros))
            s.Summary.live_at_entry)
        analysis.Analysis.summaries)

let test_filter_disjoint_from_class () =
  (* A register filtered by §3.4 never shows up in the routine's exported
     class. *)
  for_all_programs (fun _ analysis ->
      Array.iteri
        (fun r (c : Summary.call_class) ->
          let mask = analysis.Analysis.psg.Psg.entry_filter.(r) in
          Alcotest.(check bool) "used clean" true (Regset.disjoint c.Summary.used mask);
          Alcotest.(check bool) "defined clean" true
            (Regset.disjoint c.Summary.defined mask);
          Alcotest.(check bool) "killed clean" true
            (Regset.disjoint c.Summary.killed mask))
        analysis.Analysis.call_classes)

let test_flow_edge_labels_exclude_zeros () =
  let zeros = Calling_standard.zero_regs in
  for_all_programs (fun _ analysis ->
      Array.iter
        (fun (e : Psg.edge) ->
          Alcotest.(check bool) "edge may_use" true (Regset.disjoint e.Psg.e_may_use zeros);
          Alcotest.(check bool) "edge may_def" true (Regset.disjoint e.Psg.e_may_def zeros))
        analysis.Analysis.psg.Psg.edges)

let () =
  Alcotest.run "invariants"
    [
      ( "psg",
        [
          Alcotest.test_case "node counts" `Quick test_psg_node_counts;
          Alcotest.test_case "edge endpoints" `Quick test_psg_edge_endpoints;
          Alcotest.test_case "adjacency consistency" `Quick test_psg_adjacency_consistency;
          Alcotest.test_case "callers_of" `Quick test_callers_of_consistency;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "defined ⊆ killed" `Quick test_defined_subset_killed;
          Alcotest.test_case "no zero registers" `Quick test_no_zero_registers_in_summaries;
          Alcotest.test_case "filter disjoint" `Quick test_filter_disjoint_from_class;
          Alcotest.test_case "edge labels clean" `Quick test_flow_edge_labels_exclude_zeros;
        ] );
    ]
