(* The ISA layer: register naming, instruction def/use semantics, block
   structure predicates, and the calling-standard register partition. *)

open Spike_support
open Spike_isa

let regset = Alcotest.testable (Regset.pp ~name:Reg.name) Regset.equal
let rs = Regset.of_list

(* --- Registers ----------------------------------------------------------- *)

let test_reg_names () =
  List.iter
    (fun r ->
      match Reg.of_name (Reg.name r) with
      | Some r' -> Alcotest.(check int) (Reg.name r) r r'
      | None -> Alcotest.failf "name %s does not parse" (Reg.name r))
    Reg.all;
  Alcotest.(check (option int)) "raw r26" (Some Reg.ra) (Reg.of_name "r26");
  Alcotest.(check (option int)) "raw $30" (Some Reg.sp) (Reg.of_name "$30");
  Alcotest.(check (option int)) "f17" (Some (Reg.freg 17)) (Reg.of_name "f17");
  Alcotest.(check (option int)) "garbage" None (Reg.of_name "r99");
  Alcotest.(check string) "v0 name" "v0" (Reg.name Reg.v0);
  Alcotest.(check string) "zero name" "zero" (Reg.name Reg.zero);
  Alcotest.(check bool) "zero is zero" true (Reg.is_zero Reg.zero);
  Alcotest.(check bool) "fzero is zero" true (Reg.is_zero Reg.fzero);
  Alcotest.(check bool) "v0 not zero" false (Reg.is_zero Reg.v0);
  Alcotest.(check bool) "f0 is float" true (Reg.is_float Reg.f0);
  Alcotest.(check bool) "sp is integer" true (Reg.is_integer Reg.sp);
  Alcotest.check_raises "freg bounds" (Invalid_argument "Reg.freg: $f32") (fun () ->
      ignore (Reg.freg 32))

(* --- Instruction def/use -------------------------------------------------- *)

let test_defs_uses () =
  let check name insn ~defs ~uses =
    Alcotest.check regset (name ^ " defs") defs (Insn.defs insn);
    Alcotest.check regset (name ^ " uses") uses (Insn.uses insn)
  in
  check "li" (Insn.Li { dst = Reg.t0; imm = 5 }) ~defs:(rs [ Reg.t0 ]) ~uses:Regset.empty;
  check "lda"
    (Insn.Lda { dst = Reg.t0; base = Reg.sp; offset = 8 })
    ~defs:(rs [ Reg.t0 ]) ~uses:(rs [ Reg.sp ]);
  check "mov" (Insn.Mov { dst = Reg.a0; src = Reg.t3 }) ~defs:(rs [ Reg.a0 ])
    ~uses:(rs [ Reg.t3 ]);
  check "binop reg"
    (Insn.Binop { op = Insn.Add; dst = Reg.v0; src1 = Reg.t0; src2 = Insn.Reg Reg.t1 })
    ~defs:(rs [ Reg.v0 ])
    ~uses:(rs [ Reg.t0; Reg.t1 ]);
  check "binop imm"
    (Insn.Binop { op = Insn.Sub; dst = Reg.v0; src1 = Reg.t0; src2 = Insn.Imm 3 })
    ~defs:(rs [ Reg.v0 ])
    ~uses:(rs [ Reg.t0 ]);
  check "load"
    (Insn.Load { dst = Reg.t2; base = Reg.sp; offset = 0 })
    ~defs:(rs [ Reg.t2 ]) ~uses:(rs [ Reg.sp ]);
  check "store"
    (Insn.Store { src = Reg.t2; base = Reg.sp; offset = 0 })
    ~defs:Regset.empty
    ~uses:(rs [ Reg.t2; Reg.sp ]);
  check "br" (Insn.Br { target = "l" }) ~defs:Regset.empty ~uses:Regset.empty;
  check "bcond"
    (Insn.Bcond { cond = Insn.Eq; src = Reg.t4; target = "l" })
    ~defs:Regset.empty ~uses:(rs [ Reg.t4 ]);
  check "switch"
    (Insn.Switch { index = Reg.t5; table = [| "a"; "b" |] })
    ~defs:Regset.empty ~uses:(rs [ Reg.t5 ]);
  check "jmp unknown" (Insn.Jump_unknown { target = Reg.t6 }) ~defs:Regset.empty
    ~uses:(rs [ Reg.t6 ]);
  check "direct call"
    (Insn.Call { callee = Insn.Direct "f" })
    ~defs:(rs [ Reg.ra ]) ~uses:Regset.empty;
  check "indirect call"
    (Insn.Call { callee = Insn.Indirect (Reg.pv, None) })
    ~defs:(rs [ Reg.ra ])
    ~uses:(rs [ Reg.pv ]);
  check "ret" Insn.Ret ~defs:Regset.empty ~uses:(rs [ Reg.ra ]);
  check "nop" Insn.Nop ~defs:Regset.empty ~uses:Regset.empty;
  (* The hardwired zeros carry no dataflow in either direction. *)
  check "write to zero" (Insn.Li { dst = Reg.zero; imm = 1 }) ~defs:Regset.empty
    ~uses:Regset.empty;
  check "read of zero"
    (Insn.Mov { dst = Reg.t0; src = Reg.zero })
    ~defs:(rs [ Reg.t0 ]) ~uses:Regset.empty

let test_block_structure () =
  let ends msg expected insn = Alcotest.(check bool) msg expected (Insn.ends_block insn) in
  ends "br ends" true (Insn.Br { target = "l" });
  ends "call ends" true (Insn.Call { callee = Insn.Direct "f" });
  ends "ret ends" true Insn.Ret;
  ends "li continues" false (Insn.Li { dst = Reg.t0; imm = 0 });
  let ft msg expected insn = Alcotest.(check bool) msg expected (Insn.falls_through insn) in
  ft "bcond falls through" true (Insn.Bcond { cond = Insn.Eq; src = Reg.t0; target = "l" });
  ft "call falls through" true (Insn.Call { callee = Insn.Direct "f" });
  ft "br does not" false (Insn.Br { target = "l" });
  ft "ret does not" false Insn.Ret;
  ft "switch does not" false (Insn.Switch { index = Reg.t0; table = [| "a" |] });
  Alcotest.(check (list string)) "switch targets" [ "a"; "b"; "c" ]
    (Insn.branch_targets (Insn.Switch { index = Reg.t0; table = [| "a"; "b"; "c" |] }));
  Alcotest.(check (list string)) "call targets empty" []
    (Insn.branch_targets (Insn.Call { callee = Insn.Direct "f" }))

let test_mnemonic_roundtrips () =
  List.iter
    (fun op ->
      match Insn.binop_of_name (Insn.binop_name op) with
      | Some op' when op = op' -> ()
      | Some _ | None -> Alcotest.failf "binop %s roundtrip" (Insn.binop_name op))
    [ Insn.Add; Insn.Sub; Insn.Mul; Insn.And; Insn.Or; Insn.Xor; Insn.Sll; Insn.Srl;
      Insn.Cmpeq; Insn.Cmplt; Insn.Cmple ];
  List.iter
    (fun c ->
      match Insn.cond_of_name (Insn.cond_name c) with
      | Some c' when c = c' -> ()
      | Some _ | None -> Alcotest.failf "cond %s roundtrip" (Insn.cond_name c))
    [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge ]

(* --- Calling standard ------------------------------------------------------ *)

let test_calling_standard () =
  let cs = Calling_standard.callee_saved in
  let caller = Calling_standard.caller_saved in
  let zeros = Calling_standard.zero_regs in
  Alcotest.(check bool) "callee/caller disjoint" true (Regset.disjoint cs caller);
  Alcotest.(check bool) "zeros disjoint from both" true
    (Regset.disjoint zeros (Regset.union cs caller));
  Alcotest.check regset "partition covers all registers" Regset.full
    (Regset.union zeros (Regset.union cs caller));
  Alcotest.(check bool) "s0 callee-saved" true (Regset.mem Reg.s0 cs);
  Alcotest.(check bool) "sp callee-saved" true (Regset.mem Reg.sp cs);
  Alcotest.(check bool) "f2 callee-saved" true (Regset.mem (Reg.freg 2) cs);
  Alcotest.(check bool) "ra caller-saved" true (Regset.mem Reg.ra caller);
  Alcotest.(check bool) "args are caller-saved" true
    (Regset.subset Calling_standard.argument_regs caller);
  Alcotest.(check bool) "returns are caller-saved" true
    (Regset.subset Calling_standard.return_regs caller);
  Alcotest.(check bool) "unknown kills all caller-saved" true
    (Regset.equal Calling_standard.unknown_call_killed caller);
  Alcotest.(check bool) "unknown-used includes args" true
    (Regset.subset Calling_standard.argument_regs Calling_standard.unknown_call_used);
  Alcotest.(check bool) "unknown-jump-live is everything allocatable" true
    (Regset.equal Calling_standard.unknown_jump_live Calling_standard.all_allocatable)

let () =
  Alcotest.run "isa"
    [
      ("reg", [ Alcotest.test_case "names" `Quick test_reg_names ]);
      ( "insn",
        [
          Alcotest.test_case "defs/uses" `Quick test_defs_uses;
          Alcotest.test_case "block structure" `Quick test_block_structure;
          Alcotest.test_case "mnemonic roundtrips" `Quick test_mnemonic_roundtrips;
        ] );
      ( "calling-standard",
        [ Alcotest.test_case "register partition" `Quick test_calling_standard ] );
    ]
