(* The Pettis-Hansen layout and its I-cache evaluation substrate. *)

open Spike_isa
open Spike_ir
open Spike_layout
open Test_helpers

let test_offsets_alignment () =
  let f = routine "f" [ (None, li r1 1); (None, ret) ] in
  (* 2 insns *)
  let g = routine "g" [ (None, li r1 1); (None, li r2 2); (None, ret) ] in
  (* 3 insns *)
  let main = routine "main" [ (None, call "f"); (None, call "g"); (None, ret) ] in
  let p = program ~main:"main" [ main; f; g ] in
  let layout = [| 0; 1; 2 |] in
  let offsets = Icache.offsets p ~layout in
  Alcotest.(check int) "main at 0" 0 offsets.(0);
  (* main is 3 insns; with 8-insn lines, f aligns to 8, g to 16. *)
  Alcotest.(check int) "f aligned" 8 offsets.(1);
  Alcotest.(check int) "g aligned" 16 offsets.(2);
  let reordered = Icache.offsets p ~layout:[| 2; 0; 1 |] in
  Alcotest.(check int) "g first" 0 reordered.(2);
  Alcotest.(check int) "main second" 8 reordered.(0);
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Icache.offsets: layout is not a permutation") (fun () ->
      ignore (Icache.offsets p ~layout:[| 0; 0; 1 |]))

let test_cache_conflict () =
  (* Two routines that alternate calls; with a 2-line cache they conflict
     when mapped to the same line and coexist when adjacent. *)
  let tiny = { Icache.line_instructions = 4; lines = 2 } in
  let f = routine "f" [ (None, li r1 1); (None, ret) ] in
  let main =
    routine "main"
      [
        (None, li r3 3);
        (None, call "f");
        (None, call "f");
        (None, call "f");
        (None, ret);
      ]
  in
  let p = program ~main:"main" [ main; f ] in
  (* Adjacent: main in lines 0-1, f in line 2 -> set 0.  main's second
     line and f alternate?  Compute both layouts and compare miss rates:
     the point is that they differ deterministically with layout. *)
  let _, adjacent = Icache.simulate tiny ~layout:[| 0; 1 |] p in
  Alcotest.(check bool) "counts accesses" true (adjacent.Icache.accesses > 0);
  (* A cache big enough never misses after the compulsory fills. *)
  let big = { Icache.line_instructions = 4; lines = 1024 } in
  let _, cold = Icache.simulate big ~layout:[| 0; 1 |] p in
  if cold.Icache.misses > 4 then
    Alcotest.failf "expected only compulsory misses, got %d" cold.Icache.misses

let test_weights () =
  let f = routine "f" [ (None, li r1 1); (None, ret) ] in
  let g =
    routine "g"
      [
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
        (None, store Reg.ra ~base:Reg.sp ~offset:0);
        (None, call "f");
        (None, load Reg.ra ~base:Reg.sp ~offset:0);
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "g"); (None, call "g"); (None, ret) ] in
  let p = program ~main:"main" [ main; g; f ] in
  let outcome, weights = Pettis_hansen.collect_weights p in
  (match outcome with
  | Spike_interp.Machine.Halted _ -> ()
  | Spike_interp.Machine.Trapped _ -> Alcotest.fail "should halt");
  Alcotest.(check int) "main->g twice" 2
    (Pettis_hansen.edge_weight weights ~caller:0 ~callee:1);
  Alcotest.(check int) "g->f twice" 2
    (Pettis_hansen.edge_weight weights ~caller:1 ~callee:2);
  Alcotest.(check int) "no f->g" 0 (Pettis_hansen.edge_weight weights ~caller:2 ~callee:1)

let test_order_is_permutation () =
  for seed = 0 to 7 do
    let p =
      Spike_synth.Generator.generate { Spike_synth.Params.default with seed }
    in
    let _, weights = Pettis_hansen.collect_weights ~fuel:2_000_000 p in
    let order = Pettis_hansen.order p weights in
    Alcotest.(check int) "length" (Program.routine_count p) (Array.length order);
    let sorted = Array.copy order in
    Array.sort Int.compare sorted;
    Alcotest.(check (list int)) "permutation"
      (List.init (Program.routine_count p) Fun.id)
      (Array.to_list sorted);
    (* main's chain leads. *)
    let main_index = Option.get (Program.find_index p (Program.main p)) in
    let position = ref (-1) in
    Array.iteri (fun i r -> if r = main_index then position := i) order;
    if !position < 0 then Alcotest.fail "main missing from layout"
  done

let test_hot_pair_adjacent () =
  (* a and b call each other constantly; c is cold.  PH must place a and b
     next to each other. *)
  let b_r = routine "b" [ (None, li r1 1); (None, ret) ] in
  let c_r = routine "c" [ (None, li r2 2); (None, ret) ] in
  let a_r =
    routine "a"
      [
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = -16 });
        (None, store Reg.ra ~base:Reg.sp ~offset:0);
        (None, call "b");
        (None, call "b");
        (None, call "b");
        (None, call "c");
        (None, load Reg.ra ~base:Reg.sp ~offset:0);
        (None, Insn.Lda { dst = Reg.sp; base = Reg.sp; offset = 16 });
        (None, ret);
      ]
  in
  let main = routine "main" [ (None, call "a"); (None, ret) ] in
  let p = program ~main:"main" [ main; a_r; b_r; c_r ] in
  let _, weights = Pettis_hansen.collect_weights p in
  let order = Pettis_hansen.order p weights in
  let pos r =
    let name_index = Option.get (Program.find_index p r) in
    let found = ref (-1) in
    Array.iteri (fun i x -> if x = name_index then found := i) order;
    !found
  in
  Alcotest.(check int) "a and b adjacent" 1 (abs (pos "a" - pos "b"))

let test_layout_improves_conflicting_workload () =
  (* A workload sized so hot routines conflict in a small cache under some
     layout; PH should not be worse than the identity layout. *)
  let p =
    Spike_synth.Generator.generate
      {
        Spike_synth.Params.default with
        seed = 3;
        routines = 30;
        target_instructions = 2500;
        calls_per_routine = 5.0;
      }
  in
  let config = { Icache.line_instructions = 8; lines = 32 } in
  let _, weights = Pettis_hansen.collect_weights ~fuel:3_000_000 p in
  let ph = Pettis_hansen.order p weights in
  let _, ph_stats = Icache.simulate ~fuel:3_000_000 config ~layout:ph p in
  let _, id_stats =
    Icache.simulate ~fuel:3_000_000 config ~layout:(Pettis_hansen.original_order p) p
  in
  Alcotest.(check int) "same access count" id_stats.Icache.accesses
    ph_stats.Icache.accesses;
  if Icache.miss_rate ph_stats > Icache.miss_rate id_stats *. 1.05 then
    Alcotest.failf "PH layout clearly worse: %.4f vs %.4f"
      (Icache.miss_rate ph_stats) (Icache.miss_rate id_stats)

let () =
  Alcotest.run "layout"
    [
      ( "icache",
        [
          Alcotest.test_case "offsets + alignment" `Quick test_offsets_alignment;
          Alcotest.test_case "simulation" `Quick test_cache_conflict;
        ] );
      ( "pettis-hansen",
        [
          Alcotest.test_case "weights" `Quick test_weights;
          Alcotest.test_case "order is a permutation" `Quick test_order_is_permutation;
          Alcotest.test_case "hot pair adjacent" `Quick test_hot_pair_adjacent;
          Alcotest.test_case "not worse than identity" `Quick
            test_layout_improves_conflicting_workload;
        ] );
    ]
