(* Reproduction of the paper's worked examples: the Figure 2/3 summary
   sets, the Figure 4-7 PSG construction, the Figure 9 phase-1 results,
   the Figure 11 phase-2 results, and the Figure 12 branch-node edge
   reduction. *)

open Spike_support
open Spike_core
open Test_helpers

let r0123 = rs [ r0; r1; r2; r3 ]

let class_of analysis name =
  match Analysis.summary_of analysis name with
  | Some s -> s.Summary.call_class
  | None -> Alcotest.failf "no summary for %s" name

let summary_of analysis name =
  match Analysis.summary_of analysis name with
  | Some s -> s
  | None -> Alcotest.failf "no summary for %s" name

(* --- Figures 2, 3, 9: call-used / call-defined / call-killed ---------- *)

let test_figure2_call_sets () =
  let analysis = Analysis.run (figure2_program ()) in
  let p2 = class_of analysis "P2" in
  check_restricted "P2 call-used" ~over:r0123 (rs [ r1 ]) p2.Summary.used;
  check_restricted "P2 call-defined" ~over:r0123 (rs [ r2 ]) p2.Summary.defined;
  check_restricted "P2 call-killed" ~over:r0123 (rs [ r2; r3 ]) p2.Summary.killed;
  let p1 = class_of analysis "P1" in
  check_restricted "P1 call-used" ~over:r0123 Regset.empty p1.Summary.used;
  check_restricted "P1 call-defined" ~over:r0123 (rs [ r0; r1; r2 ]) p1.Summary.defined;
  check_restricted "P1 call-killed" ~over:r0123 (rs [ r0; r1; r2; r3 ]) p1.Summary.killed;
  let p3 = class_of analysis "P3" in
  check_restricted "P3 call-used" ~over:r0123 Regset.empty p3.Summary.used;
  check_restricted "P3 call-defined" ~over:r0123 (rs [ r1; r2 ]) p3.Summary.defined;
  check_restricted "P3 call-killed" ~over:r0123 (rs [ r1; r2; r3 ]) p3.Summary.killed

(* --- Figure 11: live-at-entry / live-at-exit -------------------------- *)

let test_figure2_liveness () =
  let analysis = Analysis.run (figure2_program ()) in
  let p2 = summary_of analysis "P2" in
  (match p2.Summary.live_at_entry with
  | [ (_, live) ] ->
      check_restricted "P2 live-at-entry" ~over:r0123 (rs [ r0; r1 ]) live
  | _ -> Alcotest.fail "P2 should have one entry");
  (match p2.Summary.live_at_exit with
  | [ (_, live) ] -> check_restricted "P2 live-at-exit" ~over:r0123 (rs [ r0 ]) live
  | _ -> Alcotest.fail "P2 should have one exit");
  (* R0 is live at P1's return point (used there) but not at P3's. *)
  let p1 = summary_of analysis "P1" in
  match p1.Summary.live_at_entry with
  | [ (_, live) ] -> check_restricted "P1 live-at-entry" ~over:r0123 Regset.empty live
  | _ -> Alcotest.fail "P1 should have one entry"

(* --- Figures 4-7: PSG construction on the one-call diamond ------------ *)

(* Figure 4's CFG: bb1 branches to bb2 and bb3; bb3 ends with a call whose
   return point is bb4; bb2 also flows into bb4; bb4 returns.
   Contents are chosen to pin down the three flow-summary edge labels:
   bb1 uses R1 then defines R2; bb2 defines R3; bb3 defines R1; bb4 empty. *)
let figure4_program () =
  let f = routine "f" [ (None, li r2 0); (None, ret) ] in
  let g =
    routine "g"
      [
        (None, use r1);
        (None, li r2 1);
        (None, beq r2 "bb3");
        (* bb2 *)
        (None, li r3 2);
        (None, br "bb4");
        (* bb3 *)
        (Some "bb3", li r1 4);
        (None, call "f");
        (* bb4: the call's return point and the exit *)
        (Some "bb4", ret);
      ]
  in
  let main = routine "main" [ (None, call "g"); (None, ret) ] in
  program ~main:"main" [ main; g; f ]

let find_g_psg analysis =
  let psg = analysis.Analysis.psg in
  let g_index =
    match Spike_ir.Program.find_index analysis.Analysis.program "g" with
    | Some i -> i
    | None -> Alcotest.fail "routine g missing"
  in
  (psg, g_index)

let test_figure4_psg_shape () =
  let analysis = Analysis.run (figure4_program ()) in
  let psg, g = find_g_psg analysis in
  (* Nodes of g: entry, exit, call, return — exactly four (Figure 4b). *)
  let g_nodes =
    Array.to_list psg.Psg.nodes
    |> List.filter (fun (n : Psg.node) -> Psg.node_routine n.kind = g)
  in
  Alcotest.(check int) "g has 4 PSG nodes" 4 (List.length g_nodes);
  (* Edges within g: E_A entry->exit, E_B entry->call, E_C return->exit,
     plus the call-return edge. *)
  let g_edges =
    Array.to_list psg.Psg.edges
    |> List.filter (fun (e : Psg.edge) ->
           Psg.node_routine psg.Psg.nodes.(e.src).kind = g)
  in
  Alcotest.(check int) "g has 4 PSG edges" 4 (List.length g_edges);
  let flow_edges = List.filter (fun (e : Psg.edge) -> e.ekind = Psg.Flow) g_edges in
  Alcotest.(check int) "g has 3 flow-summary edges" 3 (List.length flow_edges)

let edge_between psg ~src_kind ~dst_kind =
  let matches kind_pred node_id = kind_pred psg.Psg.nodes.(node_id).Psg.kind in
  match
    Array.to_list psg.Psg.edges
    |> List.filter (fun (e : Psg.edge) ->
           e.ekind = Psg.Flow && matches src_kind e.src && matches dst_kind e.dst)
  with
  | [ e ] -> e
  | [] -> Alcotest.fail "expected edge missing"
  | _ -> Alcotest.fail "expected edge not unique"

let test_figure7_edge_labels () =
  let analysis = Analysis.run (figure4_program ()) in
  let psg, g = find_g_psg analysis in
  let is_entry = function Psg.Entry { routine; _ } -> routine = g | _ -> false in
  let is_exit = function Psg.Exit { routine; _ } -> routine = g | _ -> false in
  let is_call = function Psg.Call { routine; _ } -> routine = g | _ -> false in
  let is_return = function Psg.Return { routine; _ } -> routine = g | _ -> false in
  (* E_A = entry -> exit over blocks {1, 2, 4}. *)
  let e_a = edge_between psg ~src_kind:is_entry ~dst_kind:is_exit in
  check_restricted "E_A may-use" ~over:r0123 (rs [ r1 ]) e_a.Psg.e_may_use;
  check_restricted "E_A may-def" ~over:r0123 (rs [ r2; r3 ]) e_a.Psg.e_may_def;
  check_restricted "E_A must-def" ~over:r0123 (rs [ r2; r3 ]) e_a.Psg.e_must_def;
  (* E_B = entry -> call over blocks {1, 3}. *)
  let e_b = edge_between psg ~src_kind:is_entry ~dst_kind:is_call in
  check_restricted "E_B may-use" ~over:r0123 (rs [ r1 ]) e_b.Psg.e_may_use;
  check_restricted "E_B may-def" ~over:r0123 (rs [ r1; r2 ]) e_b.Psg.e_may_def;
  check_restricted "E_B must-def" ~over:r0123 (rs [ r1; r2 ]) e_b.Psg.e_must_def;
  (* E_C = return -> exit over block {4} alone: empty sets. *)
  let e_c = edge_between psg ~src_kind:is_return ~dst_kind:is_exit in
  check_restricted "E_C may-use" ~over:r0123 Regset.empty e_c.Psg.e_may_use;
  check_restricted "E_C may-def" ~over:r0123 Regset.empty e_c.Psg.e_may_def;
  check_restricted "E_C must-def" ~over:r0123 Regset.empty e_c.Psg.e_must_def

(* --- Figure 12: branch nodes cut switch-induced edge blow-up ---------- *)

(* A multiway branch in a loop with a call at each target: every return
   node reaches every call node again through the dispatch. *)
let figure12_program () =
  let f = routine "f" [ (None, li r2 0); (None, ret) ] in
  let g =
    routine "g"
      [
        (Some "head", switch r1 [ "tA"; "tB"; "tC"; "out" ]);
        (Some "tA", call "f");
        (None, br "head");
        (Some "tB", call "f");
        (None, br "head");
        (Some "tC", call "f");
        (None, br "head");
        (Some "out", ret);
      ]
  in
  let main = routine "main" [ (None, call "g"); (None, ret) ] in
  program ~main:"main" [ main; g; f ]

let flow_edges_of_routine analysis name =
  let psg = analysis.Analysis.psg in
  let r =
    match Spike_ir.Program.find_index analysis.Analysis.program name with
    | Some i -> i
    | None -> Alcotest.failf "routine %s missing" name
  in
  Array.to_list psg.Psg.edges
  |> List.filter (fun (e : Psg.edge) ->
         e.ekind = Psg.Flow && Psg.node_routine psg.Psg.nodes.(e.src).kind = r)
  |> List.length

let test_figure12_branch_nodes () =
  let without = Analysis.run ~branch_nodes:false (figure12_program ()) in
  let with_bn = Analysis.run ~branch_nodes:true (figure12_program ()) in
  (* Without branch nodes: sources {entry, 3 returns} each reach sinks
     {3 calls, exit} through the dispatch: 16 flow edges.  With a branch
     node: entry->branch, 3 returns->branch, branch->{3 calls, exit}: 8. *)
  Alcotest.(check int) "without branch nodes" 16 (flow_edges_of_routine without "g");
  Alcotest.(check int) "with branch nodes" 8 (flow_edges_of_routine with_bn "g");
  (* Branch nodes must not change the dataflow solution. *)
  let c_without = class_of without "g" and c_with = class_of with_bn "g" in
  check_regset "call-used unchanged" c_without.Summary.used c_with.Summary.used;
  check_regset "call-defined unchanged" c_without.Summary.defined c_with.Summary.defined;
  check_regset "call-killed unchanged" c_without.Summary.killed c_with.Summary.killed

let () =
  Alcotest.run "paper-examples"
    [
      ( "figure2-3-9",
        [
          Alcotest.test_case "call sets" `Quick test_figure2_call_sets;
          Alcotest.test_case "liveness" `Quick test_figure2_liveness;
        ] );
      ( "figure4-7",
        [
          Alcotest.test_case "psg shape" `Quick test_figure4_psg_shape;
          Alcotest.test_case "edge labels" `Quick test_figure7_edge_labels;
        ] );
      ( "figure12",
        [ Alcotest.test_case "branch nodes" `Quick test_figure12_branch_nodes ] );
    ]
