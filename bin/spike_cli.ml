(* spike — command-line front end to the analysis and optimizer.

   Subcommands:
     spike analyze FILE        interprocedural dataflow summaries
     spike opt FILE -o OUT     optimize and write the result
     spike run FILE            execute under the interpreter
     spike gen                 generate a synthetic workload as assembly
     spike dump FILE           CFG/PSG statistics for a program *)

open Cmdliner
open Spike_support
open Spike_ir
open Spike_core

let load_program path =
  let program = Spike_asm.Parser.program_of_file path in
  match Validate.check program with
  | Ok () -> program
  | Error problems ->
      Format.eprintf "%s: ill-formed program:@." path;
      List.iter (fun p -> Format.eprintf "  %s@." p) problems;
      exit 2

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly file.")

let externals_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "externals" ] ~docv:"FILE"
        ~doc:
          "Summary file with compiler/linker-provided register summaries for \
           external routines (§3.5).")

let load_externals = function
  | None -> fun _ -> None
  | Some path -> Spike_asm.Summaries.lookup (Spike_asm.Summaries.of_file path)

let branch_nodes_arg =
  Arg.(
    value & opt bool true
    & info [ "branch-nodes" ] ~docv:"BOOL"
        ~doc:"Insert PSG branch nodes at multiway branches (§3.6).")

(* --jobs takes its own conv so that 0 or a negative count is a crisp
   cmdliner usage error instead of being silently clamped. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "expected a count of at least 1, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains for the per-routine analysis stages and for the phase 1 \
           and phase 2 interprocedural fixpoints, whose call-graph SCCs run \
           concurrently once their callees (phase 1) or callers (phase 2) \
           have converged (default: the machine's recommended domain count; \
           must be at least 1).  Results are identical for every value.")

(* --- Persistent summary store (shared by analyze/opt) -------------------- *)

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent summary store directory.  Cached per-routine artifacts \
           warm-start the analysis (results are bit-identical to a cold \
           run); the store is refreshed after the analysis.  A missing, \
           stale or corrupt store silently degrades to a cold run.")

let no_store_arg =
  Arg.(
    value & flag
    & info [ "no-store" ]
        ~doc:"Ignore $(b,--store): neither read nor write the summary store.")

(* Analysis through the store: load a warm plan, analyse, refresh the
   store.  One stderr line summarises what the store contributed. *)
let run_analysis ~store ~no_store ~branch_nodes ~externals ?jobs program =
  let store = if no_store then None else store in
  match store with
  | None -> Analysis.run ~branch_nodes ~externals ?jobs program
  | Some dir ->
      let loaded = Spike_store.Store.load ~dir ~branch_nodes ~externals program in
      let analysis =
        Analysis.run ~branch_nodes ~externals ?jobs
          ~warm:loaded.Spike_store.Store.plan ~capture:true program
      in
      Spike_store.Store.save ~dir analysis;
      Format.eprintf "store: hits=%d misses=%d invalidated=%d%s@."
        loaded.Spike_store.Store.hits loaded.Spike_store.Store.misses
        loaded.Spike_store.Store.invalidated
        (match loaded.Spike_store.Store.degraded with
        | Some _ -> " (degraded to cold)"
        | None -> "");
      analysis

(* --- Observability flags (shared by analyze/opt/run/dump) --------------- *)

type obs = {
  trace_out : (string * out_channel) option;
  metrics_out : (string * out_channel) option;
  mutable stats : bool;
}

(* Output paths are opened before the command does any work, so a bad
   path fails in milliseconds, not after a long analysis. *)
let open_out_or_die ~flag path =
  try open_out path
  with Sys_error msg ->
    Format.eprintf "spike: cannot write --%s: %s@." flag msg;
    exit 1

let obs_setup trace_out metrics_out stats =
  let obs =
    {
      trace_out = Option.map (fun p -> (p, open_out_or_die ~flag:"trace-out" p)) trace_out;
      metrics_out =
        Option.map (fun p -> (p, open_out_or_die ~flag:"metrics-out" p)) metrics_out;
      stats;
    }
  in
  if obs.trace_out <> None then Spike_obs.Trace.enable ();
  if obs.metrics_out <> None || obs.stats then Spike_obs.Metrics.enable ();
  obs

(* [force_stats] late-enables metrics for [analyze --verbose]; it must be
   called before the analysis runs. *)
let obs_force_stats obs =
  if not (obs.stats || obs.metrics_out <> None) then Spike_obs.Metrics.enable ();
  obs.stats <- true

let obs_finish obs =
  Spike_obs.Trace.disable ();
  (match obs.trace_out with
  | Some (path, oc) ->
      Spike_obs.Trace.write_chrome oc;
      close_out oc;
      Format.printf "wrote %s (load it in Perfetto or chrome://tracing)@." path
  | None -> ());
  (match obs.metrics_out with
  | Some (path, oc) ->
      Spike_obs.Metrics.write_json oc;
      close_out oc;
      Format.printf "wrote %s@." path
  | None -> ());
  if obs.stats then Format.printf "@.=== metrics@.%t@." Spike_obs.Metrics.pp;
  Spike_obs.Metrics.disable ()

let obs_term =
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the command (one lane per \
             analysis domain); load it in Perfetto or chrome://tracing.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the metrics registry snapshot as JSON.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print the metrics table when the command finishes.")
  in
  Term.(const obs_setup $ trace_out $ metrics_out $ stats)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let run file branch_nodes verbose externals jobs store no_store summaries_out
      obs =
    (* --verbose is the ergonomic spelling of --stats: one detailed view,
       the metrics table, instead of a separate ad-hoc dump. *)
    if verbose then obs_force_stats obs;
    let summaries_oc =
      Option.map
        (fun p -> (p, open_out_or_die ~flag:"summaries-out" p))
        summaries_out
    in
    let program = load_program file in
    let analysis =
      run_analysis ~store ~no_store ~branch_nodes
        ~externals:(load_externals externals) ?jobs program
    in
    Format.printf "%a@." Analysis.pp_times analysis;
    Format.printf "%a@." Psg_stats.pp (Psg_stats.of_psg analysis.Analysis.psg);
    Array.iter
      (fun summary -> Format.printf "@.%a@." Summary.pp summary)
      analysis.Analysis.summaries;
    (match summaries_oc with
    | Some (path, oc) ->
        let ppf = Format.formatter_of_out_channel oc in
        Array.iter
          (fun summary -> Format.fprintf ppf "%a@." Summary.pp summary)
          analysis.Analysis.summaries;
        Format.pp_print_flush ppf ();
        close_out oc;
        Format.printf "wrote %s@." path
    | None -> ());
    obs_finish obs
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Also print the metrics table (same as $(b,--stats)).")
  in
  let summaries_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "summaries-out" ] ~docv:"FILE"
          ~doc:
            "Also write the routine summaries (and nothing else) to \
             $(docv) — a deterministic dump, diffable across runs.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Compute interprocedural register summaries")
    Term.(
      const run $ file_arg $ branch_nodes_arg $ verbose $ externals_arg $ jobs_arg
      $ store_arg $ no_store_arg $ summaries_out $ obs_term)

(* --- opt --------------------------------------------------------------- *)

let opt_cmd =
  let run file output externals jobs store no_store obs =
    let program = load_program file in
    let optimized, report =
      Spike_obs.Trace.with_span "opt.run" (fun () ->
          Spike_opt.Opt.run
            (run_analysis ~store ~no_store ~branch_nodes:true
               ~externals:(load_externals externals) ?jobs program))
    in
    Format.printf "%a@." Spike_opt.Opt.pp_report report;
    (match output with
    | Some path ->
        Spike_asm.Printer.to_file path optimized;
        Format.printf "wrote %s@." path
    | None -> Format.printf "@.%a@." Spike_asm.Printer.pp_program optimized);
    obs_finish obs
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Write the optimized program here.")
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Apply the summary-driven optimizations (Figure 1)")
    Term.(
      const run $ file_arg $ output $ externals_arg $ jobs_arg $ store_arg
      $ no_store_arg $ obs_term)

(* --- run --------------------------------------------------------------- *)

let run_cmd =
  let run file fuel check jobs obs =
    let program = load_program file in
    if check then begin
      let analysis = Analysis.run ?jobs program in
      let outcome, violations =
        Spike_obs.Trace.with_span "oracle.check" (fun () ->
            Spike_interp.Oracle.check ~fuel analysis)
      in
      List.iter
        (fun v -> Format.printf "violation: %a@." Spike_interp.Oracle.pp_violation v)
        violations;
      (match outcome with
      | Spike_interp.Machine.Halted v -> Format.printf "halted, v0 = %d@." v
      | Spike_interp.Machine.Trapped _ -> Format.printf "trapped@.");
      obs_finish obs;
      if violations <> [] then exit 1
    end
    else begin
      let outcome =
        Spike_obs.Trace.with_span "interp.execute" (fun () ->
            Spike_interp.Machine.execute ~fuel program)
      in
      obs_finish obs;
      match outcome with
      | Spike_interp.Machine.Halted v -> Format.printf "halted, v0 = %d@." v
      | Spike_interp.Machine.Trapped _ ->
          Format.printf "trapped@.";
          exit 1
    end
  in
  let fuel =
    Arg.(
      value & opt int 10_000_000
      & info [ "fuel" ] ~docv:"N" ~doc:"Instruction budget (default 10M).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Run the dynamic soundness oracle against the analysis while executing.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program under the interpreter")
    Term.(const run $ file_arg $ fuel $ check $ jobs_arg $ obs_term)

(* --- gen --------------------------------------------------------------- *)

let gen_cmd =
  let run seed routines instructions benchmark scale output =
    let params =
      match benchmark with
      | Some name -> (
          match Spike_synth.Calibrate.find name with
          | Some row -> Spike_synth.Calibrate.params_of ~scale row
          | None ->
              Format.eprintf "unknown benchmark %s (see bench/main.exe --table 1)@." name;
              exit 2)
      | None ->
          {
            Spike_synth.Params.default with
            Spike_synth.Params.seed;
            routines;
            target_instructions = instructions;
          }
    in
    let program = Spike_synth.Generator.generate params in
    match output with
    | Some path ->
        Spike_asm.Printer.to_file path program;
        Format.printf "wrote %s (%d routines, %d instructions)@." path
          (Program.routine_count program)
          (Program.instruction_count program)
    | None -> Format.printf "%a@?" Spike_asm.Printer.pp_program program
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let routines =
    Arg.(value & opt int 12 & info [ "routines" ] ~docv:"N" ~doc:"Routine count.")
  in
  let instructions =
    Arg.(
      value & opt int 600
      & info [ "instructions" ] ~docv:"N" ~doc:"Approximate program size.")
  in
  let benchmark =
    Arg.(
      value
      & opt (some string) None
      & info [ "benchmark" ] ~docv:"NAME"
          ~doc:"Use a paper-calibrated shape (e.g. gcc, acad).")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "bench-scale" ] ~docv:"F" ~doc:"Benchmark scale.")
  in
  let output =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic workload as assembly")
    Term.(const run $ seed $ routines $ instructions $ benchmark $ scale $ output)

(* --- layout ------------------------------------------------------------ *)

let layout_cmd =
  let run file lines =
    let program = load_program file in
    let config = { Spike_layout.Icache.line_instructions = 8; lines } in
    let outcome, weights = Spike_layout.Pettis_hansen.collect_weights program in
    (match outcome with
    | Spike_interp.Machine.Halted _ -> ()
    | Spike_interp.Machine.Trapped _ ->
        Format.eprintf "warning: profiling run trapped; weights cover the prefix@.");
    let identity = Spike_layout.Pettis_hansen.original_order program in
    let ph = Spike_layout.Pettis_hansen.order program weights in
    let rate layout =
      let _, stats = Spike_layout.Icache.simulate config ~layout program in
      100.0 *. Spike_layout.Icache.miss_rate stats
    in
    Format.printf "I-cache: %d lines x 8 instructions (direct-mapped)@." lines;
    Format.printf "miss rate, original order:      %.3f%%@." (rate identity);
    Format.printf "miss rate, Pettis-Hansen order: %.3f%%@." (rate ph);
    Format.printf "@.suggested order:@.";
    Array.iter
      (fun r -> Format.printf "  %s@." (Program.get program r).Routine.name)
      ph
  in
  let lines =
    Arg.(
      value & opt int 256
      & info [ "lines" ] ~docv:"N" ~doc:"I-cache lines (8 instructions each).")
  in
  Cmd.v
    (Cmd.info "layout"
       ~doc:"Profile-guided routine ordering (Pettis-Hansen) with I-cache evaluation")
    Term.(const run $ file_arg $ lines)

(* --- dump -------------------------------------------------------------- *)

let dump_cmd =
  let run file branch_nodes jobs obs =
    let program = load_program file in
    let analysis = Analysis.run ~branch_nodes ?jobs program in
    let blocks =
      Array.fold_left
        (fun n cfg -> n + Spike_cfg.Cfg.block_count cfg)
        0 analysis.Analysis.cfgs
    in
    let super = Spike_supercfg.Supercfg.build program analysis.Analysis.cfgs in
    Format.printf "routines:      %d@." (Program.routine_count program);
    Format.printf "instructions:  %d@." (Program.instruction_count program);
    Format.printf "basic blocks:  %d@." blocks;
    Format.printf "CFG arcs:      %d (incl. %d call, %d return)@."
      (Spike_supercfg.Supercfg.arc_count super)
      (Spike_supercfg.Supercfg.call_arc_count super)
      (Spike_supercfg.Supercfg.return_arc_count super);
    Format.printf "%a@." Psg_stats.pp (Psg_stats.of_psg analysis.Analysis.psg);
    Array.iteri
      (fun r cfg ->
        Format.printf "@.%a" Spike_cfg.Cfg.pp cfg;
        let filter = analysis.Analysis.psg.Psg.entry_filter.(r) in
        if not (Regset.is_empty filter) then
          Format.printf "  saved+restored: %a@."
            (Regset.pp ~name:Spike_isa.Reg.name)
            filter)
      analysis.Analysis.cfgs;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Dump CFGs and graph statistics")
    Term.(const run $ file_arg $ branch_nodes_arg $ jobs_arg $ obs_term)

let () =
  let doc = "post-link-time interprocedural register dataflow (PLDI'97 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "spike" ~doc) [ analyze_cmd; opt_cmd; run_cmd; gen_cmd; dump_cmd; layout_cmd ]))
