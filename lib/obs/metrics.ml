type counter = int
type gauge = int
type kind = K_counter | K_gauge

(* The registry: name -> slot index, plus reverse tables.  Guarded by a
   mutex, but only touched by [counter]/[gauge] (module-initialization
   time) and by snapshots — never by increments. *)
let registry_mutex = Mutex.create ()
let index : (string, int) Hashtbl.t = Hashtbl.create 64
let names = ref (Array.make 0 "")
let kinds = ref (Array.make 0 K_counter)
let count = ref 0

(* Gauges are global last-write-wins cells; counters live in per-domain
   cell arrays registered here on each domain's first increment. *)
let gauges = ref (Array.make 0 0.0)

type cells = { mutable a : int array }

let all_cells : cells list ref = ref []

let cells_key : cells Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = { a = Array.make (max 16 !count) 0 } in
      Mutex.lock registry_mutex;
      all_cells := c :: !all_cells;
      Mutex.unlock registry_mutex;
      c)

let register name kind =
  Mutex.lock registry_mutex;
  let idx =
    match Hashtbl.find_opt index name with
    | Some i ->
        if !kinds.(i) <> kind then begin
          Mutex.unlock registry_mutex;
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered with another kind" name)
        end;
        i
    | None ->
        let i = !count in
        if i = Array.length !names then begin
          let cap = max 16 (2 * i) in
          let grow a fill =
            let a' = Array.make cap fill in
            Array.blit a 0 a' 0 i;
            a'
          in
          names := grow !names "";
          kinds := grow !kinds K_counter;
          gauges := grow !gauges 0.0
        end;
        !names.(i) <- name;
        !kinds.(i) <- kind;
        Hashtbl.add index name i;
        incr count;
        i
  in
  Mutex.unlock registry_mutex;
  idx

let counter name = register name K_counter
let gauge name = register name K_gauge
let on = Atomic.make false
let enabled () = Atomic.get on

let ensure c idx =
  let n = Array.length c.a in
  if idx >= n then begin
    let a' = Array.make (max (idx + 1) (2 * n)) 0 in
    Array.blit c.a 0 a' 0 n;
    c.a <- a'
  end

let add c n =
  if Atomic.get on then begin
    let cl = Domain.DLS.get cells_key in
    ensure cl c;
    cl.a.(c) <- cl.a.(c) + n
  end

let incr c = add c 1
let set_gauge g v = if Atomic.get on then !gauges.(g) <- v

let reset () =
  Mutex.lock registry_mutex;
  List.iter (fun c -> Array.fill c.a 0 (Array.length c.a) 0) !all_cells;
  Array.fill !gauges 0 (Array.length !gauges) 0.0;
  Mutex.unlock registry_mutex

let enable () =
  ignore (Domain.DLS.get cells_key);
  reset ();
  Atomic.set on true

let disable () = Atomic.set on false

type value = Count of int | Value of float

let snapshot () =
  Mutex.lock registry_mutex;
  let n = !count in
  let names = Array.sub !names 0 n in
  let kinds = Array.sub !kinds 0 n in
  let gauges = Array.sub !gauges 0 n in
  let cells = !all_cells in
  Mutex.unlock registry_mutex;
  let total idx =
    List.fold_left
      (fun acc c -> if idx < Array.length c.a then acc + c.a.(idx) else acc)
      0 cells
  in
  List.init n (fun i ->
      ( names.(i),
        match kinds.(i) with
        | K_counter -> Count (total i)
        | K_gauge -> Value gauges.(i) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name = List.assoc_opt name snap

let pp ppf =
  let snap = snapshot () in
  let width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 0 snap
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf ppf "@ ";
      match v with
      | Count n -> Format.fprintf ppf "%-*s %12d" width name n
      | Value f -> Format.fprintf ppf "%-*s %14.1f" width name f)
    snap;
  Format.fprintf ppf "@]"

let write_json oc =
  let snap = snapshot () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"spike-metrics/1\",\n  \"metrics\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    \"";
      (* registered names are plain identifiers/stage names; escape the
         two characters that could break the quoting anyway *)
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | c -> Buffer.add_char buf c)
        name;
      Buffer.add_string buf "\": ";
      match v with
      | Count n -> Buffer.add_string buf (string_of_int n)
      | Value f -> Buffer.add_string buf (Printf.sprintf "%.1f" f))
    snap;
  Buffer.add_string buf "\n  }\n}\n";
  output_string oc (Buffer.contents buf)
