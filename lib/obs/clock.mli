(** Monotonic time source shared by every layer of the observability
    stack.

    [Spike_support.Timer], {!Trace} spans and the bench harness all read
    this clock, so durations from different subsystems are directly
    comparable and immune to NTP wall-clock adjustments (the previous
    [Unix.gettimeofday]-based source was only "monotonic enough"). *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed origin ([CLOCK_MONOTONIC]).
    Allocation-free in native code; only deltas are meaningful. *)

val now : unit -> float
(** {!now_ns} in seconds. *)
