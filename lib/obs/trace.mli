(** Structured span tracing with per-domain lock-free buffers.

    A span is a named interval of time on one domain.  Each domain owns a
    private, append-only buffer (domain-local storage), so recording a
    span under a {!Spike_support.Pool} costs no synchronization — the
    only lock is taken once per domain, to register its buffer.  Buffers
    are merged when the trace is read out.

    Tracing is off by default; a disabled {!with_span} is a single atomic
    load and a branch, so instrumentation can stay in hot paths
    permanently.  {!enable} and {!disable} must be called while no traced
    parallel operation is in flight (between pool jobs, not during). *)

type event = {
  name : string;
  lane : int;  (** stable per-domain lane id, in domain-registration order *)
  ts_ns : int64;  (** span start, relative to the {!enable} call *)
  dur_ns : int64;
}

val enable : unit -> unit
(** Clear all buffers, restart the epoch, and start recording. *)

val disable : unit -> unit
val enabled : unit -> bool

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; when tracing is enabled the interval
    is recorded on the calling domain's lane (also when [f] raises).
    [name] should be a static string — it is stored by reference. *)

val events : unit -> event list
(** All recorded events, merged across domains, ordered by lane then
    start time.  Call only while no traced operation is in flight. *)

val lane_seconds : name:string -> unit -> (int * float * int) list
(** [(lane, busy_seconds, span_count)] per lane, summed over events named
    [name] — e.g. [~name:"pool.chunk"] gives the per-domain busy time of
    the parallel front-end.  Sorted by lane. *)

val chrome_json : unit -> string
(** The trace as Chrome trace-event JSON ([chrome://tracing] and Perfetto
    both load it): one complete ("X") event per span, microsecond
    timestamps, [pid] 1, one [tid] lane per domain, plus [thread_name]
    metadata naming each lane. *)

val write_chrome : out_channel -> unit
(** {!chrome_json} to a channel. *)
