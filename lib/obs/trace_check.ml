type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

(* --- A minimal recursive-descent JSON parser ---------------------------- *)

type state = { s : string; mutable pos : int }

let error st msg = raise (Bad (Printf.sprintf "at byte %d: %s" st.pos msg))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
      st.pos <- st.pos + 1;
      c
  | None -> error st "unexpected end of input"

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip_ws st
  | _ -> ()

let expect st c =
  let got = next st in
  if got <> c then error st (Printf.sprintf "expected %c, got %c" c got)

let literal st word value =
  String.iter (fun c -> expect st c) word;
  value

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        match next st with
        | '"' -> Buffer.add_char buf '"'; loop ()
        | '\\' -> Buffer.add_char buf '\\'; loop ()
        | '/' -> Buffer.add_char buf '/'; loop ()
        | 'b' -> Buffer.add_char buf '\b'; loop ()
        | 'f' -> Buffer.add_char buf '\012'; loop ()
        | 'n' -> Buffer.add_char buf '\n'; loop ()
        | 'r' -> Buffer.add_char buf '\r'; loop ()
        | 't' -> Buffer.add_char buf '\t'; loop ()
        | 'u' ->
            let hex = String.init 4 (fun _ -> next st) in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> error st "bad \\u escape"
            | Some code ->
                (* Good enough for validation: keep the BMP code point as
                   a byte when it fits, else a placeholder. *)
                Buffer.add_char buf
                  (if code < 0x80 then Char.chr code else '?'));
            loop ()
        | c -> error st (Printf.sprintf "bad escape \\%c" c))
    | c -> Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> f
  | None -> error st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (ignore (next st); Obj [])
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match next st with
          | ',' -> members ()
          | '}' -> ()
          | c -> error st (Printf.sprintf "expected , or } in object, got %c" c)
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (ignore (next st); Arr [])
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match next st with
          | ',' -> elements ()
          | ']' -> ()
          | c -> error st (Printf.sprintf "expected , or ] in array, got %c" c)
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage after document"
    else Ok v
  with Bad msg -> Error msg

(* --- Trace validation ---------------------------------------------------- *)

type summary = { events : int; lanes : int; names : string list }

let field obj name =
  match obj with
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let require_num ev name =
  match field ev name with
  | Some (Num f) -> f
  | _ -> raise (Bad (Printf.sprintf "event missing numeric %S" name))

let require_str ev name =
  match field ev name with
  | Some (Str s) -> s
  | _ -> raise (Bad (Printf.sprintf "event missing string %S" name))

let validate_trace s =
  match parse s with
  | Error e -> Error ("trace is not valid JSON: " ^ e)
  | Ok doc -> (
      try
        let events =
          match field doc "traceEvents" with
          | Some (Arr evs) -> evs
          | _ -> raise (Bad "top-level object has no traceEvents array")
        in
        (* lane -> reverse-ordered spans (ts, dur); lane -> begin stack *)
        let spans = Hashtbl.create 8 in
        let begins = Hashtbl.create 8 in
        let span_names = Hashtbl.create 8 in
        List.iter
          (fun ev ->
            let name = require_str ev "name" in
            let ph = require_str ev "ph" in
            ignore (require_num ev "pid");
            let tid = int_of_float (require_num ev "tid") in
            match ph with
            | "M" -> ()
            | "X" ->
                let ts = require_num ev "ts" in
                let dur = require_num ev "dur" in
                if dur < 0.0 then raise (Bad (name ^ ": negative dur"));
                Hashtbl.replace span_names name ();
                Hashtbl.replace spans tid
                  ((ts, dur)
                  :: (Option.value ~default:[] (Hashtbl.find_opt spans tid)))
            | "B" ->
                Hashtbl.replace begins tid
                  (name :: Option.value ~default:[] (Hashtbl.find_opt begins tid))
            | "E" -> (
                match Hashtbl.find_opt begins tid with
                | Some (_ :: rest) -> Hashtbl.replace begins tid rest
                | Some [] | None ->
                    raise (Bad (name ^ ": E event without matching B")))
            | ph -> raise (Bad (Printf.sprintf "%s: unsupported phase %S" name ph)))
          events;
        Hashtbl.iter
          (fun tid stack ->
            if stack <> [] then
              raise
                (Bad (Printf.sprintf "lane %d: %d B events without matching E"
                        tid (List.length stack))))
          begins;
        (* X spans per lane must be properly nested: sorted by start (ties:
           longest first), each span either nests inside the enclosing one
           or starts at/after its end.  Partial overlap is malformed. *)
        let nested = ref 0 in
        Hashtbl.iter
          (fun tid spans ->
            let spans =
              List.sort
                (fun (ts1, d1) (ts2, d2) ->
                  match Float.compare ts1 ts2 with
                  | 0 -> Float.compare d2 d1
                  | c -> c)
                spans
            in
            let stack = ref [] in
            List.iter
              (fun (ts, dur) ->
                let fin = ts +. dur in
                while
                  match !stack with
                  | (_, top_end) :: rest when ts >= top_end ->
                      stack := rest;
                      true
                  | _ -> false
                do
                  ()
                done;
                (match !stack with
                | (top_ts, top_end) :: _ ->
                    if ts < top_ts || fin > top_end then
                      raise
                        (Bad
                           (Printf.sprintf
                              "lane %d: span [%f, %f] partially overlaps [%f, %f]"
                              tid ts fin top_ts top_end))
                | [] -> ());
                stack := (ts, fin) :: !stack;
                incr nested)
              spans)
          spans;
        let names =
          List.sort String.compare
            (Hashtbl.fold (fun n () acc -> n :: acc) span_names [])
        in
        Ok { events = !nested; lanes = Hashtbl.length spans; names }
      with Bad msg -> Error msg)

(* --- Metrics validation -------------------------------------------------- *)

let validate_metrics s =
  match parse s with
  | Error e -> Error ("metrics file is not valid JSON: " ^ e)
  | Ok doc -> (
      match field doc "schema" with
      | Some (Str "spike-metrics/1") -> (
          match field doc "metrics" with
          | Some (Obj fields) -> (
              let rec collect acc = function
                | [] -> Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) acc)
                | (name, Num f) :: rest -> collect ((name, f) :: acc) rest
                | (name, _) :: _ -> Error (name ^ ": metric value is not a number")
              in
              collect [] fields)
          | _ -> Error "no metrics object")
      | _ -> Error "schema is not spike-metrics/1")
