(** Validation of the exported artifacts — used by the test suite and by
    the [tools/check_trace] CI smoke checker.

    Ships its own minimal JSON parser so the validator (and the CI job
    that runs it) needs no dependency beyond this library. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Parse a complete JSON document ([Error] carries position + reason). *)

type summary = {
  events : int;  (** complete ("X") span events *)
  lanes : int;  (** distinct [tid]s carrying spans *)
  names : string list;  (** distinct span names, sorted *)
}

val validate_trace : string -> (summary, string) result
(** Check that [s] is a Chrome trace-event document: a [traceEvents]
    array whose events carry [name]/[ph]/[pid]/[tid] (+ [ts]/[dur] for
    spans); every "B" has a matching "E" per lane; "X" spans on a lane
    are properly nested (no partial overlap). *)

val validate_metrics : string -> ((string * float) list, string) result
(** Check that [s] is a [spike-metrics/1] document and return its
    metrics, sorted by name. *)
