(** A process-wide registry of named counters and gauges.

    Counters are monotone integer totals (worklist pushes, fixpoint
    iterations, dataflow sweeps); gauges are last-written floats (heap
    samples).  Counter increments go to per-domain cells (domain-local
    storage) that are summed at {!snapshot} time, so counting from inside
    a {!Spike_support.Pool} job is race-free, O(1) and contention-free —
    totals are identical whatever the parallelism degree.

    Collection is off by default; a disabled {!incr}/{!add}/{!set_gauge}
    is an atomic load and a branch.  Handles should be created once, at
    module initialization — creation takes a lock, increments do not. *)

type counter
type gauge

val counter : string -> counter
(** Find-or-register the counter [name].  Idempotent. *)

val gauge : string -> gauge
(** Find-or-register the gauge [name].  Idempotent.
    @raise Invalid_argument if [name] is already registered as a counter
    (and vice versa for {!counter}). *)

val enable : unit -> unit
(** Zero every counter and gauge and start collecting. *)

val disable : unit -> unit
val enabled : unit -> bool

val incr : counter -> unit
val add : counter -> int -> unit
val set_gauge : gauge -> float -> unit

type value = Count of int | Value of float

val snapshot : unit -> (string * value) list
(** Merged totals (counters summed across domains), sorted by name.
    Call only while no counting parallel operation is in flight. *)

val find : (string * value) list -> string -> value option
(** Lookup helper for snapshots. *)

val pp : Format.formatter -> unit
(** The human [--stats] table: one aligned [name value] row per metric,
    sorted by name. *)

val write_json : out_channel -> unit
(** Machine-readable snapshot:
    [{"schema":"spike-metrics/1","metrics":{name: number, ...}}] with
    counters as integers and gauges as floats. *)
