type event = { name : string; lane : int; ts_ns : int64; dur_ns : int64 }

(* Per-domain buffer in structure-of-arrays form: pushing a span writes
   three slots and bumps a length, with no per-event record allocation. *)
type buf = {
  lane : int;
  mutable names : string array;
  mutable starts : int64 array;
  mutable durs : int64 array;
  mutable len : int;
}

let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()
let next_lane = ref 0
let on = Atomic.make false
let epoch = Atomic.make 0L

let new_buf () =
  Mutex.lock registry_mutex;
  let lane = !next_lane in
  incr next_lane;
  let b =
    {
      lane;
      names = Array.make 256 "";
      starts = Array.make 256 0L;
      durs = Array.make 256 0L;
      len = 0;
    }
  in
  registry := b :: !registry;
  Mutex.unlock registry_mutex;
  b

let key : buf Domain.DLS.key = Domain.DLS.new_key new_buf
let buf () = Domain.DLS.get key

let push b name start dur =
  let cap = Array.length b.names in
  if b.len = cap then begin
    let grow a fill =
      let a' = Array.make (2 * cap) fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    b.names <- grow b.names "";
    b.starts <- grow b.starts 0L;
    b.durs <- grow b.durs 0L
  end;
  b.names.(b.len) <- name;
  b.starts.(b.len) <- start;
  b.durs.(b.len) <- dur;
  b.len <- b.len + 1

let enabled () = Atomic.get on

let enable () =
  (* Register the calling domain's buffer before anything else so the
     enabling domain (the CLI / bench main domain) claims the first free
     lane of the process. *)
  ignore (buf ());
  Mutex.lock registry_mutex;
  List.iter (fun b -> b.len <- 0) !registry;
  Mutex.unlock registry_mutex;
  Atomic.set epoch (Clock.now_ns ());
  Atomic.set on true

let disable () = Atomic.set on false

let with_span name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        push (buf ()) name (Int64.sub t0 (Atomic.get epoch)) (Int64.sub t1 t0))
      f
  end

let events () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  let evs =
    List.concat_map
      (fun b ->
        List.init b.len (fun i ->
            {
              name = b.names.(i);
              lane = b.lane;
              ts_ns = b.starts.(i);
              dur_ns = b.durs.(i);
            }))
      bufs
  in
  List.sort
    (fun (a : event) (b : event) ->
      match Int.compare a.lane b.lane with
      | 0 -> Int64.compare a.ts_ns b.ts_ns
      | c -> c)
    evs

let lane_seconds ~name () =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (e : event) ->
      if String.equal e.name name then begin
        let secs, count =
          match Hashtbl.find_opt totals e.lane with
          | Some (s, c) -> (s, c)
          | None -> (0.0, 0)
        in
        Hashtbl.replace totals e.lane
          (secs +. (Int64.to_float e.dur_ns *. 1e-9), count + 1)
      end)
    (events ());
  Hashtbl.fold (fun lane (s, c) acc -> (lane, s, c) :: acc) totals []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

(* --- Chrome trace-event export ------------------------------------------ *)

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let us ns = Int64.to_float ns /. 1e3

let chrome_json () =
  let evs = events () in
  let lanes =
    List.sort_uniq Int.compare (List.map (fun (e : event) -> e.lane) evs)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let sep = ref "" in
  let item fmt =
    Buffer.add_string buf !sep;
    sep := ",";
    Printf.bprintf buf fmt
  in
  List.iter
    (fun lane ->
      item
        "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
        lane
        (if lane = 0 then "main" else Printf.sprintf "domain-%d" lane))
    lanes;
  List.iter
    (fun (e : event) ->
      Buffer.add_string buf !sep;
      sep := ",";
      Buffer.add_string buf "\n{\"name\":\"";
      escape_json buf e.name;
      Printf.bprintf buf
        "\",\"cat\":\"spike\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
        e.lane (us e.ts_ns) (us e.dur_ns))
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome oc = output_string oc (chrome_json ())
