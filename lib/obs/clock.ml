external now_ns : unit -> (int64[@unboxed])
  = "spike_monotonic_ns_boxed" "spike_monotonic_ns_unboxed"
[@@noalloc]

let now () = Int64.to_float (now_ns ()) *. 1e-9
