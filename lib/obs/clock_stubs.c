/* Monotonic clock for span timestamps and stage timing.
 *
 * CLOCK_MONOTONIC is immune to NTP step adjustments, unlike
 * gettimeofday(), so deltas between two reads are always meaningful.
 * The unboxed native entry point neither allocates nor takes the
 * runtime lock, so a span begin/end costs two plain C calls. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>
#include <sys/time.h>

static int64_t spike_clock_ns(void)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (int64_t) ts.tv_sec * 1000000000 + (int64_t) ts.tv_nsec;
#endif
  /* Fallback for platforms without a monotonic clock: wall time. */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (int64_t) tv.tv_sec * 1000000000 + (int64_t) tv.tv_usec * 1000;
  }
}

CAMLprim int64_t spike_monotonic_ns_unboxed(value unit)
{
  (void) unit;
  return spike_clock_ns();
}

CAMLprim value spike_monotonic_ns_boxed(value unit)
{
  (void) unit;
  return caml_copy_int64(spike_clock_ns());
}
