open Spike_support
open Spike_isa
open Spike_ir

type node_kind =
  | Entry of { routine : int; label : string }
  | Exit of { routine : int; block : int }
  | Call of { routine : int; block : int }
  | Return of { routine : int; call_block : int; block : int }
  | Branch of { routine : int; block : int }
  | Unknown_exit of { routine : int; block : int }

type node = {
  id : int;
  kind : node_kind;
  mutable may_use : Regset.t;
  mutable may_def : Regset.t;
  mutable must_def : Regset.t;
}

type edge_kind = Flow | Call_return

type edge = {
  edge_id : int;
  src : int;
  dst : int;
  ekind : edge_kind;
  mutable e_may_use : Regset.t;
  mutable e_may_def : Regset.t;
  mutable e_must_def : Regset.t;
}

type external_class = {
  x_used : Regset.t;
  x_defined : Regset.t;
  x_killed : Regset.t;
}

type call_target = Target_routine of int | Target_external of external_class

type call_info = {
  call_node : int;
  return_node : int;
  cr_edge : int;
  callee : Insn.callee;
  targets : call_target list option;
  call_def : Regset.t;
  call_use : Regset.t;
}

type t = {
  program : Program.t;
  nodes : node array;
  edges : edge array;
  out_edges : int array array;
  in_edges : int array array;
  calls : call_info array;
  callers_of : int list array;
  entry_nodes : int list array;
  exit_nodes : int list array;
  unknown_exit_nodes : int list array;
  entry_filter : Regset.t array;
}

let node_count t = Array.length t.nodes
let edge_count t = Array.length t.edges

let flow_edge_count t =
  Array.fold_left
    (fun n e -> match e.ekind with Flow -> n + 1 | Call_return -> n)
    0 t.edges

let primary_entry_node t r =
  match t.entry_nodes.(r) with
  | n :: _ -> n
  | [] -> invalid_arg "Psg.primary_entry_node: routine has no entry node"

let node_routine = function
  | Entry { routine; _ }
  | Exit { routine; _ }
  | Call { routine; _ }
  | Return { routine; _ }
  | Branch { routine; _ }
  | Unknown_exit { routine; _ } ->
      routine


let call_graph t =
  let n = Program.routine_count t.program in
  let succs = Array.make n [] in
  Array.iter
    (fun (info : call_info) ->
      let caller = node_routine t.nodes.(info.call_node).kind in
      match info.targets with
      | Some targets ->
          List.iter
            (fun target ->
              match target with
              | Target_routine r -> succs.(caller) <- r :: succs.(caller)
              | Target_external _ -> ())
            targets
      | None -> ())
    t.calls;
  (* One edge per distinct (caller, callee) pair: a routine with many call
     sites to the same callee would otherwise multiply every traversal's
     edge work by its site count. *)
  Array.map (fun callees -> Array.of_list (List.sort_uniq Int.compare callees)) succs

let call_scc t = Scc.compute ~succs:(call_graph t)
let callee_first_order t = Scc.topological (call_scc t)

let kind_string t kind =
  let rname r = (Program.get t.program r).Routine.name in
  match kind with
  | Entry { routine; label } -> Printf.sprintf "entry(%s:%s)" (rname routine) label
  | Exit { routine; block } -> Printf.sprintf "exit(%s:B%d)" (rname routine) block
  | Call { routine; block } -> Printf.sprintf "call(%s:B%d)" (rname routine) block
  | Return { routine; call_block; _ } ->
      Printf.sprintf "return(%s:B%d)" (rname routine) call_block
  | Branch { routine; block } -> Printf.sprintf "branch(%s:B%d)" (rname routine) block
  | Unknown_exit { routine; block } ->
      Printf.sprintf "jmp?(%s:B%d)" (rname routine) block

let pp_node t ppf node =
  let pr = Regset.pp ~name:Reg.name in
  Format.fprintf ppf "N%d %s  may-use=%a may-def=%a must-def=%a" node.id
    (kind_string t node.kind) pr node.may_use pr node.may_def pr node.must_def

let pp ppf t =
  Format.fprintf ppf "psg: %d nodes, %d edges@." (node_count t) (edge_count t);
  Array.iter (fun n -> Format.fprintf ppf "  %a@." (pp_node t) n) t.nodes;
  let pr = Regset.pp ~name:Reg.name in
  Array.iter
    (fun e ->
      let kind = match e.ekind with Flow -> "flow" | Call_return -> "call-ret" in
      Format.fprintf ppf "  E%d %s N%d -> N%d  may-use=%a may-def=%a must-def=%a@."
        e.edge_id kind e.src e.dst pr e.e_may_use pr e.e_may_def pr e.e_must_def)
    t.edges
