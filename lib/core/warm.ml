open Spike_support
open Spike_ir
open Spike_cfg

type routine_art = {
  a_cfg : Cfg.t;
  a_defuse : Defuse.t;
  a_filter : Regset.t;
  a_local : Psg_build.local;
  a_phase1 : int array;
  a_cr : int array;
  a_phase2 : int array;
}

type donor = {
  d_art : routine_art;
  d_callees : string list;
  d_exported : bool;
  d_is_main : bool;
}

type plan = {
  arts : routine_art option array;
  donors : donor option array;
  exit_seeds : bool array;
}

let cold program =
  let n = Program.routine_count program in
  {
    arts = Array.make n None;
    donors = Array.make n None;
    exit_seeds = Array.make n false;
  }

let reused plan =
  Array.fold_left (fun n a -> if a = None then n else n + 1) 0 plan.arts

(* --- Solution lifting -------------------------------------------------

   The content fingerprint that guards [plan.arts] is over-sensitive for
   the {e solutions}: the dataflow result depends on the program only
   through the equation system — the PSG local fragment (structure, edge
   labels, call targets), the §3.4 filter, and the exported/main flags
   that pick phase-2 exit seeds.  A body edit that preserves all of those
   (changing an immediate, say) rebuilds the front-end artifacts but
   yields the identical equation system, whose unique least fixpoint is
   exactly the cached one.  [solutions] recognizes this after the rebuild
   and lifts the stale artifact's converged solutions as if the routine
   were clean, leaving both invalidation cones empty. *)

let c_lifted = Spike_obs.Metrics.counter "warm.solutions.lifted"

(* The fragment is plain data — ints, strings, register sets — so
   structural equality decides "same equation system".  Both sides carry
   {e current} routine indices: the rebuilt fragment natively, the
   donor's via the store's name-keyed remap. *)
let local_equal (a : Psg_build.local) (b : Psg_build.local) = a = b

let solutions plan ~program ~locals ~filters =
  let n = Program.routine_count program in
  let main_index =
    match Program.find_index program (Program.main program) with
    | Some i -> i
    | None -> assert false (* guaranteed by Program.make *)
  in
  let sols = Array.copy plan.arts in
  let exit_seeds = Array.copy plan.exit_seeds in
  let force_exits callees =
    List.iter
      (fun callee ->
        match Program.find_index program callee with
        | Some r -> exit_seeds.(r) <- true
        | None -> ())
      callees
  in
  for r = 0 to n - 1 do
    match plan.donors.(r) with
    | None -> ()
    | Some d ->
        assert (plan.arts.(r) = None);
        if
          Bool.equal d.d_exported (Program.get program r).Routine.exported
          && Bool.equal d.d_is_main (r = main_index)
          && Regset.equal d.d_art.a_filter filters.(r)
          && local_equal d.d_art.a_local locals.(r)
        then begin
          sols.(r) <- Some d.d_art;
          Spike_obs.Metrics.incr c_lifted
        end
        else
          (* The routine really is dirty: its old call list may name
             callees the new fragment no longer reaches, whose exits
             must re-seed (a return-link contribution vanished). *)
          force_exits d.d_callees
  done;
  (sols, exit_seeds)

(* An invalidation cone is the closure of a seed set under an influence
   relation: [mark] flags a node and stacks it, [expand] pops until empty.
   The cone array doubles as the visited set. *)
let closure n seed_into expand_node =
  let cone = Array.make n false in
  let stack = Vec.create () in
  let mark id =
    if not cone.(id) then begin
      cone.(id) <- true;
      Vec.push stack id
    end
  in
  seed_into mark;
  let rec drain () =
    match Vec.pop stack with
    | None -> ()
    | Some id ->
        expand_node mark id;
        drain ()
  in
  drain ();
  cone

let seed_dirty_routines sols ~node_offset mark =
  Array.iteri
    (fun r art ->
      if art = None then
        for id = node_offset.(r) to node_offset.(r + 1) - 1 do
          mark id
        done)
    sols

(* Influence along flow and call-return edges runs against the edge
   direction: a node's recomputation reads the sets of its out-edge
   destinations, so a changed node influences its in-edge sources. *)
let mark_in_edge_sources (psg : Psg.t) mark id =
  let in_edges = psg.in_edges.(id) in
  for k = 0 to Array.length in_edges - 1 do
    mark psg.edges.(in_edges.(k)).src
  done

(* Packed-word restores: [stride] words per element, dirty slots left
   zero (they are inside the cone and never read). *)
let restore_of_sols sols ~offset ~stride ~total ~get =
  let restore = Array.make (total * stride) 0 in
  Array.iteri
    (fun r art ->
      match art with
      | None -> ()
      | Some art ->
          let src = get art in
          Array.blit src 0 restore (offset.(r) * stride) (Array.length src))
    sols;
  restore

let phase1_plan (psg : Psg.t) ~sols ~node_offset ~call_offset =
  let n = Psg.node_count psg in
  (* Entry nodes feed the call-return edges of their callers: precompute
     which node ids are primary entries, and of which routine. *)
  let primary_of = Array.make n (-1) in
  Array.iteri
    (fun r entries ->
      match entries with [] -> () | _ -> primary_of.(Psg.primary_entry_node psg r) <- r)
    psg.entry_nodes;
  let cone =
    closure n
      (seed_dirty_routines sols ~node_offset)
      (fun mark id ->
        mark_in_edge_sources psg mark id;
        let r = primary_of.(id) in
        if r >= 0 then
          List.iter
            (fun call_index -> mark psg.calls.(call_index).call_node)
            psg.callers_of.(r))
  in
  {
    Phase1.cone;
    restore =
      restore_of_sols sols ~offset:node_offset ~stride:6 ~total:n
        ~get:(fun a -> a.a_phase1);
    cr_restore =
      restore_of_sols sols ~offset:call_offset ~stride:6
        ~total:(Array.length psg.calls) ~get:(fun a -> a.a_cr);
  }

let phase2_plan (psg : Psg.t) ~sols ~exit_seeds ~node_offset ~call_offset ~p1_cr =
  let n = Psg.node_count psg in
  (* A return node's liveness is copied into the exit nodes of every
     routine its call can target (the paper's return-to-exit links). *)
  let ret_to_exits = Array.make n [] in
  Array.iter
    (fun (info : Psg.call_info) ->
      match info.targets with
      | None -> ()
      | Some targets ->
          List.iter
            (fun target ->
              match target with
              | Psg.Target_external _ -> ()
              | Psg.Target_routine r ->
                  ret_to_exits.(info.return_node) <-
                    psg.exit_nodes.(r) @ ret_to_exits.(info.return_node))
            targets)
    psg.calls;
  let cone =
    closure n
      (fun mark ->
        seed_dirty_routines sols ~node_offset mark;
        (* A call-return label that converged differently carries a new
           use/kill summary into its call node's liveness. *)
        Array.iteri
          (fun r art ->
            match art with
            | None -> ()
            | Some art ->
                let ncalls = Array.length art.a_cr / 6 in
                for k = 0 to ncalls - 1 do
                  let ci = call_offset.(r) + k in
                  let same = ref true in
                  for j = 0 to 5 do
                    if p1_cr.((ci * 6) + j) <> art.a_cr.((k * 6) + j) then
                      same := false
                  done;
                  if not !same then mark psg.calls.(ci).call_node
                done)
          sols;
        (* Routines that may have lost (or gained) a caller: their exit
           nodes' return-link contributions are suspect. *)
        Array.iteri
          (fun r forced -> if forced then List.iter mark psg.exit_nodes.(r))
          exit_seeds)
      (fun mark id ->
        mark_in_edge_sources psg mark id;
        List.iter mark ret_to_exits.(id))
  in
  {
    Phase2.cone;
    restore =
      restore_of_sols sols ~offset:node_offset ~stride:2 ~total:n
        ~get:(fun a -> a.a_phase2);
  }

let pack_sets3 a i x y z =
  let o = i * 6 in
  a.(o) <- Regset.lo_bits x;
  a.(o + 1) <- Regset.hi_bits x;
  a.(o + 2) <- Regset.lo_bits y;
  a.(o + 3) <- Regset.hi_bits y;
  a.(o + 4) <- Regset.lo_bits z;
  a.(o + 5) <- Regset.hi_bits z

let snapshot_phase1 (psg : Psg.t) =
  let n = Psg.node_count psg in
  let nodes = Array.make (n * 6) 0 in
  Array.iter
    (fun (nd : Psg.node) -> pack_sets3 nodes nd.id nd.may_use nd.may_def nd.must_def)
    psg.nodes;
  let cr = Array.make (Array.length psg.calls * 6) 0 in
  Array.iteri
    (fun i (info : Psg.call_info) ->
      let e = psg.edges.(info.cr_edge) in
      pack_sets3 cr i e.e_may_use e.e_may_def e.e_must_def)
    psg.calls;
  (nodes, cr)

let snapshot_live (psg : Psg.t) =
  let live = Array.make (Psg.node_count psg * 2) 0 in
  Array.iter
    (fun (nd : Psg.node) ->
      live.(nd.id * 2) <- Regset.lo_bits nd.may_use;
      live.((nd.id * 2) + 1) <- Regset.hi_bits nd.may_use)
    psg.nodes;
  live

let capture ~cfgs ~defuses ~filters ~locals ~p1_nodes ~p1_cr ~p2_live ~node_offset
    ~call_offset =
  Array.mapi
    (fun r (local : Psg_build.local) ->
      let nlen = Array.length local.l_kinds in
      let clen = Array.length local.l_calls in
      {
        a_cfg = cfgs.(r);
        a_defuse = defuses.(r);
        a_filter = filters.(r);
        a_local = local;
        a_phase1 = Array.sub p1_nodes (node_offset.(r) * 6) (nlen * 6);
        a_cr = Array.sub p1_cr (call_offset.(r) * 6) (clen * 6);
        a_phase2 = Array.sub p2_live (node_offset.(r) * 2) (nlen * 2);
      })
    locals
