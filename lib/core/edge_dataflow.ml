open Spike_support
open Spike_cfg

type sets = { may_use : Regset.t; may_def : Regset.t; must_def : Regset.t }

let empty = { may_use = Regset.empty; may_def = Regset.empty; must_def = Regset.empty }
let top_must = { may_use = Regset.empty; may_def = Regset.empty; must_def = Regset.full }

let join a b =
  {
    may_use = Regset.union a.may_use b.may_use;
    may_def = Regset.union a.may_def b.may_def;
    must_def = Regset.inter a.must_def b.must_def;
  }

let sets_equal a b =
  Regset.equal a.may_use b.may_use
  && Regset.equal a.may_def b.may_def
  && Regset.equal a.must_def b.must_def

let apply_block ~def ~ubd out =
  {
    may_use = Regset.union ubd (Regset.diff out.may_use def);
    may_def = Regset.union out.may_def def;
    must_def = Regset.union out.must_def def;
  }

(* A routine's flow-summary edges are solved one after another over
   subgraphs of the same CFG, so the block-to-slot map and the IN-set table
   are preallocated at routine size and reused across edges.  A generation
   stamp invalidates the previous edge's entries without an O(blocks)
   reset. *)
type solution = {
  position : int array;  (* block id -> slot; valid iff stamp.(b) = gen *)
  stamp : int array;
  mutable gen : int;
  ins : sets array;  (* slot -> IN sets of the current subgraph *)
}

type scratch = solution

(* Per-edge dataflow cost counters.  [solve] runs concurrently on pool
   domains, so these land in Spike_obs' per-domain cells; the counts are
   accumulated locally and flushed once per solve to keep the sweep loop
   free of instrumentation. *)
let c_solves = Spike_obs.Metrics.counter "edge_dataflow.solves"
let c_sweeps = Spike_obs.Metrics.counter "edge_dataflow.sweeps"
let c_block_visits = Spike_obs.Metrics.counter "edge_dataflow.block_visits"
let c_block_updates = Spike_obs.Metrics.counter "edge_dataflow.block_updates"

let create_scratch ~nblocks =
  {
    position = Array.make (max nblocks 1) 0;
    stamp = Array.make (max nblocks 1) 0;
    gen = 0;
    ins = Array.make (max nblocks 1) top_must;
  }

let solve ?scratch ~cfg ~defuse ~rpo_position ~blocks ~sink () =
  let s =
    match scratch with
    | Some s -> s
    | None -> create_scratch ~nblocks:(Cfg.block_count cfg)
  in
  s.gen <- s.gen + 1;
  (* Backward dataflow converges fastest visiting a block after its
     successors, i.e. in descending reverse-postorder position. *)
  Array.sort (fun a b -> Int.compare rpo_position.(b) rpo_position.(a)) blocks;
  let gen = s.gen in
  Array.iteri
    (fun i b ->
      s.position.(b) <- i;
      s.stamp.(b) <- gen;
      s.ins.(i) <- top_must)
    blocks;
  let position = s.position and stamp = s.stamp and ins = s.ins in
  let out_of b =
    if b = sink then empty
    else begin
      let acc = ref top_must and found = ref false in
      Array.iter
        (fun succ ->
          if succ < Array.length stamp && stamp.(succ) = gen then begin
            found := true;
            acc := join !acc ins.(position.(succ))
          end)
        cfg.Cfg.blocks.(b).Cfg.succs;
      (* Construction guarantees every non-sink subgraph block lies on a
         path to the sink, hence has a subgraph successor. *)
      assert !found;
      !acc
    end
  in
  let sweeps = ref 0 and updates = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr sweeps;
    Array.iteri
      (fun i b ->
        let next =
          apply_block ~def:(Defuse.def defuse b) ~ubd:(Defuse.ubd defuse b) (out_of b)
        in
        if not (sets_equal next ins.(i)) then begin
          ins.(i) <- next;
          incr updates;
          changed := true
        end)
      blocks
  done;
  if Spike_obs.Metrics.enabled () then begin
    Spike_obs.Metrics.incr c_solves;
    Spike_obs.Metrics.add c_sweeps !sweeps;
    Spike_obs.Metrics.add c_block_visits (!sweeps * Array.length blocks);
    Spike_obs.Metrics.add c_block_updates !updates
  end;
  s

let mem sol b = b < Array.length sol.stamp && sol.stamp.(b) = sol.gen

let in_of sol b =
  if mem sol b then sol.ins.(sol.position.(b))
  else invalid_arg (Printf.sprintf "Edge_dataflow.in_of: block %d not in subgraph" b)
