open Spike_support

type t = {
  scc : Scc.t;
  comp_of_node : int array;
  comp_nodes_p1 : int array array;
  comp_cend_p1 : int array array;
  comp_flat_p1 : int array array;
  comp_nodes_p2 : int array array;
  comp_cend_p2 : int array array;
  comp_flat_p2 : int array array;
  comp_calls : int array array;
  pool : Pool.t option;
}

(* Work items of the iterative WTO construction: decompose a vertex set,
   emit a trivial vertex, emit a dependency knot, or patch the end offset
   of a finished head-knot. *)
type wtask =
  | Wset of int array
  | Wnode of int
  | Wknot of int array
  | Wclose of int

(* Observability: component counts let a trace distinguish "many small
   components" (schedule-friendly) from "one giant recursion knot". *)
let c_comps = Spike_obs.Metrics.counter "sched.components"
let c_comps_run = Spike_obs.Metrics.counter "sched.components.run"

let make ?pool (psg : Psg.t) =
  let scc = Psg.call_scc psg in
  Spike_obs.Metrics.add c_comps scc.Scc.count;
  let n = Psg.node_count psg in
  let comp_of_node = Array.make n 0 in
  Array.iter
    (fun (node : Psg.node) ->
      comp_of_node.(node.Psg.id) <- scc.Scc.comp_of.(Psg.node_routine node.Psg.kind))
    psg.Psg.nodes;
  (* Per-phase dependency graphs: [deps.(u)] lists the nodes whose sets
     [u]'s recomputation reads.  Both phases read through outgoing flow
     edges; phase 1 additionally reads callee entry nodes at call nodes
     (through the call-return edge label), phase 2 reads caller return
     nodes at exit nodes (through the return links). *)
  let flow_deps u =
    List.map
      (fun e -> psg.Psg.edges.(e).Psg.dst)
      (Array.to_list psg.Psg.out_edges.(u))
  in
  let p1_extra = Array.make n [] and p2_extra = Array.make n [] in
  Array.iter
    (fun (info : Psg.call_info) ->
      match info.Psg.targets with
      | None -> ()
      | Some targets ->
          List.iter
            (fun target ->
              match target with
              | Psg.Target_external _ -> ()
              | Psg.Target_routine r ->
                  p1_extra.(info.Psg.call_node) <-
                    Psg.primary_entry_node psg r :: p1_extra.(info.Psg.call_node);
                  List.iter
                    (fun exit_node ->
                      p2_extra.(exit_node) <-
                        info.Psg.return_node :: p2_extra.(exit_node))
                    psg.Psg.exit_nodes.(r))
            targets)
    psg.Psg.calls;
  let deps extra =
    Array.init n (fun u -> Array.of_list (flow_deps u @ extra.(u)))
  in
  (* Node-level refinement: a weak topological order (Bourdoncle) of each
     phase's dependency graph, per call-graph component.  The component's
     nodes are SCC-decomposed; a dependency knot (CFG loop, recursion
     spine) becomes head + recursively decomposed remainder, because
     every cycle of the knot passes through its DFS root — so iterating a
     knot until its {e head} is stable, with nested knots stabilized
     recursively, converges it.  Readers then see a knot's final values
     exactly once, instead of once per lattice-ascent step.

     Node-level components never cross call-graph components (flow edges
     stay inside a routine, the extra deps follow call-graph edges), so
     the decomposition is run independently per component.  [Scc] numbers
     components reverse-topologically, so ascending order is reads-first
     at every level.

     Head removal converges fast on intra-routine knots — CFG loop nests
     are shallow — but peels a dense multi-routine recursion knot one
     vertex per level, each level re-running an SCC pass: quadratic.  So
     a knot spanning several routines is instead emitted as a {e flat
     region}: its routines in callee-first order, each routine's nodes
     recursively decomposed (their knots are intra-routine again), the
     whole region swept until a pass pops nothing.  The outer sweep pays
     for the cross-routine recursion coupling only, while CFG loops
     inside still stabilize locally.  A work budget backstops the head
     peeling; exhausted, knots are emitted as unrefined flat regions.

     The output per component is its nodes in WTO order, a parallel
     [cend] array — [cend.(i) = 0] for a trivial element, [cend.(i) = e]
     when a head-knot at [i] spans [i, e) — and the flat regions as
     [start; end) pairs, ascending and disjoint. *)
  let comp_members =
    let acc = Array.make (max scc.Scc.count 1) [] in
    for id = n - 1 downto 0 do
      acc.(comp_of_node.(id)) <- id :: acc.(comp_of_node.(id))
    done;
    Array.map Array.of_list acc
  in
  let stamp = Array.make n (-1) in
  let lidx = Array.make n 0 in
  let gen = ref (-1) in
  let routine_of id = Psg.node_routine psg.Psg.nodes.(id).Psg.kind in
  let hier dep_arr =
    let budget = ref (32 * n) in
    let comp_nodes = Array.make (max scc.Scc.count 1) [||] in
    let comp_cend = Array.make (max scc.Scc.count 1) [||] in
    let comp_flat = Array.make (max scc.Scc.count 1) [||] in
    for c = 0 to scc.Scc.count - 1 do
      let size = Array.length comp_members.(c) in
      let out = Array.make size 0 and cend = Array.make size 0 in
      let flats = ref [] in
      let cur = ref 0 in
      let tasks = ref [ Wset comp_members.(c) ] in
      while !tasks <> [] do
        let task = List.hd !tasks in
        tasks := List.tl !tasks;
        match task with
        | Wnode id ->
            out.(!cur) <- id;
            incr cur
        | Wclose p -> cend.(p) <- !cur
        | Wknot m when !budget <= 0 ->
            let p = !cur in
            Array.iter
              (fun id ->
                out.(!cur) <- id;
                incr cur)
              m;
            flats := !cur :: p :: !flats
        | Wknot m when Array.exists (fun id -> routine_of id <> routine_of m.(0)) m
          ->
            (* Multi-routine recursion knot: flat region, members kept in
               the dependency graph's DFS postorder. *)
            let p = !cur in
            Array.iter
              (fun id ->
                out.(!cur) <- id;
                incr cur)
              m;
            flats := !cur :: p :: !flats
        | Wknot m ->
            let len = Array.length m in
            let head = m.(len - 1) (* the knot's DFS root: on every cycle *) in
            let p = !cur in
            out.(p) <- head;
            incr cur;
            tasks := Wset (Array.sub m 0 (len - 1)) :: Wclose p :: !tasks
        | Wset set ->
            let len = Array.length set in
            budget := !budget - len;
            incr gen;
            Array.iteri
              (fun i id ->
                stamp.(id) <- !gen;
                lidx.(id) <- i)
              set;
            let succs =
              Array.init len (fun i ->
                  let ds = dep_arr.(set.(i)) in
                  let acc = ref [] in
                  Array.iter
                    (fun d -> if stamp.(d) = !gen then acc := lidx.(d) :: !acc)
                    ds;
                  Array.of_list !acc)
            in
            let sub = Scc.compute ~succs in
            (* Push in descending order so ascending (reads-first) pops. *)
            for g = sub.Scc.count - 1 downto 0 do
              let ms = sub.Scc.members.(g) in
              if
                Array.length ms = 1
                && not (Array.exists (fun d -> d = ms.(0)) succs.(ms.(0)))
              then tasks := Wnode set.(ms.(0)) :: !tasks
              else tasks := Wknot (Array.map (fun i -> set.(i)) ms) :: !tasks
            done
      done;
      comp_nodes.(c) <- out;
      comp_cend.(c) <- cend;
      comp_flat.(c) <- Array.of_list (List.rev !flats)
    done;
    (comp_nodes, comp_cend, comp_flat)
  in
  let comp_nodes_p1, comp_cend_p1, comp_flat_p1 = hier (deps p1_extra) in
  let comp_nodes_p2, comp_cend_p2, comp_flat_p2 = hier (deps p2_extra) in
  let calls_acc = Array.make (max scc.Scc.count 1) [] in
  Array.iteri
    (fun i (info : Psg.call_info) ->
      let c = comp_of_node.(info.Psg.call_node) in
      calls_acc.(c) <- i :: calls_acc.(c))
    psg.Psg.calls;
  let comp_calls =
    Array.init scc.Scc.count (fun c -> Array.of_list (List.rev calls_acc.(c)))
  in
  {
    scc;
    comp_of_node;
    comp_nodes_p1;
    comp_cend_p1;
    comp_flat_p1;
    comp_nodes_p2;
    comp_cend_p2;
    comp_flat_p2;
    comp_calls;
    pool;
  }

let jobs t = match t.pool with None -> 1 | Some pool -> Pool.jobs pool

let run t ~rev ~dirty f =
  let count = t.scc.Scc.count in
  let scratch () = Bytes.make (max (Array.length t.comp_of_node) 1) '\000' in
  match t.pool with
  | Some pool when Pool.jobs pool > 1 ->
      (* Components become tasks of the condensation DAG; the direction of
         "waits on" flips with the phase.  Clean components are no-op
         tasks: they run instantly but still release their dependents. *)
      let dep_counts, dependents =
        if rev then
          ( Array.map Array.length t.scc.Scc.preds,
            t.scc.Scc.succs )
        else
          ( Array.map Array.length t.scc.Scc.succs,
            t.scc.Scc.preds )
      in
      (* One scratch mark bitset per domain, checked out around each task.
         The free list is guarded by its own mutex; the handover cost is
         two lock operations per component. *)
      let free = ref (List.init (Pool.jobs pool) (fun _ -> scratch ())) in
      let free_mutex = Mutex.create () in
      let checkout () =
        Mutex.lock free_mutex;
        let ws = match !free with [] -> assert false | ws :: rest -> free := rest; ws in
        Mutex.unlock free_mutex;
        ws
      in
      let check_in ws =
        Mutex.lock free_mutex;
        free := ws :: !free;
        Mutex.unlock free_mutex
      in
      let total = Atomic.make 0 in
      Pool.run_dag pool ~dependents ~dep_counts (fun c ->
          if dirty c then begin
            Spike_obs.Metrics.incr c_comps_run;
            let ws = checkout () in
            let iters = f ws c in
            check_in ws;
            ignore (Atomic.fetch_and_add total iters)
          end);
      Atomic.get total
  | _ ->
      let ws = scratch () in
      let total = ref 0 in
      if rev then
        for c = count - 1 downto 0 do
          if dirty c then begin
            Spike_obs.Metrics.incr c_comps_run;
            total := !total + f ws c
          end
        done
      else
        for c = 0 to count - 1 do
          if dirty c then begin
            Spike_obs.Metrics.incr c_comps_run;
            total := !total + f ws c
          end
        done;
      !total
