(** PSG construction (paper §3.1 and §3.6).

    For each routine the builder creates an entry node per entrance, an
    exit node per [ret], a call node and a return node per call site, a
    pseudo-exit per unknown-target indirect jump, and — when
    [branch_nodes] is on — a branch node per multiway branch.  Call, exit,
    unknown-exit and branch locations are {e cuts}: no flow-summary edge
    crosses them.  A flow-summary edge is produced from source [S] (entry,
    return or branch node) to sink [T] (call, exit, unknown-exit or branch
    node) whenever a control-flow path connects their locations without
    crossing another cut; its label is computed by {!Edge_dataflow} over
    the subgraph of blocks on such paths.

    With [branch_nodes = false] multiway branches are ordinary control
    flow, reproducing the quadratic edge blow-up measured in Table 4.

    Construction is split into a per-routine {e local pass} (node/edge
    discovery and edge labelling — parallelized over a {!Spike_support.Pool}
    when one is supplied) and a sequential {e stitch pass} that assigns
    global ids by per-routine prefix sums and wires the cross-routine
    caller lists.  The local pass numbers everything in the same
    intra-routine order as a sequential build, so the PSG is bit-identical
    for every parallelism degree. *)

open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg

(** {2 Per-routine local artifacts}

    The local pass emits everything the stitch pass needs, under
    routine-local node/edge/call ids.  The records are exposed so the
    persistent summary store ({!Spike_store}) can serialize a routine's
    fragment and splice it back into a later build unchanged. *)

type local_edge = {
  le_kind : Psg.edge_kind;
  le_src : int;  (** routine-local node id *)
  le_dst : int;
  le_label : Edge_dataflow.sets;
}

type local_call = {
  lc_call_node : int;  (** routine-local node id *)
  lc_return_node : int;
  lc_cr_edge : int;  (** routine-local edge id *)
  lc_callee : Insn.callee;
  lc_targets : Psg.call_target list option;
  lc_call_def : Regset.t;
  lc_call_use : Regset.t;
}

type local = {
  l_kinds : Psg.node_kind array;  (** routine-local node id [->] kind *)
  l_edges : local_edge array;
  l_calls : local_call array;
  l_entry : int list;  (** routine-local node ids, declaration order *)
  l_exit : int list;
  l_unknown : int list;
}

val resolver :
  externals:(string -> Psg.external_class option) ->
  Program.t ->
  Insn.callee ->
  Psg.call_target list option
(** The §3.5 target resolution [build] uses: a direct call resolves to a
    routine of the image, to external code with a supplied summary, or to
    [None] (the calling-standard assumption); an indirect call resolves
    only when every name of its target list does. *)

val local_pass :
  branch_nodes:bool ->
  resolve_targets:(Insn.callee -> Psg.call_target list option) ->
  int ->
  Cfg.t ->
  Defuse.t ->
  local
(** [local_pass ~branch_nodes ~resolve_targets r cfg defuse] runs node and
    edge discovery plus the Figure-6 edge labelling for routine [r] alone.
    Safe to call concurrently for distinct routines. *)

val stitch :
  entry_filters:Regset.t array -> Program.t -> local array -> Psg.t
(** Concatenate per-routine locals (in routine order) into the global PSG:
    ids are offset by prefix sums, caller lists are wired.  Deterministic
    in its inputs — splicing a cached [local] for an unchanged routine
    yields a graph bit-identical to rebuilding it. *)

val node_offsets : local array -> int array
(** Prefix sums of per-routine node counts, length [routines + 1]:
    routine [r]'s nodes occupy global ids
    [[offsets.(r), offsets.(r + 1))] after {!stitch}. *)

val call_offsets : local array -> int array
(** Likewise for the global call-site table. *)

val build :
  ?branch_nodes:bool ->
  ?entry_filters:Regset.t array ->
  ?externals:(string -> Psg.external_class option) ->
  ?pool:Pool.t ->
  Program.t ->
  Cfg.t array ->
  Defuse.t array ->
  Psg.t
(** [build program cfgs defuses] constructs the whole-program PSG.
    [branch_nodes] defaults to [true].  [entry_filters] (one set per
    routine, the §3.4 callee-saved filter) defaults to
    {!Callee_saved.saved_and_restored} on every routine.  [externals]
    supplies §3.5 compiler/linker summaries for call targets outside the
    image; names it does not cover fall back to the calling-standard
    assumption — with a pool of more than one domain it is called
    concurrently and must be thread-safe (pure lookups are).  [pool]
    parallelizes the per-routine local pass; omitting it (or passing a
    one-domain pool) runs sequentially. *)
