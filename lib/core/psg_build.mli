(** PSG construction (paper §3.1 and §3.6).

    For each routine the builder creates an entry node per entrance, an
    exit node per [ret], a call node and a return node per call site, a
    pseudo-exit per unknown-target indirect jump, and — when
    [branch_nodes] is on — a branch node per multiway branch.  Call, exit,
    unknown-exit and branch locations are {e cuts}: no flow-summary edge
    crosses them.  A flow-summary edge is produced from source [S] (entry,
    return or branch node) to sink [T] (call, exit, unknown-exit or branch
    node) whenever a control-flow path connects their locations without
    crossing another cut; its label is computed by {!Edge_dataflow} over
    the subgraph of blocks on such paths.

    With [branch_nodes = false] multiway branches are ordinary control
    flow, reproducing the quadratic edge blow-up measured in Table 4.

    Construction is split into a per-routine {e local pass} (node/edge
    discovery and edge labelling — parallelized over a {!Spike_support.Pool}
    when one is supplied) and a sequential {e stitch pass} that assigns
    global ids by per-routine prefix sums and wires the cross-routine
    caller lists.  The local pass numbers everything in the same
    intra-routine order as a sequential build, so the PSG is bit-identical
    for every parallelism degree. *)

open Spike_support
open Spike_ir
open Spike_cfg

val build :
  ?branch_nodes:bool ->
  ?entry_filters:Regset.t array ->
  ?externals:(string -> Psg.external_class option) ->
  ?pool:Pool.t ->
  Program.t ->
  Cfg.t array ->
  Defuse.t array ->
  Psg.t
(** [build program cfgs defuses] constructs the whole-program PSG.
    [branch_nodes] defaults to [true].  [entry_filters] (one set per
    routine, the §3.4 callee-saved filter) defaults to
    {!Callee_saved.saved_and_restored} on every routine.  [externals]
    supplies §3.5 compiler/linker summaries for call targets outside the
    image; names it does not cover fall back to the calling-standard
    assumption — with a pool of more than one domain it is called
    concurrently and must be thread-safe (pure lookups are).  [pool]
    parallelizes the per-routine local pass; omitting it (or passing a
    one-domain pool) runs sequentially. *)
