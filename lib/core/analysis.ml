open Spike_support
open Spike_ir
open Spike_cfg

type t = {
  program : Program.t;
  cfgs : Cfg.t array;
  defuses : Defuse.t array;
  psg : Psg.t;
  call_classes : Summary.call_class array;
  summaries : Summary.t array;
  timer : Timer.t;
  phase1_iterations : int;
  phase2_iterations : int;
  branch_nodes : bool;
  externals : string -> Psg.external_class option;
  callee_saved_filter : bool;
  jobs : int;
  phase_sched : [ `Fifo | `Scc ];
  reused_routines : int;
  warm_capture : Warm.routine_art array option;
}

let stage_cfg_build = "CFG Build"
let stage_init = "Initialization"
let stage_psg_build = "PSG Build"
let stage_sched = "SCC Sched"
let stage_phase1 = "Phase 1"
let stage_phase2 = "Phase 2"

(* Observability.  Every stage is both a timer bucket and a trace span,
   followed by a heap-footprint gauge sample; the PSG composition
   counters mirror Figures 14-15's size-by-label breakdown. *)
let c_runs = Spike_obs.Metrics.counter "analysis.runs"
let c_routines = Spike_obs.Metrics.counter "analysis.routines"

let psg_counters =
  [
    (Spike_obs.Metrics.counter "psg.nodes", fun (s : Psg_stats.t) -> s.nodes);
    (Spike_obs.Metrics.counter "psg.nodes.entry", fun s -> s.entry_nodes);
    (Spike_obs.Metrics.counter "psg.nodes.exit", fun s -> s.exit_nodes);
    (Spike_obs.Metrics.counter "psg.nodes.call", fun s -> s.call_nodes);
    (Spike_obs.Metrics.counter "psg.nodes.return", fun s -> s.return_nodes);
    (Spike_obs.Metrics.counter "psg.nodes.branch", fun s -> s.branch_nodes);
    ( Spike_obs.Metrics.counter "psg.nodes.unknown_exit",
      fun s -> s.unknown_exit_nodes );
    (Spike_obs.Metrics.counter "psg.edges", fun s -> s.edges);
    (Spike_obs.Metrics.counter "psg.edges.flow", fun s -> s.flow_edges);
    ( Spike_obs.Metrics.counter "psg.edges.call_return",
      fun s -> s.call_return_edges );
  ]

let heap_gauge =
  let gauges = Hashtbl.create 8 in
  fun stage ->
    match Hashtbl.find_opt gauges stage with
    | Some g -> g
    | None ->
        let g = Spike_obs.Metrics.gauge ("heap.bytes.after." ^ stage) in
        Hashtbl.add gauges stage g;
        g

(* A stage is one timer bucket, one span, and one heap sample. *)
let record_stage timer stage f =
  let result = Timer.record timer stage (fun () -> Spike_obs.Trace.with_span stage f) in
  if Spike_obs.Metrics.enabled () then
    Spike_obs.Metrics.set_gauge (heap_gauge stage)
      (float_of_int (Memmeter.sample_bytes ()));
  result

(* Warm counters: how much front-end work a plan saved vs. redid. *)
let c_reused = Spike_obs.Metrics.counter "warm.routines.reused"
let c_rebuilt = Spike_obs.Metrics.counter "warm.routines.rebuilt"

(* The condensation schedule both phases share.  Built once per run —
   it only depends on the call graph — and timed as its own stage so the
   bench can show it is amortized by the iteration savings. *)
let build_sched ~phase_sched ~pool ~timer psg =
  match phase_sched with
  | `Fifo -> None
  | `Scc -> Some (record_stage timer stage_sched (fun () -> Sched.make ~pool psg))

let run_cold ~branch_nodes ~externals ~callee_saved_filter ~jobs ~phase_sched
    ~pool ~timer program =
  let routines = Program.routines program in
  let cfgs =
    record_stage timer stage_cfg_build (fun () ->
        Pool.parallel_map_array pool
          (fun r -> Spike_obs.Trace.with_span "cfg.build" (fun () -> Cfg.build r))
          routines)
  in
  let defuses, entry_filters =
    record_stage timer stage_init (fun () ->
        let defuses =
          Pool.parallel_map_array pool
            (fun cfg ->
              Spike_obs.Trace.with_span "defuse.compute" (fun () ->
                  Defuse.compute cfg))
            cfgs
        in
        let filters =
          if callee_saved_filter then
            Pool.parallel_init pool (Array.length cfgs) (fun r ->
                Spike_obs.Trace.with_span "callee_saved.filter" (fun () ->
                    Callee_saved.saved_and_restored routines.(r) cfgs.(r)))
          else Array.map (fun _ -> Regset.empty) cfgs
        in
        (defuses, filters))
  in
  let psg =
    record_stage timer stage_psg_build (fun () ->
        Psg_build.build ~branch_nodes ~entry_filters ~externals ~pool program
          cfgs defuses)
  in
  if Spike_obs.Metrics.enabled () then begin
    let stats = Psg_stats.of_psg psg in
    List.iter (fun (c, get) -> Spike_obs.Metrics.add c (get stats)) psg_counters
  end;
  (* Phases 1 and 2 are global fixpoints over the whole PSG; under the
     SCC schedule they run one call-graph component at a time, with
     independent components dispatched to the pool. *)
  let sched = build_sched ~phase_sched ~pool ~timer psg in
  let phase1_iterations, call_classes =
    record_stage timer stage_phase1 (fun () ->
        let iterations = Phase1.run ?sched psg in
        (iterations, Summary.extract_call_classes psg))
  in
  let phase2_iterations, summaries =
    record_stage timer stage_phase2 (fun () ->
        let iterations = Phase2.run ?sched psg in
        (iterations, Summary.extract psg call_classes))
  in
  {
    program;
    cfgs;
    defuses;
    psg;
    call_classes;
    summaries;
    timer;
    phase1_iterations;
    phase2_iterations;
    branch_nodes;
    externals;
    callee_saved_filter;
    jobs;
    phase_sched;
    reused_routines = 0;
    warm_capture = None;
  }

(* The incremental path: per-routine front-end artifacts come from the
   plan when present, are rebuilt when not.  After the rebuild,
   {!Warm.solutions} lifts the cached solutions of any rebuilt routine
   whose equation system turned out unchanged; both phases then restart
   only the remaining dirty routines, restoring converged values outside
   the invalidation cones the planners close.  With an all-cold plan the
   cones cover every node, so this degenerates to the cold run — which is
   how [capture]-only runs keep bit-identical results. *)
let run_warm ~branch_nodes ~externals ~callee_saved_filter ~jobs ~phase_sched
    ~pool ~timer ~(plan : Warm.plan) ~capture program =
  let routines = Program.routines program in
  let n = Array.length routines in
  let reused_routines = Warm.reused plan in
  Spike_obs.Metrics.add c_reused reused_routines;
  Spike_obs.Metrics.add c_rebuilt (n - reused_routines);
  let art r = plan.Warm.arts.(r) in
  let cfgs =
    record_stage timer stage_cfg_build (fun () ->
        Pool.parallel_init pool n (fun r ->
            match art r with
            | Some a -> a.Warm.a_cfg
            | None ->
                Spike_obs.Trace.with_span "cfg.build" (fun () ->
                    Cfg.build routines.(r))))
  in
  let defuses, entry_filters =
    record_stage timer stage_init (fun () ->
        let defuses =
          Pool.parallel_init pool n (fun r ->
              match art r with
              | Some a -> a.Warm.a_defuse
              | None ->
                  Spike_obs.Trace.with_span "defuse.compute" (fun () ->
                      Defuse.compute cfgs.(r)))
        in
        let filters =
          if callee_saved_filter then
            Pool.parallel_init pool n (fun r ->
                match art r with
                | Some a -> a.Warm.a_filter
                | None ->
                    Spike_obs.Trace.with_span "callee_saved.filter" (fun () ->
                        Callee_saved.saved_and_restored routines.(r) cfgs.(r)))
          else Array.make n Regset.empty
        in
        (defuses, filters))
  in
  let locals, psg =
    record_stage timer stage_psg_build (fun () ->
        let resolve_targets = Psg_build.resolver ~externals program in
        let locals =
          Pool.parallel_init pool n (fun r ->
              match art r with
              | Some a -> a.Warm.a_local
              | None ->
                  Spike_obs.Trace.with_span "psg.local_pass" (fun () ->
                      Psg_build.local_pass ~branch_nodes ~resolve_targets r
                        cfgs.(r) defuses.(r)))
        in
        let psg =
          Spike_obs.Trace.with_span "psg.stitch" (fun () ->
              Psg_build.stitch ~entry_filters program locals)
        in
        (locals, psg))
  in
  if Spike_obs.Metrics.enabled () then begin
    let stats = Psg_stats.of_psg psg in
    List.iter (fun (c, get) -> Spike_obs.Metrics.add c (get stats)) psg_counters
  end;
  let node_offset = Psg_build.node_offsets locals in
  let call_offset = Psg_build.call_offsets locals in
  let sols, exit_seeds =
    Spike_obs.Trace.with_span "warm.lift" (fun () ->
        Warm.solutions plan ~program ~locals ~filters:entry_filters)
  in
  let sched = build_sched ~phase_sched ~pool ~timer psg in
  let phase1_iterations, call_classes, p1_nodes, p1_cr =
    record_stage timer stage_phase1 (fun () ->
        let w1 =
          Spike_obs.Trace.with_span "warm.phase1_plan" (fun () ->
              Warm.phase1_plan psg ~sols ~node_offset ~call_offset)
        in
        let iterations = Phase1.run ~warm:w1 ?sched psg in
        let p1_nodes, p1_cr = Warm.snapshot_phase1 psg in
        (iterations, Summary.extract_call_classes psg, p1_nodes, p1_cr))
  in
  let phase2_iterations, summaries =
    record_stage timer stage_phase2 (fun () ->
        let w2 =
          Spike_obs.Trace.with_span "warm.phase2_plan" (fun () ->
              Warm.phase2_plan psg ~sols ~exit_seeds ~node_offset ~call_offset
                ~p1_cr)
        in
        let iterations = Phase2.run ~warm:w2 ?sched psg in
        (iterations, Summary.extract psg call_classes))
  in
  let warm_capture =
    if not capture then None
    else
      Some
        (Spike_obs.Trace.with_span "warm.capture" (fun () ->
             Warm.capture ~cfgs ~defuses ~filters:entry_filters ~locals ~p1_nodes
               ~p1_cr ~p2_live:(Warm.snapshot_live psg) ~node_offset ~call_offset))
  in
  {
    program;
    cfgs;
    defuses;
    psg;
    call_classes;
    summaries;
    timer;
    phase1_iterations;
    phase2_iterations;
    branch_nodes;
    externals;
    callee_saved_filter;
    jobs;
    phase_sched;
    reused_routines;
    warm_capture;
  }

let run ?(branch_nodes = true) ?(externals = fun _ -> None)
    ?(callee_saved_filter = true) ?jobs ?(phase_sched = `Scc) ?warm
    ?(capture = false) program =
  let jobs =
    match jobs with Some j -> max 1 (min j 64) | None -> Pool.default_jobs ()
  in
  Pool.with_pool ~jobs (fun pool ->
      let timer = Timer.create () in
      Spike_obs.Metrics.incr c_runs;
      Spike_obs.Metrics.add c_routines (Program.routine_count program);
      match (warm, capture) with
      | None, false ->
          run_cold ~branch_nodes ~externals ~callee_saved_filter ~jobs
            ~phase_sched ~pool ~timer program
      | _ ->
          let plan =
            match warm with Some p -> p | None -> Warm.cold program
          in
          run_warm ~branch_nodes ~externals ~callee_saved_filter ~jobs
            ~phase_sched ~pool ~timer ~plan ~capture program)

let rerun t program =
  run ~branch_nodes:t.branch_nodes ~externals:t.externals
    ~callee_saved_filter:t.callee_saved_filter ~jobs:t.jobs
    ~phase_sched:t.phase_sched program

let summary_of t name = Summary.find t.summaries t.program name
let site_class t info = Summary.site_class t.psg t.call_classes info
let total_seconds t = Timer.total t.timer

let pp_times ppf t =
  let total = total_seconds t in
  Format.fprintf ppf "@[<v>total dataflow time: %.4fs" total;
  List.iter
    (fun (stage, secs) ->
      Format.fprintf ppf "@ %-16s %.4fs (%4.1f%%)" stage secs
        (if total > 0.0 then 100.0 *. secs /. total else 0.0))
    (Timer.stages t.timer);
  Format.fprintf ppf "@]"
