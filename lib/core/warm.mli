(** Warm-start re-analysis: per-routine cached artifacts and the
    invalidation cones that let {!Analysis.run} re-converge only what an
    edit can actually influence.

    A {!routine_art} bundles everything the front-end computes for one
    routine — its CFG, DEF/UBD sets, §3.4 callee-saved filter and PSG
    local fragment — together with the converged phase-1 and phase-2 node
    solutions of the run that produced it.  The persistent store
    ({!Spike_store}) keys artifacts by content fingerprint; this module is
    purely in-memory and fingerprint-agnostic.

    Reuse happens at two levels.  The fingerprint-clean routines in
    [plan.arts] reuse {e everything}, front-end artifacts included.  A
    fingerprint-stale routine rebuilds its front end, but if the rebuild
    yields the identical equation system — same local fragment, filter
    and exit-seed flags as its [plan.donors] entry — the cached
    {e solutions} still are its exact least fixpoint and {!solutions}
    lifts them too.  Only the remaining routines are dirty.

    {b Correctness.}  Both phases compute the unique least fixpoint of a
    monotone system by restarting dirty nodes from the lattice bottom
    while restoring converged values elsewhere.  That is bit-identical to
    a cold run only if the set of restarted nodes — the {e invalidation
    cone} — is closed under each phase's influence relation: whatever can
    read a dirty value must itself re-converge (see {!Phase1.warm} and
    {!Phase2.warm} for the per-phase contracts the planners establish).
    Closure is computed transitively; a frozen complement may not sit
    between two dirty regions, because a cycle through stale frozen
    values can sustain a fixpoint above the least one. *)

open Spike_support
open Spike_ir
open Spike_cfg

(** Converged solutions are kept {e packed}: flat [int] arrays of raw
    32-bit register-set halves, six words per (MAY-USE, MAY-DEF,
    MUST-DEF) triple and two per single set.  Unboxed arrays make the
    snapshot, the store round-trip and the warm restore straight word
    copies — no allocation, no write barriers. *)

type routine_art = {
  a_cfg : Cfg.t;
  a_defuse : Defuse.t;
  a_filter : Regset.t;  (** §3.4 saved-and-restored callee-saved set *)
  a_local : Psg_build.local;
  a_phase1 : int array;
      (** local node id [->] converged phase-1 triple, packed 6 words *)
  a_cr : int array;
      (** local call index [->] converged call-return label, packed 6 words *)
  a_phase2 : int array;
      (** local node id [->] converged liveness, packed 2 words *)
}

type donor = {
  d_art : routine_art;  (** remapped to {e current} routine indices *)
  d_callees : string list;
      (** internal routines the cached fragment's calls could target —
          re-seeded as exits if the lift fails *)
  d_exported : bool;  (** the routine's exported flag at capture time *)
  d_is_main : bool;  (** it was the program's main routine at capture time *)
}
(** A fingerprint-stale artifact kept around as a lift candidate: its
    front end must be rebuilt, but {!solutions} may still prove the
    cached solutions exact. *)

type plan = {
  arts : routine_art option array;
      (** current routine index [->] artifact to reuse; [None] = rebuild *)
  donors : donor option array;
      (** lift candidates for rebuilt routines; [None] where [arts] is
          [Some _] *)
  exit_seeds : bool array;
      (** routine [->] its exit nodes must re-seed in phase 2 even if the
          routine itself is clean — set when a (former) caller was edited
          or deleted, so a return-link contribution may have disappeared *)
}

val cold : Program.t -> plan
(** The all-dirty plan: every routine rebuilt, nothing restored.  Running
    {!Analysis.run} with it is bit-identical to a cold run. *)

val reused : plan -> int
(** Number of routines whose front-end artifacts the plan reuses. *)

val solutions :
  plan ->
  program:Program.t ->
  locals:Psg_build.local array ->
  filters:Regset.t array ->
  routine_art option array * bool array
(** Decide, after the front-end rebuild, which routines' cached
    {e solutions} are exact: the plan's clean artifacts, plus every donor
    whose rebuilt local fragment, filter, exported flag and main-ness
    are unchanged — an identical equation system has an identical least
    fixpoint.  Returns the solution-clean artifacts (the planners' input)
    and the final exit-seed set: a donor that fails the lift adds its
    cached callees, whose exits may have lost a return-link
    contribution.  [locals] and [filters] are the post-rebuild arrays for
    {e all} routines. *)

val phase1_plan :
  Psg.t ->
  sols:routine_art option array ->
  node_offset:int array ->
  call_offset:int array ->
  Phase1.warm
(** The phase-1 invalidation cone and restores for a stitched PSG, given
    {!solutions}' verdict: the closure of the solution-dirty routines'
    nodes under reversed flow/call-return edges, widened to the call
    nodes of every caller of a routine whose primary entry enters the
    cone (the §3.2 summary import). *)

val phase2_plan :
  Psg.t ->
  sols:routine_art option array ->
  exit_seeds:bool array ->
  node_offset:int array ->
  call_offset:int array ->
  p1_cr:int array ->
  Phase2.warm
(** The phase-2 cone and restore.  Seeds: the solution-dirty routines'
    nodes, the call nodes whose just-converged call-return labels
    [p1_cr] differ from the cached ones, and the exit nodes of
    [exit_seeds] routines; closed under reversed edges plus the
    return-to-exit links.  Call after phase 1 (and after
    {!snapshot_phase1}). *)

val snapshot_phase1 : Psg.t -> int array * int array
(** Packed copies of the per-node solutions (6 words per node) and
    per-call call-return edge labels (6 words per call); take it between
    the phases, before phase 2 overwrites MAY-USE. *)

val snapshot_live : Psg.t -> int array
(** Packed per-node MAY-USE copies (2 words per node); take it after
    phase 2. *)

val capture :
  cfgs:Cfg.t array ->
  defuses:Defuse.t array ->
  filters:Regset.t array ->
  locals:Psg_build.local array ->
  p1_nodes:int array ->
  p1_cr:int array ->
  p2_live:int array ->
  node_offset:int array ->
  call_offset:int array ->
  routine_art array
(** Slice the whole-program arrays into per-routine artifacts — the
    snapshot a store persists for the next run. *)
