(** The SCC-condensation schedule shared by both interprocedural phases.

    Both phase fixpoints propagate information along the routine call
    graph — callee to caller in phase 1, caller to callee in phase 2 —
    and every PSG edge connects two nodes of the {e same} routine, so the
    cross-routine dependence structure of either phase is exactly the
    call-graph condensation.  Processing components in topological order
    (reversed for phase 2) and iterating only {e inside} each component
    replaces the global FIFO sweeps with one bounded fixpoint per
    component: cross-component inputs are already converged when a
    component starts, by the schedule.

    Because each phase's equation system is monotone over a finite
    lattice, its fixpoint is unique — so the values a component converges
    to do not depend on when or where it ran.  That is what makes the
    parallel mode (independent components dispatched to pool workers as
    their dependencies complete) bit-identical to the serial one, and
    both to the FIFO baseline. *)

open Spike_support

type t = {
  scc : Scc.t;  (** over routine indices, from {!Psg.call_scc} *)
  comp_of_node : int array;  (** PSG node id [->] component *)
  comp_nodes_p1 : int array array;
      (** component [->] its node ids in a weak topological order
          (Bourdoncle) of the phase 1 dependency graph — a node reads its
          outgoing flow-edge targets, and a call node its callee entry
          nodes.  Trivial elements appear reads-first, so one pass
          recomputes each exactly once.  An intra-routine dependency knot
          (CFG loop nest) appears as its DFS-root head followed by the
          recursively decomposed remainder, and is iterated until the
          head is stable — cycles avoiding the head lie in nested knots,
          stabilized recursively.  A multi-routine knot (recursion spine)
          appears as a flat region — its routines callee-first, each
          recursively decomposed — swept until a pass pops nothing.
          Readers of a knot then see its final values exactly once. *)
  comp_cend_p1 : int array array;
      (** parallel to [comp_nodes_p1.(c)]: [cend.(i) = 0] for a trivial
          element; [cend.(i) = e] when a head-knot at [i] spans the slice
          [i, e) (nested knots carry their own entries) *)
  comp_flat_p1 : int array array;
      (** component [->] its flat regions as [start; end)] pairs
          flattened — [[|s0; e0; s1; e1; ...|]] — ascending and mutually
          disjoint, though head-knots may nest inside a region *)
  comp_nodes_p2 : int array array;
      (** the same order for the phase 2 dependency graph (flow-edge
          targets, and caller return nodes at exit nodes) *)
  comp_cend_p2 : int array array;
  comp_flat_p2 : int array array;
  comp_calls : int array array;
      (** component [->] indices into [Psg.calls] of the call sites whose
          call node lives in the component, ascending *)
  pool : Pool.t option;  (** execute components on this pool when given *)
}

val make : ?pool:Pool.t -> Psg.t -> t
(** Build the schedule for a PSG.  O(nodes + calls + call-graph SCC).
    [pool] enables the parallel executor; omitted (or a 1-job pool), the
    components run on the calling domain. *)

val jobs : t -> int
(** Parallelism degree the executor will use (1 without a pool). *)

val run : t -> rev:bool -> dirty:(int -> bool) -> (Bytes.t -> int -> int) -> int
(** [run t ~rev ~dirty f] executes [f scratch c] once for every component
    [c] with [dirty c] true — in topological order ([rev:false],
    successors first: phase 1) or reverse ([rev:true]: phase 2) — and
    returns the sum of the results (the phase's iteration total).

    [scratch] is an all-zero mark bitset of [Psg.node_count] bytes for
    the component's rank-ordered sweeps; [f] must return it all-zero (a
    drained fixpoint does).  With a multi-domain pool, components whose
    schedule predecessors have all finished run concurrently on the
    pool's workers, each with its own scratch bitset; clean components
    complete instantly but still release their dependents.  [f] must then
    confine its writes to the component's own nodes and call-return edges
    — the phase drivers do — and the sum is accumulated atomically.  Each
    component's drain is deterministic, so the sum is identical for every
    [jobs] value. *)
