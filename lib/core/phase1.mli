(** Phase 1 of the interprocedural dataflow (paper §3.2).

    Computes, for every PSG node, the registers that may be used, may be
    defined, and must be defined along paths from the node's location to
    the end of its routine — including the effect of every (transitive)
    call, propagated callee-to-caller across call-return edges.  On
    convergence the sets at a routine's primary entry node are exactly the
    registers [call-used], [call-killed] and [call-defined] by a call to
    the routine.

    Deviation from the paper's Figure 8, documented in DESIGN.md: at a node
    with several outgoing edges the MAY sets combine by union and MUST-DEF
    by intersection (the figure's literal equations union everything, which
    would over-approximate must-definedness).

    The §3.4 callee-saved filter is applied each time an entry node's sets
    are recomputed, and the call instruction's own effect is folded into
    the call-return edge label, so the summary seen by a caller is
    [call ∘ callee]. *)

type warm = {
  cone : bool array;
      (** node id [->] the node is inside the invalidation cone: it gets
          the cold initialization and is seeded onto the worklist *)
  restore : int array;
      (** previously converged (MAY-USE, MAY-DEF, MUST-DEF), packed as six
          32-bit halves per node id, installed verbatim for nodes outside
          the cone *)
  cr_restore : int array;
      (** previously converged call-return edge labels, packed as six
          halves per call index, installed when the call node is outside
          the cone *)
}
(** A warm start.  Soundness precondition (established by
    {!Warm.phase1_plan}): the cone is closed under phase-1 influence — if a
    node's recomputation reads another node's sets (through an outgoing
    edge, or an entry node through a call-return edge of a caller), the
    reader is in the cone whenever the read node is.  Values outside the
    cone must be the converged solution of a PSG in which those nodes, and
    everything they transitively read, are unchanged.  Under that
    precondition the fixpoint reached is bit-identical to a cold run: cone
    nodes restart from the lattice bottom and outside nodes already hold
    their (unique, least) fixpoint values. *)

val run : ?warm:warm -> ?sched:Sched.t -> Psg.t -> int
(** Runs to convergence, mutating the node sets and the call-return edge
    labels in place (flow edge labels are never modified).  Returns the
    number of node recomputations performed, a diagnostic for the
    convergence behaviour.  [warm] restricts initialization and worklist
    seeding to the invalidation cone; omitted, every node is (re)computed
    from scratch.

    [sched] runs the fixpoint one call-graph SCC at a time in callee-first
    topological order (see {!Sched}): each component's call-return edges
    are seeded from already-converged callee summaries, so iteration is
    confined to intra-component cycles.  With a multi-domain pool in the
    schedule, independent components run concurrently.  The fixpoint
    reached is bit-identical to the FIFO baseline ([sched] omitted) in
    every mode — the equation system is monotone over a finite lattice, so
    its solution is unique and schedule-independent.  Composes with
    [warm]: only components intersecting the cone are executed. *)
