open Spike_support
open Spike_isa

(* Compose the call instruction's own effect with a callee summary: the
   caller observes the call's definitions first (they shadow callee uses),
   then the callee's summary. *)
let fold_call_effect ~call_def ~call_use ~may_use ~may_def ~must_def =
  ( Regset.union call_use (Regset.diff may_use call_def),
    Regset.union call_def may_def,
    Regset.union call_def must_def )

let unknown_assumption ~call_def ~call_use =
  fold_call_effect ~call_def ~call_use
    ~may_use:Calling_standard.unknown_call_used
    ~may_def:Calling_standard.unknown_call_killed
    ~must_def:Calling_standard.unknown_call_defined

(* Observability.  The iteration counter is flushed once from the local
   total, so the metrics snapshot matches [Analysis.result] exactly; the
   per-kind pop counters and push counter are bumped in the loop behind
   the registry's enabled flag.  All counters accumulate in per-domain
   cells, so the totals are identical whatever the parallelism. *)
let c_iterations = Spike_obs.Metrics.counter "phase1.iterations"
let c_pushes = Spike_obs.Metrics.counter "phase1.worklist.pushes"
let c_cr_updates = Spike_obs.Metrics.counter "phase1.cr_edge_updates"

let pop_counters =
  [|
    Spike_obs.Metrics.counter "phase1.pops.entry";
    Spike_obs.Metrics.counter "phase1.pops.exit";
    Spike_obs.Metrics.counter "phase1.pops.call";
    Spike_obs.Metrics.counter "phase1.pops.return";
    Spike_obs.Metrics.counter "phase1.pops.branch";
    Spike_obs.Metrics.counter "phase1.pops.unknown_exit";
  |]

let kind_index : Psg.node_kind -> int = function
  | Psg.Entry _ -> 0
  | Psg.Exit _ -> 1
  | Psg.Call _ -> 2
  | Psg.Return _ -> 3
  | Psg.Branch _ -> 4
  | Psg.Unknown_exit _ -> 5

type warm = {
  cone : bool array;
  restore : int array;  (** packed, 6 words per node *)
  cr_restore : int array;  (** packed, 6 words per call *)
}

let cold_init (node : Psg.node) =
  match node.kind with
  | Psg.Exit _ ->
      node.may_use <- Regset.empty;
      node.may_def <- Regset.empty;
      node.must_def <- Regset.empty
  | Psg.Unknown_exit _ ->
      (* All bets are off past an unknown jump: everything may be used
         and clobbered, nothing is guaranteed defined. *)
      node.may_use <- Calling_standard.unknown_jump_live;
      node.may_def <- Calling_standard.all_allocatable;
      node.must_def <- Regset.empty
  | Psg.Entry _ | Psg.Call _ | Psg.Return _ | Psg.Branch _ ->
      node.may_use <- Regset.empty;
      node.may_def <- Regset.empty;
      node.must_def <- Regset.full

let cold_cr_init (edges : Psg.edge array) (info : Psg.call_info) =
  let e = edges.(info.cr_edge) in
  match info.targets with
  | None ->
      let may_use, may_def, must_def =
        unknown_assumption ~call_def:info.call_def ~call_use:info.call_use
      in
      e.e_may_use <- may_use;
      e.e_may_def <- may_def;
      e.e_must_def <- must_def
  | Some _ ->
      (* Nothing known about the callee yet: only the call's own
         effect.  MUST-DEF starts at top and shrinks. *)
      e.e_may_use <- info.call_use;
      e.e_may_def <- info.call_def;
      e.e_must_def <- Regset.full

let full = 0xFFFF_FFFF

(* Recompute [node]'s three sets from its outgoing edges (unboxed meet:
   union for the MAY halves, intersection for MUST-DEF); returns whether
   anything changed.  Reads only the node's own routine — every PSG edge
   is intra-routine — so concurrent recomputations in different call-graph
   components never race. *)
let recompute (psg : Psg.t) (node : Psg.node) =
  let nodes = psg.nodes and edges = psg.edges in
  let out = psg.out_edges.(node.id) in
  let n_out = Array.length out in
  if n_out = 0 then false
  else begin
    let mu_lo = ref 0 and mu_hi = ref 0 in
    let md_lo = ref 0 and md_hi = ref 0 in
    let sd_lo = ref full and sd_hi = ref full in
    for k = 0 to n_out - 1 do
      let e = edges.(Array.unsafe_get out k) in
      let dst = nodes.(e.dst) in
      let e_sd_lo = Regset.lo_bits e.e_must_def
      and e_sd_hi = Regset.hi_bits e.e_must_def in
      mu_lo :=
        !mu_lo
        lor Regset.lo_bits e.e_may_use
        lor (Regset.lo_bits dst.may_use land lnot e_sd_lo);
      mu_hi :=
        !mu_hi
        lor Regset.hi_bits e.e_may_use
        lor (Regset.hi_bits dst.may_use land lnot e_sd_hi);
      md_lo := !md_lo lor Regset.lo_bits e.e_may_def lor Regset.lo_bits dst.may_def;
      md_hi := !md_hi lor Regset.hi_bits e.e_may_def lor Regset.hi_bits dst.may_def;
      sd_lo := !sd_lo land (e_sd_lo lor Regset.lo_bits dst.must_def);
      sd_hi := !sd_hi land (e_sd_hi lor Regset.hi_bits dst.must_def)
    done;
    (* §3.4: a routine's saved-and-restored callee-saved registers are
       invisible to its callers. *)
    (match node.kind with
    | Psg.Entry { routine; _ } ->
        let mask = psg.entry_filter.(routine) in
        let m_lo = lnot (Regset.lo_bits mask) and m_hi = lnot (Regset.hi_bits mask) in
        mu_lo := !mu_lo land m_lo;
        mu_hi := !mu_hi land m_hi;
        md_lo := !md_lo land m_lo;
        md_hi := !md_hi land m_hi;
        sd_lo := !sd_lo land m_lo;
        sd_hi := !sd_hi land m_hi
    | Psg.Exit _ | Psg.Call _ | Psg.Return _ | Psg.Branch _ | Psg.Unknown_exit _ -> ());
    let changed =
      !mu_lo <> Regset.lo_bits node.may_use
      || !mu_hi <> Regset.hi_bits node.may_use
      || !md_lo <> Regset.lo_bits node.may_def
      || !md_hi <> Regset.hi_bits node.may_def
      || !sd_lo <> Regset.lo_bits node.must_def
      || !sd_hi <> Regset.hi_bits node.must_def
    in
    if changed then begin
      node.may_use <- Regset.of_bits ~lo:!mu_lo ~hi:!mu_hi;
      node.may_def <- Regset.of_bits ~lo:!md_lo ~hi:!md_hi;
      node.must_def <- Regset.of_bits ~lo:!sd_lo ~hi:!sd_hi
    end;
    changed
  end

let run ?warm ?sched (psg : Psg.t) =
  let n = Psg.node_count psg in
  let nodes = psg.nodes and edges = psg.edges in
  let in_cone =
    match warm with None -> fun _ -> true | Some w -> fun id -> w.cone.(id)
  in
  (* --- Initialization ------------------------------------------------- *)
  let () =
    Spike_obs.Trace.with_span "phase1.init" @@ fun () ->
    Array.iter
      (fun (node : Psg.node) ->
        if in_cone node.id then cold_init node
        else
          match warm with
          | Some w ->
              let o = node.id * 6 in
              node.may_use <- Regset.of_bits ~lo:w.restore.(o) ~hi:w.restore.(o + 1);
              node.may_def <-
                Regset.of_bits ~lo:w.restore.(o + 2) ~hi:w.restore.(o + 3);
              node.must_def <-
                Regset.of_bits ~lo:w.restore.(o + 4) ~hi:w.restore.(o + 5)
          | None -> assert false)
      nodes;
    Array.iteri
      (fun i (info : Psg.call_info) ->
        if in_cone info.call_node then cold_cr_init edges info
        else
          match warm with
          | Some w ->
              let e = edges.(info.cr_edge) in
              let o = i * 6 in
              e.e_may_use <-
                Regset.of_bits ~lo:w.cr_restore.(o) ~hi:w.cr_restore.(o + 1);
              e.e_may_def <-
                Regset.of_bits ~lo:w.cr_restore.(o + 2) ~hi:w.cr_restore.(o + 3);
              e.e_must_def <-
                Regset.of_bits ~lo:w.cr_restore.(o + 4) ~hi:w.cr_restore.(o + 5)
          | None -> assert false)
      psg.calls
  in
  let update_cr_edge (info : Psg.call_info) =
    match info.targets with
    | None -> false
    | Some targets ->
        (* Merge the summaries of every target the call may reach: entry
           nodes for routines of the program, supplied classes for
           external code (§3.5). *)
        let may_use = ref Regset.empty
        and may_def = ref Regset.empty
        and must_def = ref Regset.full in
        List.iter
          (fun target ->
            match target with
            | Psg.Target_routine r ->
                let entry = nodes.(Psg.primary_entry_node psg r) in
                may_use := Regset.union !may_use entry.may_use;
                may_def := Regset.union !may_def entry.may_def;
                must_def := Regset.inter !must_def entry.must_def
            | Psg.Target_external c ->
                may_use := Regset.union !may_use c.Psg.x_used;
                may_def := Regset.union !may_def c.Psg.x_killed;
                must_def := Regset.inter !must_def c.Psg.x_defined)
          targets;
        let may_use, may_def, must_def =
          fold_call_effect ~call_def:info.call_def ~call_use:info.call_use
            ~may_use:!may_use ~may_def:!may_def ~must_def:!must_def
        in
        let e = edges.(info.cr_edge) in
        if
          Regset.equal e.e_may_use may_use
          && Regset.equal e.e_may_def may_def
          && Regset.equal e.e_must_def must_def
        then false
        else begin
          Spike_obs.Metrics.incr c_cr_updates;
          e.e_may_use <- may_use;
          e.e_may_def <- may_def;
          e.e_must_def <- must_def;
          true
        end
  in
  (* A changed read can only alter a reader whose recomputation would
     gain MAY bits or lose MUST-DEF bits through that edge — the meet is
     a union (MAY) or intersection (MUST-DEF) over edges, so a
     contribution already absorbed by the reader's current sets is a
     provable no-op re-pop.  (An entry reader additionally masks the
     contribution, which only shrinks it: the test stays sound, merely
     pruning less.)  The SCC drains use this to stop re-marking readers
     once the bits circulating a dependency knot have saturated. *)
  let affects (e : Psg.edge) =
    let dst = nodes.(e.dst) and reader = nodes.(e.src) in
    let e_sd_lo = Regset.lo_bits e.e_must_def
    and e_sd_hi = Regset.hi_bits e.e_must_def in
    let mu_lo =
      Regset.lo_bits e.e_may_use
      lor (Regset.lo_bits dst.may_use land lnot e_sd_lo)
    and mu_hi =
      Regset.hi_bits e.e_may_use
      lor (Regset.hi_bits dst.may_use land lnot e_sd_hi)
    and md_lo = Regset.lo_bits e.e_may_def lor Regset.lo_bits dst.may_def
    and md_hi = Regset.hi_bits e.e_may_def lor Regset.hi_bits dst.may_def
    and sd_lo = e_sd_lo lor Regset.lo_bits dst.must_def
    and sd_hi = e_sd_hi lor Regset.hi_bits dst.must_def in
    mu_lo land lnot (Regset.lo_bits reader.may_use) <> 0
    || mu_hi land lnot (Regset.hi_bits reader.may_use) <> 0
    || md_lo land lnot (Regset.lo_bits reader.may_def) <> 0
    || md_hi land lnot (Regset.hi_bits reader.may_def) <> 0
    || Regset.lo_bits reader.must_def land lnot sd_lo <> 0
    || Regset.hi_bits reader.must_def land lnot sd_hi <> 0
  in
  match sched with
  | Some s ->
      (* --- SCC-condensation schedule --------------------------------------
         Components of the call-graph condensation in topological order,
         callees first: when a component starts, every summary it imports
         (entry nodes of callee components) is already converged, so its
         call-return edges are seeded once with final values and the
         fixpoint only iterates on intra-component cycles — CFG loops and
         mutual recursion.  A changed entry node re-queues only the
         component's own call sites; cross-component callers see the
         converged entry when their component seeds.

         The drain follows Bourdoncle's recursive iteration strategy over
         the weak topological order in [comp_nodes_p1]: marked nodes pop
         in WTO order; on entering a knot its head pos is stacked, and
         when the sweep reaches the knot's end with the head re-marked —
         only a dependency cycle, which must pass through the head, can
         re-mark it — the sweep resumes from the head.  Inner knots
         therefore converge before outer ones re-test, and a knot's
         readers pop exactly once, seeing final values, instead of once
         per lattice-ascent step of the knot.  A FIFO drain instead
         re-pops a node once per wave of its upstream changes — that is
         the iteration count gap the bench records. *)
      let comp_of_node = s.Sched.comp_of_node in
      let dirty =
        match warm with
        | None -> fun _ -> true
        | Some w ->
            (* Only components intersecting the invalidation cone can
               change; the rest keep their restored solutions, and the
               schedule skips them. *)
            let d = Array.make s.Sched.scc.Scc.count false in
            Array.iteri (fun id inside -> if inside then d.(comp_of_node.(id)) <- true) w.cone;
            fun c -> d.(c)
      in
      let run_comp marked c =
        let order = s.Sched.comp_nodes_p1.(c) in
        let cend = s.Sched.comp_cend_p1.(c) in
        let len = Array.length order in
        let iterations = ref 0 in
        let mark id =
          if Bytes.unsafe_get marked id = '\000' then begin
            Spike_obs.Metrics.incr c_pushes;
            Bytes.unsafe_set marked id '\001'
          end
        in
        Array.iter
          (fun ci ->
            let info = psg.calls.(ci) in
            if in_cone info.call_node then ignore (update_cr_edge info))
          s.Sched.comp_calls.(c);
        Array.iter
          (fun id ->
            match nodes.(id).kind with
            | Psg.Exit _ | Psg.Unknown_exit _ -> ()
            | Psg.Entry _ | Psg.Call _ | Psg.Return _ | Psg.Branch _ ->
                if in_cone id then mark id)
          order;
        (* Pop a marked node: recompute, mark its readers. *)
        let process id =
          Bytes.unsafe_set marked id '\000';
          incr iterations;
          let node = nodes.(id) in
          if Spike_obs.Metrics.enabled () then
            Spike_obs.Metrics.incr pop_counters.(kind_index node.kind);
          if recompute psg node then begin
            let in_edges = psg.in_edges.(id) in
            for j = 0 to Array.length in_edges - 1 do
              let e = edges.(Array.unsafe_get in_edges j) in
              if affects e then mark e.src
            done;
            match node.kind with
            | Psg.Entry { routine; _ } ->
                List.iter
                  (fun call_index ->
                    let info = psg.calls.(call_index) in
                    if comp_of_node.(info.call_node) = c then
                      if update_cr_edge info && affects edges.(info.cr_edge)
                      then mark info.call_node)
                  psg.callers_of.(routine)
            | Psg.Exit _ | Psg.Call _ | Psg.Return _ | Psg.Branch _
            | Psg.Unknown_exit _ ->
                ()
          end
        in
        (* WTO interpreter.  The stack holds the open structures:
           head-knots (snap = -1; reaching the end with the head
           re-marked — only a cycle through the head re-marks it —
           resumes the sweep after the head) and flat regions (snap =
           pop count at last entry; pops since mean a cross-routine mark
           went backward, so the region sweeps again).  [fi] walks the
           flat-region list; re-sweeps rewind it so interior regions
           re-enter. *)
        let flat = s.Sched.comp_flat_p1.(c) in
        let stk_pos = Array.make (max len 1) 0 in
        let stk_end = Array.make (max len 1) 0 in
        let stk_snap = Array.make (max len 1) 0 in
        let stk_fi = Array.make (max len 1) 0 in
        let sp = ref 0 in
        let fi = ref 0 in
        let inflat = ref 0 in
        let k = ref 0 in
        while !k < len || !sp > 0 do
          if !sp > 0 && !k = Array.unsafe_get stk_end (!sp - 1) then begin
            let t = !sp - 1 in
            let pos = Array.unsafe_get stk_pos t in
            if Array.unsafe_get stk_snap t < 0 then begin
              let hid = Array.unsafe_get order pos in
              if Bytes.unsafe_get marked hid = '\001' then begin
                process hid;
                fi := Array.unsafe_get stk_fi t;
                k := pos + 1
              end
              else decr sp
            end
            else if !iterations > Array.unsafe_get stk_snap t then begin
              stk_snap.(t) <- !iterations;
              fi := Array.unsafe_get stk_fi t;
              k := pos
            end
            else begin
              decr sp;
              decr inflat
            end
          end
          else if
            2 * !fi < Array.length flat && Array.unsafe_get flat (2 * !fi) = !k
          then begin
            stk_pos.(!sp) <- !k;
            stk_end.(!sp) <- Array.unsafe_get flat ((2 * !fi) + 1);
            stk_snap.(!sp) <- !iterations;
            incr fi;
            stk_fi.(!sp) <- !fi;
            incr sp;
            incr inflat
          end
          else begin
            let i = !k in
            let ce = Array.unsafe_get cend i in
            let id = Array.unsafe_get order i in
            if Bytes.unsafe_get marked id = '\001' then process id;
            if ce = 0 || !inflat > 0 then incr k
            else begin
              stk_pos.(!sp) <- i;
              stk_end.(!sp) <- ce;
              stk_snap.(!sp) <- -1;
              stk_fi.(!sp) <- !fi;
              incr sp;
              k := i + 1
            end
          end
        done;
        !iterations
      in
      let iterations =
        Spike_obs.Trace.with_span "phase1.fixpoint" @@ fun () ->
        Sched.run s ~rev:false ~dirty run_comp
      in
      Spike_obs.Metrics.add c_iterations iterations;
      iterations
  | None ->
      (* --- FIFO baseline ---------------------------------------------------
         One global worklist; kept as the measurement baseline for the
         SCC schedule and exercised by the equivalence tests. *)
      let worklist = Workset.create n in
      let push id =
        Spike_obs.Metrics.incr c_pushes;
        Workset.push worklist id
      in
      (* Seed with everything that has outgoing edges (sinks are fixed), in
         callee-before-caller routine order and sink-to-source order within a
         routine, so the first sweep already approximates the fixpoint.  The
         result is order-independent (each pop recomputes its node from
         scratch), so when a warm cone covers only a sliver of the graph the
         ordering work is skipped and the cone is pushed in id order. *)
      let small_cone =
        match warm with
        | None -> false
        | Some w ->
            let c = ref 0 in
            Array.iter (fun b -> if b then incr c) w.cone;
            !c * 8 < n
      in
      if small_cone then
        Array.iter
          (fun (node : Psg.node) ->
            match node.kind with
            | Psg.Exit _ | Psg.Unknown_exit _ -> ()
            | Psg.Entry _ | Psg.Call _ | Psg.Return _ | Psg.Branch _ ->
                if in_cone node.id then push node.id)
          nodes
      else begin
        let nodes_by_routine =
          Array.make (Spike_ir.Program.routine_count psg.program) []
        in
        Array.iter
          (fun (node : Psg.node) ->
            match node.kind with
            | Psg.Exit _ | Psg.Unknown_exit _ -> ()
            | Psg.Entry _ | Psg.Call _ | Psg.Return _ | Psg.Branch _ ->
                let r = Psg.node_routine node.kind in
                nodes_by_routine.(r) <- node.id :: nodes_by_routine.(r))
          nodes;
        List.iter
          (fun r ->
            List.iter (fun id -> if in_cone id then push id) nodes_by_routine.(r))
          (Psg.callee_first_order psg)
      end;
      let iterations = ref 0 in
      (* Seed every resolved call-return edge once: external-only target lists
         have no entry node to trigger the first update.  Outside a warm cone
         the edge was restored to its converged label and every target entry
         it reads is converged too (an in-cone target entry forces the call
         node into the cone), so the recomputation would be a no-op. *)
      Array.iter
        (fun (info : Psg.call_info) ->
          if in_cone info.call_node then ignore (update_cr_edge info))
        psg.calls;
      let () =
        Spike_obs.Trace.with_span "phase1.fixpoint" @@ fun () ->
        while not (Workset.is_empty worklist) do
          let id = Workset.pop worklist in
          incr iterations;
          let node = nodes.(id) in
          if Spike_obs.Metrics.enabled () then
            Spike_obs.Metrics.incr pop_counters.(kind_index node.kind);
          if recompute psg node then begin
            let in_edges = psg.in_edges.(id) in
            for k = 0 to Array.length in_edges - 1 do
              push edges.(Array.unsafe_get in_edges k).src
            done;
            match node.kind with
            | Psg.Entry { routine; _ } ->
                (* The routine's summary changed: refresh every call-return
                   edge that imports it. *)
                List.iter
                  (fun call_index ->
                    let info = psg.calls.(call_index) in
                    if update_cr_edge info then push info.call_node)
                  psg.callers_of.(routine)
            | Psg.Exit _ | Psg.Call _ | Psg.Return _ | Psg.Branch _
            | Psg.Unknown_exit _ ->
                ()
          end
        done
      in
      Spike_obs.Metrics.add c_iterations !iterations;
      !iterations
