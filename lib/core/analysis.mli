(** The end-to-end interprocedural dataflow analysis driver.

    Runs the five stages the paper times separately (Figure 13):
    {ol {- {b CFG Build} — per-routine control-flow graphs;}
        {- {b Initialization} — per-block DEF/UBD sets and the §3.4
           callee-saved save/restore detection;}
        {- {b PSG Build} — program summary graph nodes and labelled edges;}
        {- {b Phase 1} — call-used / call-defined / call-killed;}
        {- {b Phase 2} — live-at-entry / live-at-exit.}}

    Stage elapsed times accumulate in the result's {!Spike_support.Timer.t}
    under the stage-name constants below.  When {!Spike_obs.Trace} (resp.
    {!Spike_obs.Metrics}) collection is enabled, each stage is also
    recorded as a span — with per-routine sub-spans on the lane of the
    pool domain that ran them — and the registry accumulates worklist,
    per-edge-dataflow, PSG-composition and heap-gauge metrics; the
    [phase1.iterations] / [phase2.iterations] counters match the
    [phase1_iterations] / [phase2_iterations] fields exactly.  Disabled
    collection costs one branch per probe. *)

open Spike_support
open Spike_ir
open Spike_cfg

type t = {
  program : Program.t;
  cfgs : Cfg.t array;
  defuses : Defuse.t array;
  psg : Psg.t;
  call_classes : Summary.call_class array;  (** indexed by routine *)
  summaries : Summary.t array;  (** indexed by routine *)
  timer : Timer.t;
  phase1_iterations : int;
  phase2_iterations : int;
  branch_nodes : bool;  (** configuration, for {!rerun} *)
  externals : string -> Psg.external_class option;
  callee_saved_filter : bool;
  jobs : int;
      (** parallelism degree the front-end stages and (under the SCC
          schedule) the phase fixpoints ran with *)
  phase_sched : [ `Fifo | `Scc ];  (** configuration, for {!rerun} *)
  reused_routines : int;
      (** routines whose front-end artifacts came from the warm plan *)
  warm_capture : Warm.routine_art array option;
      (** per-routine artifacts of this run, when [capture] was requested *)
}

val stage_cfg_build : string
val stage_init : string
val stage_psg_build : string

val stage_sched : string
(** Building the {!Sched} condensation schedule (SCC mode only). *)

val stage_phase1 : string
val stage_phase2 : string

val run :
  ?branch_nodes:bool ->
  ?externals:(string -> Psg.external_class option) ->
  ?callee_saved_filter:bool ->
  ?jobs:int ->
  ?phase_sched:[ `Fifo | `Scc ] ->
  ?warm:Warm.plan ->
  ?capture:bool ->
  Program.t ->
  t
(** Analyse a whole program.  [branch_nodes] (default [true]) controls
    §3.6 branch-node insertion.  [externals] supplies §3.5 summaries for
    call targets outside the image (shared libraries); uncovered names get
    the calling-standard assumption.  The program must validate
    ({!Spike_ir.Validate.check}); behaviour on ill-formed programs is
    unspecified.  [callee_saved_filter] (default [true]) controls the §3.4
    filter — disabling it is an ablation that shows how much precision the
    save/restore transparency buys.

    [jobs] (default {!Spike_support.Pool.default_jobs}, i.e.
    [Domain.recommended_domain_count] clamped; explicit values are clamped
    to [[1, 64]]) is the number of domains the per-routine front-end
    stages — CFG build, initialization and the PSG local pass — run on,
    and, under the SCC schedule, the number of domains independent
    call-graph components of the phase 1 / phase 2 fixpoints are
    dispatched to.  Results are bit-identical for every [jobs] value.
    With [jobs > 1], [externals] is called concurrently and must be
    thread-safe.  Stage times recorded in [timer] are wall-clock, so a
    parallel stage reports its elapsed time, not the sum over domains.

    [phase_sched] (default [`Scc]) selects the phase fixpoint driver:
    [`Scc] processes call-graph SCCs in condensation order ({!Sched}) and
    is both faster (callee summaries are converged before any caller
    reads them) and parallel; [`Fifo] is the single-worklist baseline,
    kept for measurement and differential testing.  Both converge to the
    same unique fixpoint, so summaries are bit-identical across drivers
    and [jobs] values.

    [warm] supplies a {!Warm.plan} of per-routine artifacts from an
    earlier run of the {e same} program configuration (modulo the edits
    that dirtied some routines): clean routines skip CFG build,
    initialization and the PSG local pass, and both phases re-converge
    only their invalidation cones.  Results are guaranteed bit-identical
    to a cold run; an all-cold plan {!Warm.cold} {e is} a cold run.  The
    caller is responsible for only reusing artifacts whose inputs are
    unchanged — that is what {!Spike_store} fingerprints enforce.

    [capture] (default [false]) additionally snapshots this run's
    per-routine artifacts into [warm_capture], ready to persist. *)

val rerun : t -> Program.t -> t
(** Re-analyse a transformed program under the same configuration
    (branch nodes, external summaries) — what the optimizer uses between
    passes. *)

val summary_of : t -> string -> Summary.t option
(** Summary of a routine by name. *)

val site_class : t -> Psg.call_info -> Summary.call_class

val total_seconds : t -> float
val pp_times : Format.formatter -> t -> unit
