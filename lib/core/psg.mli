(** The Program Summary Graph (paper §3.1).

    The PSG is a compact whole-program representation of control flow.  Its
    nodes are the program locations the interprocedural analysis cares
    about — routine entries and exits, call sites and their return points,
    plus branch nodes at multiway branches (§3.6) and pseudo-exits at
    indirect jumps with unknown targets (§3.5).  Flow-summary edges connect
    two nodes of the same routine when a control-flow path runs between
    their locations without crossing another node's location; each such
    edge is labelled with the MUST-DEF, MAY-DEF and MAY-USE sets of the
    paths it summarizes.  A call-return edge connects each call node to its
    return node; its label starts empty and is filled during phase 1 with
    the callee's summary composed with the call instruction's own register
    effect.

    Node dataflow sets are scratch space for the currently-running phase:
    {!Phase1} leaves call-used / call-defined / call-killed in the entry
    nodes; {!Phase2} then overwrites [may_use] with liveness.  The
    {!Analysis} driver extracts summaries between the phases. *)

open Spike_support
open Spike_isa
open Spike_ir

type node_kind =
  | Entry of { routine : int; label : string }
      (** routine entrance; location = before its first instruction *)
  | Exit of { routine : int; block : int }
      (** [ret]; location = after the return executes *)
  | Call of { routine : int; block : int }
      (** location = immediately before the call instruction *)
  | Return of { routine : int; call_block : int; block : int }
      (** the call's return point; location = start of [block] *)
  | Branch of { routine : int; block : int }
      (** multiway branch; location = after the branch dispatches *)
  | Unknown_exit of { routine : int; block : int }
      (** indirect jump with unknown targets; all registers live here *)

type node = {
  id : int;
  kind : node_kind;
  mutable may_use : Regset.t;
  mutable may_def : Regset.t;
  mutable must_def : Regset.t;
}

type edge_kind = Flow | Call_return

type edge = {
  edge_id : int;
  src : int;
  dst : int;
  ekind : edge_kind;
  mutable e_may_use : Regset.t;
  mutable e_may_def : Regset.t;
  mutable e_must_def : Regset.t;
}

type external_class = {
  x_used : Regset.t;
  x_defined : Regset.t;
  x_killed : Regset.t;
}
(** A summary supplied from outside the analysed image — the paper's §3.5
    suggestion that the compiler or linker hand Spike exact information
    about code it cannot see (shared-library routines). *)

type call_target =
  | Target_routine of int  (** a routine of the program, by index *)
  | Target_external of external_class
      (** code outside the image with a supplied summary *)

type call_info = {
  call_node : int;
  return_node : int;
  cr_edge : int;  (** the call-return edge's id *)
  callee : Insn.callee;
  targets : call_target list option;
      (** what the call may reach; [None] = unknown, analysed under the
          calling-standard assumption *)
  call_def : Regset.t;  (** the call instruction's own definitions *)
  call_use : Regset.t;  (** the call instruction's own uses *)
}

type t = {
  program : Program.t;
  nodes : node array;
  edges : edge array;
  out_edges : int array array;  (** node id [->] edge ids *)
  in_edges : int array array;
  calls : call_info array;
  callers_of : int list array;
      (** routine index [->] indices into [calls] of sites that may target
          it *)
  entry_nodes : int list array;
      (** routine index [->] entry node ids, in declaration order (head =
          primary entry) *)
  exit_nodes : int list array;  (** routine index [->] exit node ids *)
  unknown_exit_nodes : int list array;
  entry_filter : Regset.t array;
      (** routine index [->] callee-saved registers saved and restored by
          the routine, removed from its exported summary (§3.4) *)
}

val node_count : t -> int
val edge_count : t -> int
val flow_edge_count : t -> int

val primary_entry_node : t -> int -> int
(** [primary_entry_node psg r] is the entry node targeted by calls to
    routine [r]. *)

val node_routine : node_kind -> int

val call_graph : t -> int array array
(** The resolved routine call graph: [call_graph psg].(r) lists the
    distinct routines that calls in routine [r] may target (externals and
    unresolved indirect calls excluded), sorted ascending.  Successor
    lists are deduplicated across call sites. *)

val call_scc : t -> Scc.t
(** SCC decomposition of {!call_graph} — the schedule skeleton for both
    interprocedural phases.  Computed iteratively; safe on call chains of
    any depth. *)

val callee_first_order : t -> int list
(** Routine indices in callee-before-caller order ({!Scc.topological} of
    {!call_scc}; cycles broken by component membership).  Seeding phase
    1's worklist in this order — and phase 2's in the reverse — makes the
    fixpoints settle in near one sweep on call-graph DAGs. *)

val pp_node : t -> Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
