(** Phase 2 of the interprocedural dataflow (paper §3.3).

    Recomputes every node's MAY-USE set as {e liveness}: the registers that
    may be read before being written along some valid continuation of
    execution from the node's location.  Information flows caller-to-callee
    — a return node's live set is copied into the exit nodes of every
    routine that can return to it — while the call-return edge labels
    retained from phase 1 carry each call's use/kill summary.  Because
    those labels were computed per callee, a register live at one call's
    return site never leaks to another call site of the same routine: the
    solution is meet-over-all-valid-paths.

    On convergence, an entry node's MAY-USE is the routine's
    {e live-at-entry} set and an exit node's MAY-USE its
    {e live-at-exit} set.

    Seeds: exit nodes of exported routines get the calling standard's
    conservative live-on-return set; exit nodes of the program's main
    routine get the return-value registers; unknown-exit nodes get all
    registers (§3.5).  Phase-1 [may_def]/[must_def] node sets are left in
    place. *)

type warm = {
  cone : bool array;
      (** node id [->] the node is inside the invalidation cone: it
          restarts from its constant liveness seed and is put on the
          worklist *)
  restore : int array;
      (** previously converged liveness, packed as two 32-bit halves per
          node id, installed for nodes outside the cone *)
}
(** A warm start; see {!Phase1.warm} for the contract.  Phase-2 influence
    additionally flows from a return node to the exit nodes of every
    routine its call can target, so the cone must be closed under that
    relation too ({!Warm.phase2_plan} is). *)

val run : ?warm:warm -> ?sched:Sched.t -> Psg.t -> int
(** Runs to convergence, mutating node [may_use] sets in place.  Returns
    the number of node recomputations performed.  [warm] restricts
    initialization and worklist seeding to the invalidation cone.

    [sched] runs the fixpoint one call-graph SCC at a time in
    caller-first (reverse topological) order; see {!Phase1.run} for the
    contract — the solution is unique, so serial, parallel and FIFO modes
    all converge to bit-identical liveness. *)
