open Spike_support
open Spike_isa
open Spike_ir
open Spike_cfg

(* PSG construction is split into two passes so the expensive part scales
   with cores:

   - a {e local pass}, run per routine (in parallel when a pool is given):
     node and edge discovery, per-edge subgraph collection and the Figure-6
     dataflow that labels flow-summary edges — everything that reads only
     the routine's own CFG and DEF/UBD sets.  Ids produced here are
     routine-local, assigned in exactly the order the former single-loop
     builder produced them;

   - a short sequential {e stitch pass}: routine-local ids are offset by
     per-routine prefix sums into the global node/edge/call tables, and the
     caller lists are wired.

   Because the local pass numbers nodes, edges and calls in the same
   intra-routine order as the sequential builder, and the stitch pass
   concatenates routines in program order, the resulting PSG is
   bit-identical whatever the parallelism degree. *)

(* A source's paths begin either at the start of a block (entry and return
   nodes) or at the dispatch of a block's terminating multiway branch
   (branch nodes), i.e. after the block's own instructions. *)
type source_mode = At_block_start | After_block

type source = { src_node : int; src_block : int; mode : source_mode }

type local_edge = {
  le_kind : Psg.edge_kind;
  le_src : int;  (* routine-local node id *)
  le_dst : int;
  le_label : Edge_dataflow.sets;
}

type local_call = {
  lc_call_node : int;  (* routine-local node id *)
  lc_return_node : int;
  lc_cr_edge : int;  (* routine-local edge id *)
  lc_callee : Insn.callee;
  lc_targets : Psg.call_target list option;
  lc_call_def : Regset.t;
  lc_call_use : Regset.t;
}

type local = {
  l_kinds : Psg.node_kind array;  (* routine-local node id -> kind *)
  l_edges : local_edge array;
  l_calls : local_call array;
  l_entry : int list;  (* routine-local node ids, declaration order *)
  l_exit : int list;
  l_unknown : int list;
}

(* --- Local pass --------------------------------------------------------- *)

let local_pass ~branch_nodes ~resolve_targets r (cfg : Cfg.t) defuse =
  let nblocks = Cfg.block_count cfg in
  let kinds = Vec.create () in
  let edges = Vec.create () in
  let calls = Vec.create () in
  let entry = ref [] and exit_ = ref [] and unknown = ref [] in
  let new_node kind =
    let id = Vec.length kinds in
    Vec.push kinds kind;
    id
  in
  let new_edge le_kind le_src le_dst le_label =
    let edge_id = Vec.length edges in
    Vec.push edges { le_kind; le_src; le_dst; le_label };
    edge_id
  in
  (* --- Nodes and cut points ------------------------------------------- *)
  let sink_of_block = Array.make nblocks None in
  let sources = ref [] in
  List.iter
    (fun (label, block) ->
      let node = new_node (Psg.Entry { routine = r; label }) in
      entry := node :: !entry;
      sources := { src_node = node; src_block = block; mode = At_block_start } :: !sources)
    cfg.entry_blocks;
  Array.iter
    (fun (b : Cfg.block) ->
      match b.ending with
      | Ends_ret ->
          let node = new_node (Psg.Exit { routine = r; block = b.id }) in
          exit_ := node :: !exit_;
          sink_of_block.(b.id) <- Some node
      | Ends_jump_unknown ->
          let node = new_node (Psg.Unknown_exit { routine = r; block = b.id }) in
          unknown := node :: !unknown;
          sink_of_block.(b.id) <- Some node
      | Ends_call callee ->
          (* A call falls through, so validation guarantees a unique
             successor: the return point. *)
          assert (Array.length b.succs = 1);
          let return_block = b.succs.(0) in
          let call_node = new_node (Psg.Call { routine = r; block = b.id }) in
          let return_node =
            new_node (Psg.Return { routine = r; call_block = b.id; block = return_block })
          in
          sink_of_block.(b.id) <- Some call_node;
          sources :=
            { src_node = return_node; src_block = return_block; mode = At_block_start }
            :: !sources;
          let call_insn = cfg.routine.Routine.insns.(b.last) in
          let cr_edge =
            new_edge Psg.Call_return call_node return_node Edge_dataflow.top_must
          in
          Vec.push calls
            {
              lc_call_node = call_node;
              lc_return_node = return_node;
              lc_cr_edge = cr_edge;
              lc_callee = callee;
              lc_targets = resolve_targets callee;
              lc_call_def = Insn.defs call_insn;
              lc_call_use = Insn.uses call_insn;
            }
      | Ends_switch when branch_nodes ->
          let node = new_node (Psg.Branch { routine = r; block = b.id }) in
          sink_of_block.(b.id) <- Some node;
          sources := { src_node = node; src_block = b.id; mode = After_block } :: !sources
      | Ends_switch | Ends_plain -> ())
    cfg.blocks;
  (* --- Flow-summary edges ---------------------------------------------- *)
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_position = Array.make nblocks 0 in
  Array.iteri (fun pos b -> rpo_position.(b) <- pos) rpo;
  (* Stamped visited maps and dataflow scratch, reused across this
     routine's edges. *)
  let fwd_stamp = Array.make nblocks (-1) and bwd_stamp = Array.make nblocks (-1) in
  let stamp = ref 0 in
  let scratch = Edge_dataflow.create_scratch ~nblocks in
  (* Forward reach from a source, stopping at cut blocks.  Returns the
     sinks reached; marks fwd_stamp. *)
  let forward_reach source =
    incr stamp;
    let s = !stamp in
    let sinks = ref [] in
    let rec visit b =
      if fwd_stamp.(b) <> s then begin
        fwd_stamp.(b) <- s;
        match sink_of_block.(b) with
        | Some sink -> if not (List.mem (sink, b) !sinks) then sinks := (sink, b) :: !sinks
        | None -> Array.iter visit cfg.blocks.(b).succs
      end
    in
    (match source.mode with
    | At_block_start -> visit source.src_block
    | After_block -> Array.iter visit cfg.blocks.(source.src_block).succs);
    (s, List.rev !sinks)
  in
  (* Backward reach from a sink block, not crossing other cuts.  Marks
     bwd_stamp; memoised per sink block. *)
  let bwd_cache = Hashtbl.create 8 in
  let backward_reach sink_block =
    match Hashtbl.find_opt bwd_cache sink_block with
    | Some (s, blocks) -> (s, blocks)
    | None ->
        incr stamp;
        let s = !stamp in
        let collected = Vec.create () in
        let rec visit b =
          if bwd_stamp.(b) <> s then begin
            bwd_stamp.(b) <- s;
            Vec.push collected b;
            Array.iter
              (fun p -> if sink_of_block.(p) = None then visit p)
              cfg.blocks.(b).preds
          end
        in
        visit sink_block;
        let blocks = Vec.to_array collected in
        Hashtbl.replace bwd_cache sink_block (s, blocks);
        (s, blocks)
  in
  List.iter
    (fun source ->
      let fwd_s, sinks = forward_reach source in
      List.iter
        (fun (sink_node, sink_block) ->
          let _bwd_s, bwd_blocks = backward_reach sink_block in
          (* The subgraph of this edge: blocks on source-to-sink paths. *)
          let subgraph =
            Array.of_list
              (List.filter
                 (fun b -> fwd_stamp.(b) = fwd_s)
                 (Array.to_list bwd_blocks))
          in
          let solution =
            Edge_dataflow.solve ~scratch ~cfg ~defuse ~rpo_position ~blocks:subgraph
              ~sink:sink_block ()
          in
          let label =
            match source.mode with
            | At_block_start -> Edge_dataflow.in_of solution source.src_block
            | After_block ->
                (* The branch node sits after the block's instructions:
                   its label merges the IN sets of the dispatch
                   targets inside the subgraph. *)
                Array.fold_left
                  (fun acc succ ->
                    if Edge_dataflow.mem solution succ then
                      Edge_dataflow.join acc (Edge_dataflow.in_of solution succ)
                    else acc)
                  Edge_dataflow.top_must cfg.blocks.(source.src_block).succs
          in
          ignore (new_edge Psg.Flow source.src_node sink_node label))
        sinks)
    (List.rev !sources);
  {
    l_kinds = Vec.to_array kinds;
    l_edges = Vec.to_array edges;
    l_calls = Vec.to_array calls;
    l_entry = List.rev !entry;
    l_exit = List.rev !exit_;
    l_unknown = List.rev !unknown;
  }

(* --- Target resolution --------------------------------------------------- *)

(* §3.5: a call target resolves to a routine of the image, to external
   code with a supplied summary, or to nothing (the calling-standard
   assumption). *)
let resolver ~externals program =
  let resolve_name name =
    match Program.find_index program name with
    | Some i -> Some (Psg.Target_routine i)
    | None -> (
        match externals name with
        | Some c -> Some (Psg.Target_external c)
        | None -> None)
  in
  fun callee ->
    match callee with
    | Insn.Direct name -> Option.map (fun t -> [ t ]) (resolve_name name)
    | Insn.Indirect (_, None) | Insn.Indirect (_, Some []) -> None
    | Insn.Indirect (_, Some names) ->
        let resolved = List.map resolve_name names in
        if List.exists Option.is_none resolved then None
        else Some (List.filter_map Fun.id resolved)

(* --- Stitch pass -------------------------------------------------------- *)

let offsets_of locals length =
  let n = Array.length locals in
  let offsets = Array.make (n + 1) 0 in
  for r = 0 to n - 1 do
    offsets.(r + 1) <- offsets.(r) + length locals.(r)
  done;
  offsets

let node_offsets locals = offsets_of locals (fun l -> Array.length l.l_kinds)
let call_offsets locals = offsets_of locals (fun l -> Array.length l.l_calls)

let stitch ~entry_filters program (locals : local array) =
  let nroutines = Program.routine_count program in
  if Array.length locals <> nroutines then
    invalid_arg "Psg_build.stitch: locals length mismatch";
  if Array.length entry_filters <> nroutines then
    invalid_arg "Psg_build.stitch: entry_filters length mismatch";
  (* Prefix sums assign every routine its contiguous global id ranges —
     the same ids the former single-loop builder handed out. *)
  let node_offset = node_offsets locals in
  let edge_offset = offsets_of locals (fun l -> Array.length l.l_edges) in
  let call_offset = call_offsets locals in
  let nnodes = node_offset.(nroutines) in
  let nedges = edge_offset.(nroutines) in
  let ncalls = call_offset.(nroutines) in
  (* Placeholder elements; every slot is overwritten by the stitch loop
     below, so the shared placeholders are never mutated in place. *)
  let dummy_node =
    {
      Psg.id = -1;
      kind = Psg.Entry { routine = -1; label = "" };
      may_use = Regset.empty;
      may_def = Regset.empty;
      must_def = Regset.empty;
    }
  in
  let dummy_edge =
    {
      Psg.edge_id = -1;
      src = -1;
      dst = -1;
      ekind = Psg.Flow;
      e_may_use = Regset.empty;
      e_may_def = Regset.empty;
      e_must_def = Regset.empty;
    }
  in
  let nodes = Array.make nnodes dummy_node in
  let edges = Array.make nedges dummy_edge in
  let calls = Array.make ncalls None in
  let callers_rev = Array.make nroutines [] in
  let entry_nodes = Array.make nroutines [] in
  let exit_nodes = Array.make nroutines [] in
  let unknown_exit_nodes = Array.make nroutines [] in
  for r = 0 to nroutines - 1 do
    let local = locals.(r) in
    let noff = node_offset.(r) and eoff = edge_offset.(r) and coff = call_offset.(r) in
    Array.iteri
      (fun i kind ->
        nodes.(noff + i) <-
          {
            Psg.id = noff + i;
            kind;
            may_use = Regset.empty;
            may_def = Regset.empty;
            must_def = Regset.empty;
          })
      local.l_kinds;
    Array.iteri
      (fun j (e : local_edge) ->
        edges.(eoff + j) <-
          {
            Psg.edge_id = eoff + j;
            src = noff + e.le_src;
            dst = noff + e.le_dst;
            ekind = e.le_kind;
            e_may_use = e.le_label.Edge_dataflow.may_use;
            e_may_def = e.le_label.Edge_dataflow.may_def;
            e_must_def = e.le_label.Edge_dataflow.must_def;
          })
      local.l_edges;
    Array.iteri
      (fun k (c : local_call) ->
        let call_index = coff + k in
        calls.(call_index) <-
          Some
            {
              Psg.call_node = noff + c.lc_call_node;
              return_node = noff + c.lc_return_node;
              cr_edge = eoff + c.lc_cr_edge;
              callee = c.lc_callee;
              targets = c.lc_targets;
              call_def = c.lc_call_def;
              call_use = c.lc_call_use;
            };
        match c.lc_targets with
        | Some resolved ->
            List.iter
              (fun target ->
                match target with
                | Psg.Target_routine t -> callers_rev.(t) <- call_index :: callers_rev.(t)
                | Psg.Target_external _ -> ())
              resolved
        | None -> ())
      local.l_calls;
    entry_nodes.(r) <- List.map (fun l -> noff + l) local.l_entry;
    exit_nodes.(r) <- List.map (fun l -> noff + l) local.l_exit;
    unknown_exit_nodes.(r) <- List.map (fun l -> noff + l) local.l_unknown
  done;
  let calls =
    Array.map (function Some c -> c | None -> assert false) calls
  in
  (* --- Freeze ---------------------------------------------------------- *)
  (* Adjacency by counting sort over unboxed int arrays — no cons cells,
     no write barriers.  Filling in edge order keeps each per-node list in
     ascending edge id, as the cons-and-reverse construction produced. *)
  let out_cnt = Array.make nnodes 0 and in_cnt = Array.make nnodes 0 in
  Array.iter
    (fun (e : Psg.edge) ->
      out_cnt.(e.src) <- out_cnt.(e.src) + 1;
      in_cnt.(e.dst) <- in_cnt.(e.dst) + 1)
    edges;
  let out_edges = Array.init nnodes (fun i -> Array.make out_cnt.(i) 0) in
  let in_edges = Array.init nnodes (fun i -> Array.make in_cnt.(i) 0) in
  Array.fill out_cnt 0 nnodes 0;
  Array.fill in_cnt 0 nnodes 0;
  Array.iter
    (fun (e : Psg.edge) ->
      let o = out_cnt.(e.src) in
      out_edges.(e.src).(o) <- e.edge_id;
      out_cnt.(e.src) <- o + 1;
      let i = in_cnt.(e.dst) in
      in_edges.(e.dst).(i) <- e.edge_id;
      in_cnt.(e.dst) <- i + 1)
    edges;
  {
    Psg.program;
    nodes;
    edges;
    out_edges;
    in_edges;
    calls;
    callers_of = Array.map List.rev callers_rev;
    entry_nodes;
    exit_nodes;
    unknown_exit_nodes;
    entry_filter = entry_filters;
  }

(* --- The one-shot builder ------------------------------------------------ *)

let build ?(branch_nodes = true) ?entry_filters ?(externals = fun _ -> None) ?pool
    program cfgs defuses =
  let nroutines = Program.routine_count program in
  let resolve_targets = resolver ~externals program in
  let pinit n f =
    match pool with Some p -> Pool.parallel_init p n f | None -> Array.init n f
  in
  let locals =
    pinit nroutines (fun r ->
        Spike_obs.Trace.with_span "psg.local_pass" (fun () ->
            local_pass ~branch_nodes ~resolve_targets r cfgs.(r) defuses.(r)))
  in
  let entry_filters =
    match entry_filters with
    | Some filters ->
        if Array.length filters <> nroutines then
          invalid_arg "Psg_build.build: entry_filters length mismatch";
        filters
    | None ->
        pinit nroutines (fun r ->
            Callee_saved.saved_and_restored (Program.get program r) cfgs.(r))
  in
  Spike_obs.Trace.with_span "psg.stitch" @@ fun () ->
  stitch ~entry_filters program locals
