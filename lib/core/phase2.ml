open Spike_support
open Spike_isa
open Spike_ir

(* Observability — same scheme as {!Phase1}: the iteration total is
   flushed once so it matches [Analysis.result]; pops are attributed to
   node kinds inside the loop behind the enabled flag. *)
let c_iterations = Spike_obs.Metrics.counter "phase2.iterations"
let c_pushes = Spike_obs.Metrics.counter "phase2.worklist.pushes"

let pop_counters =
  [|
    Spike_obs.Metrics.counter "phase2.pops.entry";
    Spike_obs.Metrics.counter "phase2.pops.exit";
    Spike_obs.Metrics.counter "phase2.pops.call";
    Spike_obs.Metrics.counter "phase2.pops.return";
    Spike_obs.Metrics.counter "phase2.pops.branch";
    Spike_obs.Metrics.counter "phase2.pops.unknown_exit";
  |]

let kind_index : Psg.node_kind -> int = function
  | Psg.Entry _ -> 0
  | Psg.Exit _ -> 1
  | Psg.Call _ -> 2
  | Psg.Return _ -> 3
  | Psg.Branch _ -> 4
  | Psg.Unknown_exit _ -> 5

type warm = { cone : bool array; restore : int array  (** packed, 2 words per node *) }

let run ?warm ?sched (psg : Psg.t) =
  let n = Psg.node_count psg in
  let nodes = psg.nodes and edges = psg.edges in
  let program = psg.program in
  let in_cone =
    match warm with None -> fun _ -> true | Some w -> fun id -> w.cone.(id)
  in
  (* Per-node constant contribution to liveness. *)
  let seed = Array.make n Regset.empty in
  let main_index =
    match Program.find_index program (Program.main program) with
    | Some i -> i
    | None -> assert false (* guaranteed by Program.make *)
  in
  Array.iter
    (fun (node : Psg.node) ->
      match node.kind with
      | Psg.Exit { routine; _ } ->
          let r = Program.get program routine in
          let s = ref Regset.empty in
          if r.Routine.exported then
            s := Regset.union !s Calling_standard.external_return_live;
          if routine = main_index then s := Regset.union !s Calling_standard.return_regs;
          seed.(node.id) <- !s
      | Psg.Unknown_exit _ -> seed.(node.id) <- Calling_standard.unknown_jump_live
      | Psg.Entry _ | Psg.Call _ | Psg.Return _ | Psg.Branch _ -> ())
    nodes;
  Array.iter
    (fun (node : Psg.node) ->
      node.may_use <-
        (if in_cone node.id then seed.(node.id)
         else
           match warm with
           | Some w ->
               Regset.of_bits ~lo:w.restore.(node.id * 2)
                 ~hi:w.restore.((node.id * 2) + 1)
           | None -> assert false))
    nodes;
  (* Return-to-exit links: an exit node's liveness accumulates the liveness
     of every return point the routine can return to.  Only in-cone exits
     need their links: a link is read when the exit is popped, or used to
     push the exit when its return node changes — and an in-cone return
     node forces the callee's exits into the cone, so both readers imply
     the exit is in the cone. *)
  let return_links = Array.make n [] (* exit node id -> return node ids *) in
  Array.iter
    (fun (info : Psg.call_info) ->
      match info.targets with
      | None -> ()
      | Some targets ->
          List.iter
            (fun target ->
              match target with
              | Psg.Target_external _ -> ()
              | Psg.Target_routine r ->
                  List.iter
                    (fun exit_node ->
                      if in_cone exit_node then
                        return_links.(exit_node) <-
                          info.return_node :: return_links.(exit_node))
                    psg.exit_nodes.(r))
            targets)
    psg.calls;
  let exit_nodes_of_return = Array.make n [] (* return node id -> exit node ids *) in
  Array.iteri
    (fun exit_node returns ->
      List.iter
        (fun ret ->
          exit_nodes_of_return.(ret) <- exit_node :: exit_nodes_of_return.(ret))
        returns)
    return_links;
  (* Recompute [id]'s liveness from its seed, outgoing edges and return
     links; returns whether it changed.  Everything read outside the node's
     own routine ([return_links] targets, converged before this node's
     component runs under the SCC schedule) is stable, so concurrent
     component fixpoints never race. *)
  let recompute id (node : Psg.node) =
    let live_lo = ref (Regset.lo_bits seed.(id))
    and live_hi = ref (Regset.hi_bits seed.(id)) in
    let out = psg.out_edges.(id) in
    for k = 0 to Array.length out - 1 do
      let e = edges.(Array.unsafe_get out k) in
      let dst = nodes.(e.dst) in
      live_lo :=
        !live_lo
        lor Regset.lo_bits e.e_may_use
        lor (Regset.lo_bits dst.may_use land lnot (Regset.lo_bits e.e_must_def));
      live_hi :=
        !live_hi
        lor Regset.hi_bits e.e_may_use
        lor (Regset.hi_bits dst.may_use land lnot (Regset.hi_bits e.e_must_def))
    done;
    List.iter
      (fun ret ->
        live_lo := !live_lo lor Regset.lo_bits nodes.(ret).may_use;
        live_hi := !live_hi lor Regset.hi_bits nodes.(ret).may_use)
      return_links.(id);
    if
      !live_lo <> Regset.lo_bits node.may_use || !live_hi <> Regset.hi_bits node.may_use
    then begin
      node.may_use <- Regset.of_bits ~lo:!live_lo ~hi:!live_hi;
      true
    end
    else false
  in
  match sched with
  | Some s ->
      (* --- SCC-condensation schedule --------------------------------------
         Reverse topological order: callers first.  When a component
         starts, the liveness it imports — return-node sets of calling
         components, read through [return_links] — is already converged,
         so a changed return node only re-queues exits of its own
         component (mutual recursion); cross-component exits pick up the
         final values when their component seeds.

         The drain is the same Bourdoncle WTO interpreter as {!Phase1},
         over [comp_nodes_p2]: dependency knots of the phase 2 graph (a
         node reads its out-edge targets, an exit node the return points
         of its intra-component callers) iterate until their heads are
         stable, innermost first, so readers pop exactly once. *)
      let comp_of_node = s.Sched.comp_of_node in
      let dirty =
        match warm with
        | None -> fun _ -> true
        | Some w ->
            let d = Array.make s.Sched.scc.Scc.count false in
            Array.iteri (fun id inside -> if inside then d.(comp_of_node.(id)) <- true) w.cone;
            fun c -> d.(c)
      in
      let run_comp marked c =
        let order = s.Sched.comp_nodes_p2.(c) in
        let cend = s.Sched.comp_cend_p2.(c) in
        let len = Array.length order in
        let iterations = ref 0 in
        let mark id =
          if Bytes.unsafe_get marked id = '\000' then begin
            Spike_obs.Metrics.incr c_pushes;
            Bytes.unsafe_set marked id '\001'
          end
        in
        Array.iter (fun id -> if in_cone id then mark id) order;
        (* A liveness change only alters a reader that would gain bits
           through the edge — liveness is a union, so a contribution the
           reader already covers is a provable no-op re-pop. *)
        let affects (e : Psg.edge) =
          let dst = nodes.(e.dst) and reader = nodes.(e.src) in
          let mu_lo =
            Regset.lo_bits e.e_may_use
            lor (Regset.lo_bits dst.may_use
                land lnot (Regset.lo_bits e.e_must_def))
          and mu_hi =
            Regset.hi_bits e.e_may_use
            lor (Regset.hi_bits dst.may_use
                land lnot (Regset.hi_bits e.e_must_def))
          in
          mu_lo land lnot (Regset.lo_bits reader.may_use) <> 0
          || mu_hi land lnot (Regset.hi_bits reader.may_use) <> 0
        in
        let process id =
          Bytes.unsafe_set marked id '\000';
          incr iterations;
          let node = nodes.(id) in
          if Spike_obs.Metrics.enabled () then
            Spike_obs.Metrics.incr pop_counters.(kind_index node.kind);
          if recompute id node then begin
            let in_edges = psg.in_edges.(id) in
            for j = 0 to Array.length in_edges - 1 do
              let e = edges.(Array.unsafe_get in_edges j) in
              if affects e then mark e.src
            done;
            List.iter
              (fun exit_node ->
                if
                  comp_of_node.(exit_node) = c
                  && (Regset.lo_bits node.may_use
                      land lnot (Regset.lo_bits nodes.(exit_node).may_use)
                      <> 0
                     || Regset.hi_bits node.may_use
                        land lnot (Regset.hi_bits nodes.(exit_node).may_use)
                        <> 0)
                then mark exit_node)
              exit_nodes_of_return.(id)
          end
        in
        (* Same WTO interpreter as {!Phase1}. *)
        let flat = s.Sched.comp_flat_p2.(c) in
        let stk_pos = Array.make (max len 1) 0 in
        let stk_end = Array.make (max len 1) 0 in
        let stk_snap = Array.make (max len 1) 0 in
        let stk_fi = Array.make (max len 1) 0 in
        let sp = ref 0 in
        let fi = ref 0 in
        let inflat = ref 0 in
        let k = ref 0 in
        while !k < len || !sp > 0 do
          if !sp > 0 && !k = Array.unsafe_get stk_end (!sp - 1) then begin
            let t = !sp - 1 in
            let pos = Array.unsafe_get stk_pos t in
            if Array.unsafe_get stk_snap t < 0 then begin
              let hid = Array.unsafe_get order pos in
              if Bytes.unsafe_get marked hid = '\001' then begin
                process hid;
                fi := Array.unsafe_get stk_fi t;
                k := pos + 1
              end
              else decr sp
            end
            else if !iterations > Array.unsafe_get stk_snap t then begin
              stk_snap.(t) <- !iterations;
              fi := Array.unsafe_get stk_fi t;
              k := pos
            end
            else begin
              decr sp;
              decr inflat
            end
          end
          else if
            2 * !fi < Array.length flat && Array.unsafe_get flat (2 * !fi) = !k
          then begin
            stk_pos.(!sp) <- !k;
            stk_end.(!sp) <- Array.unsafe_get flat ((2 * !fi) + 1);
            stk_snap.(!sp) <- !iterations;
            incr fi;
            stk_fi.(!sp) <- !fi;
            incr sp;
            incr inflat
          end
          else begin
            let i = !k in
            let ce = Array.unsafe_get cend i in
            let id = Array.unsafe_get order i in
            if Bytes.unsafe_get marked id = '\001' then process id;
            if ce = 0 || !inflat > 0 then incr k
            else begin
              stk_pos.(!sp) <- i;
              stk_end.(!sp) <- ce;
              stk_snap.(!sp) <- -1;
              stk_fi.(!sp) <- !fi;
              incr sp;
              k := i + 1
            end
          end
        done;
        !iterations
      in
      let iterations =
        Spike_obs.Trace.with_span "phase2.fixpoint" @@ fun () ->
        Sched.run s ~rev:true ~dirty run_comp
      in
      Spike_obs.Metrics.add c_iterations iterations;
      iterations
  | None ->
      let worklist = Workset.create n in
      let push id =
        Spike_obs.Metrics.incr c_pushes;
        Workset.push worklist id
      in
      (* Liveness flows caller-to-callee: seed callers first (reverse of the
         callee-first order), sinks before sources within each routine.  As in
         {!Phase1}, the fixpoint is order-independent, so a small warm cone is
         pushed directly in id order and the ordering work skipped. *)
      let small_cone =
        match warm with
        | None -> false
        | Some w ->
            let c = ref 0 in
            Array.iter (fun b -> if b then incr c) w.cone;
            !c * 8 < n
      in
      if small_cone then
        Array.iter (fun (node : Psg.node) -> if in_cone node.id then push node.id) nodes
      else begin
        let nodes_by_routine = Array.make (Program.routine_count program) [] in
        Array.iter
          (fun (node : Psg.node) ->
            let r = Psg.node_routine node.kind in
            nodes_by_routine.(r) <- node.id :: nodes_by_routine.(r))
          nodes;
        List.iter
          (fun r -> List.iter (fun id -> if in_cone id then push id) nodes_by_routine.(r))
          (List.rev (Psg.callee_first_order psg))
      end;
      let iterations = ref 0 in
      let () =
        Spike_obs.Trace.with_span "phase2.fixpoint" @@ fun () ->
        while not (Workset.is_empty worklist) do
          let id = Workset.pop worklist in
          incr iterations;
          let node = nodes.(id) in
          if Spike_obs.Metrics.enabled () then
            Spike_obs.Metrics.incr pop_counters.(kind_index node.kind);
          if recompute id node then begin
            let in_edges = psg.in_edges.(id) in
            for k = 0 to Array.length in_edges - 1 do
              push edges.(Array.unsafe_get in_edges k).src
            done;
            List.iter push exit_nodes_of_return.(id)
          end
        done
      in
      Spike_obs.Metrics.add c_iterations !iterations;
      !iterations
