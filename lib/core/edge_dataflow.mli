(** The Figure-6 dataflow that labels one flow-summary edge.

    Given the CFG subgraph made of the basic blocks on the paths a
    flow-summary edge [E = (N_X, N_Y)] represents, this solver computes for
    every subgraph block [B] the sets

    - [MAY-USE_IN[B]]: registers used before defined on some path from the
      start of [B] to the location of [N_Y];
    - [MAY-DEF_IN[B]]: registers defined on some such path;
    - [MUST-DEF_IN[B]]: registers defined on all such paths.

    The edge label is then read off at the source's location.  The sink
    block's OUT sets are the boundary (all empty); meets are taken over the
    successors {e inside the subgraph} only, matching the paper's
    construction where the subgraph contains exactly the blocks and arcs on
    X-to-Y paths. *)

open Spike_support
open Spike_cfg

type sets = { may_use : Regset.t; may_def : Regset.t; must_def : Regset.t }

val empty : sets
(** [{may_use = ∅; may_def = ∅; must_def = ∅}] — the boundary at the sink. *)

val top_must : sets
(** [{may_use = ∅; may_def = ∅; must_def = full}] — identity of the meet. *)

val join : sets -> sets -> sets
(** Pointwise path-merge: union for the MAY sets, intersection for
    MUST-DEF. *)

val apply_block : def:Regset.t -> ubd:Regset.t -> sets -> sets
(** Transfer function of a block: [IN] from [OUT]
    (Figure 6's first three equations). *)

type solution

type scratch = solution
(** Preallocated routine-sized working storage for {!solve}: the
    block-to-slot position map and the IN-set table, generation-stamped so
    reuse across the edges of one routine costs no per-edge reset or
    rehash.  One scratch serves one routine's edges sequentially; give
    each domain of a parallel build its own. *)

val create_scratch : nblocks:int -> scratch
(** Scratch for a routine of [nblocks] basic blocks. *)

val solve :
  ?scratch:scratch ->
  cfg:Cfg.t ->
  defuse:Defuse.t ->
  rpo_position:int array ->
  blocks:int array ->
  sink:int ->
  unit ->
  solution
(** [solve ~cfg ~defuse ~rpo_position ~blocks ~sink ()] runs the dataflow
    to fixpoint over the subgraph [blocks] (which must contain [sink]).
    [rpo_position.(b)] is block [b]'s index in the routine's reverse
    postorder; it only affects convergence speed.  Every non-sink subgraph
    block must have at least one successor inside the subgraph.

    [blocks] is sorted in place into evaluation order.  When [scratch] is
    supplied the returned solution aliases it and is invalidated by the
    next [solve] on the same scratch — read the label off before solving
    the next edge.  Without [scratch] a fresh one is allocated. *)

val in_of : solution -> int -> sets
(** IN sets of a subgraph block.
    @raise Invalid_argument if the block is not in the subgraph. *)

val mem : solution -> int -> bool
