(** Content fingerprints keying the persistent summary store.

    A routine's cached artifacts ({!Spike_core.Warm.routine_art}) may be
    reused exactly when every input that fed them is unchanged.  The
    fingerprint digests all of those inputs:

    {ul
     {- the instruction stream, entries, labels and [exported] flag
        (fields folded straight into a 126-bit two-lane polynomial
        hash — {e not} the pretty-printer, nor even an intermediate byte
        serialization, both of which would dominate warm-start time);}
     {- whether the routine is the program's [main] (phase 2 seeds its
        exits differently);}
     {- how each call's targets resolve {e in the current environment}:
        each possible target contributes [I] (a routine of the program),
        [X] plus the digest of its supplied external class, or [U]
        (unknown, calling-standard assumption).}}

    Resolution is recorded {e index-free} — an internal callee contributes
    its status, not its routine index — so inserting or deleting an
    unrelated routine shifts indices without dirtying anything.  The
    callee's own {e content} is deliberately not part of its caller's
    fingerprint: a changed callee invalidates only its own entry, and the
    warm-start cones re-converge the callers.

    The store format version and analysis configuration (branch nodes,
    callee-saved filter) live in {!config_key}, checked once per file
    rather than per routine. *)

open Spike_ir
open Spike_core

val format_version : int
(** Bump on any change to the store's binary layout. *)

val config_key : branch_nodes:bool -> callee_saved_filter:bool -> string
(** 16-byte digest of format version, analysis configuration and
    {!Regset.bits}; a store written under a different key is unusable. *)

val routine :
  externals:(string -> Psg.external_class option) ->
  Program.t ->
  Routine.t ->
  string
(** 16-byte content digest of the routine under the given resolution
    environment.  Collision-resistant against accidental change (two
    independent 63-bit polynomial lanes), not against an adversary — the
    store is a cache of the user's own build tree, not a trust boundary.
    Uses a shared scratch state: call from a single domain. *)
