(** The persistent summary store: on-disk per-routine analysis artifacts
    and the warm-start plans built from them.

    A store directory holds one file, [spike.store], written atomically
    (temp file + rename).  It records, per routine: a content
    {!Fingerprint}, the routine's front-end artifacts (CFG, DEF/UBD,
    callee-saved filter, PSG local fragment) and the converged phase-1 and
    phase-2 solutions of the run that wrote it, plus the names of the
    internal routines it called — the ingredient for
    {!Spike_core.Warm.plan.exit_seeds} when a caller is edited away.

    {b Robustness first.}  [load] never raises on bad input: a missing
    file is a plain cold start, and a truncated, bit-flipped,
    wrong-version, wrong-magic or wrong-configuration file is detected
    (magic / version / config-key header checks, a whole-payload
    checksum, and bounds-checked decoding via {!Codec}), logged to
    [stderr], counted on the [store.degradations] counter, and degraded
    to an all-cold plan.  A single undecodable entry in an otherwise
    healthy file dirties only its own routine.

    Cross-run index drift is handled by storing routine {e names}:
    call-target indices inside cached fragments are remapped to the
    current program's indices at load. *)

open Spike_ir
open Spike_core

val file_name : string
(** ["spike.store"], under the store directory. *)

type load_result = {
  plan : Warm.plan;
  hits : int;  (** routines whose cached artifacts will be reused *)
  misses : int;  (** routines with no stored entry *)
  invalidated : int;
      (** routines whose stored entry exists but is stale (fingerprint
          mismatch) or undecodable *)
  degraded : string option;
      (** [Some reason] when a store file was present but unusable as a
          whole and the plan fell back to all-cold *)
}

val load :
  dir:string ->
  ?branch_nodes:bool ->
  ?externals:(string -> Psg.external_class option) ->
  ?callee_saved_filter:bool ->
  Program.t ->
  load_result
(** Build a warm plan for [Program.t] from [dir].  The configuration
    arguments (defaults matching {!Analysis.run}) must be the ones the
    upcoming analysis will run with; a store written under a different
    configuration is rejected wholesale.  Instrumented with the
    [store.load] span and [store.load.hits] / [store.load.misses] /
    [store.load.invalidations] / [store.degradations] counters. *)

val save : dir:string -> Analysis.t -> unit
(** Persist the artifacts captured by an [Analysis.run ~capture:true].
    Creates [dir] if needed; writes to a temporary file and renames, so a
    crash mid-save leaves any previous store intact.  Configuration and
    the resolution environment are taken from the analysis record itself.
    @raise Invalid_argument if the analysis was run without [~capture]. *)

(** {2 In-memory sessions}

    The disk path decodes the whole artifact graph back into boxed
    records; a resident driver (editor daemon, watch mode) that keeps the
    previous {!Analysis.t} alive can skip both the file and the decode. *)

type session
(** Retained artifacts of one analysis run, keyed by routine name. *)

val retain : Analysis.t -> session
(** Package the artifacts captured by an [Analysis.run ~capture:true],
    fingerprinting every routine once.  The session never mutates and is
    never mutated by later warm runs, so one session can seed any number
    of [replan]s.
    @raise Invalid_argument if the analysis was run without [~capture]. *)

val replan :
  session ->
  ?branch_nodes:bool ->
  ?externals:(string -> Psg.external_class option) ->
  ?callee_saved_filter:bool ->
  Program.t ->
  load_result
(** [load] without the disk: fingerprint the (edited) program, reuse the
    session's artifacts for unchanged routines — remapping routine
    indices by name, as the disk path does — and plan cones for the
    rest.  A session retained under a different analysis configuration
    degrades to an all-cold plan, mirroring the file-level config check. *)
