open Spike_support
open Spike_isa
open Spike_ir
open Spike_core

let format_version = 1

let config_key ~branch_nodes ~callee_saved_filter =
  let b = Buffer.create 32 in
  Codec.write_string b "spike-store";
  Codec.write_int b format_version;
  Codec.write_bool b branch_nodes;
  Codec.write_bool b callee_saved_filter;
  Codec.write_int b Regset.bits;
  Digest.string (Buffer.contents b)

(* --- Structural fingerprint ---------------------------------------------

   A hand-rolled rendering: digesting the pretty-printer's output — or
   even a byte serialization — would dominate warm-start time on
   300k-instruction programs.  Instead every field is folded directly
   into two independent 63-bit polynomial hash lanes (distinct odd
   bases), 126 bits total, emitted as two little-endian words.  Every
   constructor gets a distinct tag and every field is folded, so
   distinct routines fingerprint distinctly up to hash collision, which
   at ~2^-126 per pair is negligible against the store's non-adversarial
   threat model (stale-build detection, not tamper-proofing). *)

let base1 = 0x100000001b3 (* FNV-64 prime *)
let base2 = 0x1E3779B97F4A7C15 (* odd golden-ratio mix, truncated to 61 bits *)

type lanes = { mutable h1 : int; mutable h2 : int }

let scratch = { h1 = 0; h2 = 0 }

let fold l v =
  l.h1 <- (l.h1 * base1) + v;
  l.h2 <- (l.h2 * base2) + v

(* Strings are pre-hashed eight bytes at a time into one word, then that
   word (and the length, so "ab","c" differs from "a","bc") is folded. *)
let fold_string l s =
  let n = String.length s in
  let h = ref 0x4bf29ce484222325 in
  let words = n / 8 in
  for k = 0 to words - 1 do
    h := (!h lxor Int64.to_int (String.get_int64_le s (k * 8))) * base1
  done;
  for i = words * 8 to n - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * base1
  done;
  fold l n;
  fold l !h

let fold_bool l b = fold l (if b then 1 else 0)

let fold_regset l s =
  fold l (Regset.lo_bits s);
  fold l (Regset.hi_bits s)

let add_operand b = function
  | Insn.Reg r ->
      fold b 0;
      fold b r
  | Insn.Imm i ->
      fold b 1;
      fold b i

let binop_tag : Insn.binop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | And -> 3
  | Or -> 4
  | Xor -> 5
  | Sll -> 6
  | Srl -> 7
  | Cmpeq -> 8
  | Cmplt -> 9
  | Cmple -> 10

let cond_tag : Insn.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5

(* One possible call target's resolution status.  'I' carries no index on
   purpose: reuse must survive routine reordering. *)
let add_status ~externals program b name =
  match Program.find_index program name with
  | Some _ -> fold b (Char.code 'I')
  | None -> (
      match externals name with
      | Some (c : Psg.external_class) ->
          fold b (Char.code 'X');
          fold_regset b c.x_used;
          fold_regset b c.x_defined;
          fold_regset b c.x_killed
      | None -> fold b (Char.code 'U'))

let add_callee ~externals program b = function
  | Insn.Direct name ->
      fold b 0;
      fold_string b name;
      add_status ~externals program b name
  | Insn.Indirect (r, None) ->
      fold b 1;
      fold b r
  | Insn.Indirect (r, Some names) ->
      fold b 2;
      fold b r;
      fold b (List.length names);
      List.iter
        (fun name ->
          fold_string b name;
          add_status ~externals program b name)
        names

let add_insn ~externals program b (insn : Insn.t) =
  match insn with
  | Li { dst; imm } ->
      fold b 0;
      fold b dst;
      fold b imm
  | Lda { dst; base; offset } ->
      fold b 1;
      fold b dst;
      fold b base;
      fold b offset
  | Mov { dst; src } ->
      fold b 2;
      fold b dst;
      fold b src
  | Binop { op; dst; src1; src2 } ->
      fold b 3;
      fold b (binop_tag op);
      fold b dst;
      fold b src1;
      add_operand b src2
  | Load { dst; base; offset } ->
      fold b 4;
      fold b dst;
      fold b base;
      fold b offset
  | Store { src; base; offset } ->
      fold b 5;
      fold b src;
      fold b base;
      fold b offset
  | Br { target } ->
      fold b 6;
      fold_string b target
  | Bcond { cond; src; target } ->
      fold b 7;
      fold b (cond_tag cond);
      fold b src;
      fold_string b target
  | Switch { index; table } ->
      fold b 8;
      fold b index;
      fold b (Array.length table);
      Array.iter (fold_string b) table
  | Jump_unknown { target } ->
      fold b 9;
      fold b target
  | Call { callee } ->
      fold b 10;
      add_callee ~externals program b callee
  | Ret -> fold b 11
  | Nop -> fold b 12

let routine ~externals program (r : Routine.t) =
  let b = scratch in
  b.h1 <- 0x4bf29ce484222325;
  b.h2 <- 0x2545F4914F6CDD1D;
  fold_string b r.name;
  fold_bool b r.exported;
  fold_bool b (String.equal r.name (Program.main program));
  fold b (List.length r.entries);
  List.iter (fold_string b) r.entries;
  fold b (List.length r.labels);
  List.iter
    (fun (l, i) ->
      fold_string b l;
      fold b i)
    r.labels;
  fold b (Array.length r.insns);
  Array.iter (add_insn ~externals program b) r.insns;
  let out = Bytes.create 16 in
  Bytes.set_int64_le out 0 (Int64.of_int b.h1);
  Bytes.set_int64_le out 8 (Int64.of_int b.h2);
  Bytes.unsafe_to_string out
