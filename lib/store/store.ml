open Spike_isa
open Spike_ir
open Spike_cfg
open Spike_core

let file_name = "spike.store"
let magic = "SPIKSTOR"

type load_result = {
  plan : Warm.plan;
  hits : int;
  misses : int;
  invalidated : int;
  degraded : string option;
}

let c_hits = Spike_obs.Metrics.counter "store.load.hits"
let c_misses = Spike_obs.Metrics.counter "store.load.misses"
let c_invalidated = Spike_obs.Metrics.counter "store.load.invalidations"
let c_degradations = Spike_obs.Metrics.counter "store.degradations"

let corrupt fmt = Printf.ksprintf (fun m -> raise (Codec.Corrupt m)) fmt

(* --- Shared sub-codecs --------------------------------------------------- *)

let write_callee w = function
  | Insn.Direct name ->
      Codec.write_int w 0;
      Codec.write_string w name
  | Insn.Indirect (r, None) ->
      Codec.write_int w 1;
      Codec.write_int w r
  | Insn.Indirect (r, Some names) ->
      Codec.write_int w 2;
      Codec.write_int w r;
      Codec.write_list Codec.write_string w names

let read_callee rd =
  match Codec.read_int rd with
  | 0 -> Insn.Direct (Codec.read_string rd)
  | 1 -> Insn.Indirect (Codec.read_int rd, None)
  | 2 ->
      let r = Codec.read_int rd in
      Insn.Indirect (r, Some (Codec.read_list Codec.read_string rd))
  | t -> corrupt "bad callee tag %d" t

let write_ending w = function
  | Cfg.Ends_plain -> Codec.write_int w 0
  | Cfg.Ends_call callee ->
      Codec.write_int w 1;
      write_callee w callee
  | Cfg.Ends_ret -> Codec.write_int w 2
  | Cfg.Ends_switch -> Codec.write_int w 3
  | Cfg.Ends_jump_unknown -> Codec.write_int w 4

let read_ending rd =
  match Codec.read_int rd with
  | 0 -> Cfg.Ends_plain
  | 1 -> Cfg.Ends_call (read_callee rd)
  | 2 -> Cfg.Ends_ret
  | 3 -> Cfg.Ends_switch
  | 4 -> Cfg.Ends_jump_unknown
  | t -> corrupt "bad block ending tag %d" t

(* Node kinds are stored without their routine field and rehydrated with
   the routine's {e current} index, so index drift cannot stale them. *)
let write_kind w = function
  | Psg.Entry { label; _ } ->
      Codec.write_int w 0;
      Codec.write_string w label
  | Psg.Exit { block; _ } ->
      Codec.write_int w 1;
      Codec.write_int w block
  | Psg.Call { block; _ } ->
      Codec.write_int w 2;
      Codec.write_int w block
  | Psg.Return { call_block; block; _ } ->
      Codec.write_int w 3;
      Codec.write_int w call_block;
      Codec.write_int w block
  | Psg.Branch { block; _ } ->
      Codec.write_int w 4;
      Codec.write_int w block
  | Psg.Unknown_exit { block; _ } ->
      Codec.write_int w 5;
      Codec.write_int w block

let read_kind ~routine rd =
  match Codec.read_int rd with
  | 0 -> Psg.Entry { routine; label = Codec.read_string rd }
  | 1 -> Psg.Exit { routine; block = Codec.read_int rd }
  | 2 -> Psg.Call { routine; block = Codec.read_int rd }
  | 3 ->
      let call_block = Codec.read_int rd in
      Psg.Return { routine; call_block; block = Codec.read_int rd }
  | 4 -> Psg.Branch { routine; block = Codec.read_int rd }
  | 5 -> Psg.Unknown_exit { routine; block = Codec.read_int rd }
  | t -> corrupt "bad node kind tag %d" t

(* Call targets are stored by routine name and remapped at load. *)
let write_target program w = function
  | Psg.Target_routine r ->
      Codec.write_int w 0;
      Codec.write_string w (Program.get program r).Routine.name
  | Psg.Target_external (c : Psg.external_class) ->
      Codec.write_int w 1;
      Codec.write_regset w c.x_used;
      Codec.write_regset w c.x_defined;
      Codec.write_regset w c.x_killed

let read_target ~resolve rd =
  match Codec.read_int rd with
  | 0 -> (
      let name = Codec.read_string rd in
      match resolve name with
      | Some r -> Psg.Target_routine r
      | None -> corrupt "call target %S not in program" name)
  | 1 ->
      let x_used = Codec.read_regset rd in
      let x_defined = Codec.read_regset rd in
      let x_killed = Codec.read_regset rd in
      Psg.Target_external { x_used; x_defined; x_killed }
  | t -> corrupt "bad call target tag %d" t

(* --- Per-routine entry bodies -------------------------------------------- *)

let write_block w (b : Cfg.block) =
  Codec.write_int w b.first;
  Codec.write_int w b.last;
  Codec.write_array Codec.write_int w b.succs;
  Codec.write_array Codec.write_int w b.preds;
  write_ending w b.ending

let write_local program w (l : Psg_build.local) =
  Codec.write_array write_kind w l.l_kinds;
  (* Edges split struct-of-arrays: shape first, then one bulk label
     array — the labels are the bytes, the bulk codec is the speed. *)
  Codec.write_array
    (fun w (e : Psg_build.local_edge) ->
      Codec.write_int w (match e.le_kind with Psg.Flow -> 0 | Psg.Call_return -> 1);
      Codec.write_int w e.le_src;
      Codec.write_int w e.le_dst)
    w l.l_edges;
  Codec.write_sets3_array w
    (Array.map
       (fun (e : Psg_build.local_edge) ->
         (e.le_label.Edge_dataflow.may_use, e.le_label.Edge_dataflow.may_def,
          e.le_label.Edge_dataflow.must_def))
       l.l_edges);
  Codec.write_array
    (fun w (c : Psg_build.local_call) ->
      Codec.write_int w c.lc_call_node;
      Codec.write_int w c.lc_return_node;
      Codec.write_int w c.lc_cr_edge;
      write_callee w c.lc_callee;
      Codec.write_option (Codec.write_list (write_target program)) w c.lc_targets;
      Codec.write_regset w c.lc_call_def;
      Codec.write_regset w c.lc_call_use)
    w l.l_calls;
  Codec.write_list Codec.write_int w l.l_entry;
  Codec.write_list Codec.write_int w l.l_exit;
  Codec.write_list Codec.write_int w l.l_unknown

let write_body program w (art : Warm.routine_art) =
  let cfg = art.a_cfg in
  Codec.write_array write_block w cfg.Cfg.blocks;
  Codec.write_list
    (fun w (label, b) ->
      Codec.write_string w label;
      Codec.write_int w b)
    w cfg.Cfg.entry_blocks;
  Codec.write_regset_array w art.a_defuse.Defuse.def;
  Codec.write_regset_array w art.a_defuse.Defuse.ubd;
  Codec.write_regset w art.a_filter;
  write_local program w art.a_local;
  Codec.write_u32_array w art.a_phase1;
  Codec.write_u32_array w art.a_cr;
  Codec.write_u32_array w art.a_phase2

let check_node_id nnodes id =
  if id < 0 || id >= nnodes then corrupt "node id %d out of %d" id nnodes

let read_body ~routine:(r : int) ~(current : Routine.t) ~resolve body :
    Warm.routine_art =
  let rd = Codec.reader body in
  let ninsns = Array.length current.Routine.insns in
  let next_block = ref 0 in
  let blocks =
    Codec.read_array
      (fun rd ->
        let id = !next_block in
        incr next_block;
        let first = Codec.read_int rd in
        let last = Codec.read_int rd in
        if first < 0 || last >= ninsns then
          corrupt "block %d spans [%d,%d] of %d insns" id first last ninsns;
        let succs = Codec.read_array Codec.read_int rd in
        let preds = Codec.read_array Codec.read_int rd in
        let ending = read_ending rd in
        { Cfg.id; first; last; succs; preds; ending })
      rd
  in
  let nblocks = Array.length blocks in
  let check_block b = if b < 0 || b >= nblocks then corrupt "block id %d out of %d" b nblocks in
  Array.iter
    (fun (b : Cfg.block) ->
      Array.iter check_block b.succs;
      Array.iter check_block b.preds)
    blocks;
  let block_of_insn = Array.make ninsns 0 in
  Array.iter
    (fun (b : Cfg.block) ->
      for i = b.Cfg.first to b.Cfg.last do
        block_of_insn.(i) <- b.Cfg.id
      done)
    blocks;
  let entry_blocks =
    Codec.read_list
      (fun rd ->
        let label = Codec.read_string rd in
        let b = Codec.read_int rd in
        check_block b;
        (label, b))
      rd
  in
  let cfg = { Cfg.routine = current; blocks; block_of_insn; entry_blocks } in
  let def = Codec.read_regset_array rd in
  let ubd = Codec.read_regset_array rd in
  if Array.length def <> nblocks || Array.length ubd <> nblocks then
    corrupt "DEF/UBD length mismatch";
  let defuse = Defuse.of_arrays ~def ~ubd in
  let filter = Codec.read_regset rd in
  let kinds = Codec.read_array (read_kind ~routine:r) rd in
  let nnodes = Array.length kinds in
  let shapes =
    Codec.read_array
      (fun rd ->
        let kind =
          match Codec.read_int rd with
          | 0 -> Psg.Flow
          | 1 -> Psg.Call_return
          | t -> corrupt "bad edge kind tag %d" t
        in
        let src = Codec.read_int rd in
        let dst = Codec.read_int rd in
        check_node_id nnodes src;
        check_node_id nnodes dst;
        (kind, src, dst))
      rd
  in
  let labels = Codec.read_sets3_array rd in
  if Array.length labels <> Array.length shapes then
    corrupt "edge label count mismatch";
  let edges =
    Array.map2
      (fun (le_kind, le_src, le_dst) (may_use, may_def, must_def) ->
        { Psg_build.le_kind; le_src; le_dst;
          le_label = { Edge_dataflow.may_use; may_def; must_def } })
      shapes labels
  in
  let nedges = Array.length edges in
  let calls =
    Codec.read_array
      (fun rd ->
        let lc_call_node = Codec.read_int rd in
        let lc_return_node = Codec.read_int rd in
        let lc_cr_edge = Codec.read_int rd in
        check_node_id nnodes lc_call_node;
        check_node_id nnodes lc_return_node;
        if lc_cr_edge < 0 || lc_cr_edge >= nedges then
          corrupt "edge id %d out of %d" lc_cr_edge nedges;
        let lc_callee = read_callee rd in
        let lc_targets = Codec.read_option (Codec.read_list (read_target ~resolve)) rd in
        let lc_call_def = Codec.read_regset rd in
        let lc_call_use = Codec.read_regset rd in
        { Psg_build.lc_call_node; lc_return_node; lc_cr_edge; lc_callee;
          lc_targets; lc_call_def; lc_call_use })
      rd
  in
  let read_ids rd =
    Codec.read_list
      (fun rd ->
        let id = Codec.read_int rd in
        check_node_id nnodes id;
        id)
      rd
  in
  let l_entry = read_ids rd in
  let l_exit = read_ids rd in
  let l_unknown = read_ids rd in
  let local =
    { Psg_build.l_kinds = kinds; l_edges = edges; l_calls = calls; l_entry;
      l_exit; l_unknown }
  in
  let a_phase1 = Codec.read_u32_array rd in
  let a_cr = Codec.read_u32_array rd in
  let a_phase2 = Codec.read_u32_array rd in
  if
    Array.length a_phase1 <> nnodes * 6
    || Array.length a_cr <> Array.length calls * 6
    || Array.length a_phase2 <> nnodes * 2
  then corrupt "solution length mismatch";
  if not (Codec.at_end rd) then corrupt "trailing bytes in entry body";
  { Warm.a_cfg = cfg; a_defuse = defuse; a_filter = filter; a_local = local;
    a_phase1; a_cr; a_phase2 }

(* Internal routines this fragment's calls may target — remembered so that
   if this routine is later edited or deleted, those callees' exit nodes
   can be re-seeded (a return-link contribution may have vanished). *)
let callee_names program (l : Psg_build.local) =
  Array.fold_left
    (fun acc (c : Psg_build.local_call) ->
      match c.lc_targets with
      | None -> acc
      | Some targets ->
          List.fold_left
            (fun acc -> function
              | Psg.Target_external _ -> acc
              | Psg.Target_routine r ->
                  (Program.get program r).Routine.name :: acc)
            acc targets)
    [] l.l_calls
  |> List.sort_uniq String.compare

(* --- File format ---------------------------------------------------------

   magic(8) version config_key(16) checksum(8) payload_len payload

   The checksum covers the payload only; the header fields it would guard
   are each checked semantically anyway. *)

type entry = {
  e_fp : string;
  e_exported : bool;
  e_is_main : bool;
  e_callees : string list;
  e_body : string;
}

let int64_raw v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Bytes.unsafe_to_string b

let parse_file ~config data =
  let rd = Codec.reader data in
  if Codec.read_raw rd 8 <> magic then corrupt "bad magic";
  let version = Codec.read_int rd in
  if version <> Fingerprint.format_version then
    corrupt "format version %d, expected %d" version Fingerprint.format_version;
  if Codec.read_raw rd 16 <> config then corrupt "analysis configuration mismatch";
  let sum = Codec.read_raw rd 8 in
  let plen = Codec.read_int rd in
  let payload_pos = Codec.pos rd in
  if plen < 0 || payload_pos + plen <> String.length data then
    corrupt "payload length %d does not match file size" plen;
  if int64_raw (Codec.checksum data ~pos:payload_pos ~len:plen) <> sum then
    corrupt "payload checksum mismatch";
  let rd = Codec.reader ~pos:payload_pos ~len:plen data in
  let entries =
    Codec.read_list
      (fun rd ->
        let name = Codec.read_string rd in
        let e_fp = Codec.read_raw rd 16 in
        let e_exported = Codec.read_bool rd in
        let e_is_main = Codec.read_bool rd in
        let e_callees = Codec.read_list Codec.read_string rd in
        let e_body = Codec.read_string rd in
        (name, { e_fp; e_exported; e_is_main; e_callees; e_body }))
      rd
  in
  if not (Codec.at_end rd) then corrupt "trailing bytes after entries";
  entries

let degrade ~path ~n reason =
  Spike_obs.Metrics.incr c_degradations;
  Spike_obs.Metrics.add c_misses n;
  Printf.eprintf "spike-store: ignoring %s, falling back to cold run: %s\n%!"
    path reason;
  fun program ->
    { plan = Warm.cold program; hits = 0; misses = n; invalidated = 0;
      degraded = Some reason }

let read_file path =
  In_channel.with_open_bin path @@ fun ic ->
  (* Sized read: [input_all] grows-and-copies its way through 6 MB files. *)
  match In_channel.length ic with
  | n when n > 0L && n <= Int64.of_int Sys.max_string_length -> (
      let n = Int64.to_int n in
      let b = Bytes.create n in
      match In_channel.really_input ic b 0 n with
      | Some () when In_channel.input_char ic = None -> Bytes.unsafe_to_string b
      | _ -> corrupt "file size changed while reading"
      | exception End_of_file -> corrupt "file size changed while reading")
  | _ -> In_channel.input_all ic

let load ~dir ?(branch_nodes = true) ?(externals = fun _ -> None)
    ?(callee_saved_filter = true) program =
  Spike_obs.Trace.with_span "store.load" @@ fun () ->
  let path = Filename.concat dir file_name in
  let n = Program.routine_count program in
  if not (Sys.file_exists path) then begin
    Spike_obs.Metrics.add c_misses n;
    { plan = Warm.cold program; hits = 0; misses = n; invalidated = 0;
      degraded = None }
  end
  else
    let config = Fingerprint.config_key ~branch_nodes ~callee_saved_filter in
    match
      let data = read_file path in
      parse_file ~config data
    with
    | exception Codec.Corrupt reason -> degrade ~path ~n reason program
    | exception Sys_error reason -> degrade ~path ~n reason program
    | entries ->
        let by_name = Hashtbl.create (List.length entries) in
        List.iter (fun (name, e) -> Hashtbl.replace by_name name e) entries;
        let resolve name = Program.find_index program name in
        let plan = Warm.cold program in
        let claimed = Hashtbl.create n in
        let hits = ref 0 and misses = ref 0 and invalidated = ref 0 in
        Program.iter
          (fun r (routine : Routine.t) ->
            match Hashtbl.find_opt by_name routine.name with
            | None -> incr misses
            | Some entry ->
                if
                  String.equal entry.e_fp
                    (Fingerprint.routine ~externals program routine)
                then (
                  match read_body ~routine:r ~current:routine ~resolve entry.e_body with
                  | art ->
                      plan.Warm.arts.(r) <- Some art;
                      Hashtbl.replace claimed routine.name ();
                      incr hits
                  | exception Codec.Corrupt reason ->
                      Printf.eprintf
                        "spike-store: undecodable entry for %s (%s), \
                         rebuilding it\n\
                         %!"
                        routine.name reason;
                      incr invalidated)
                else begin
                  incr invalidated;
                  (* Stale fingerprint: decode anyway as a lift candidate
                     — the edit may have left the equation system intact
                     ({!Warm.solutions}).  Its cached callees re-seed
                     exits only if the lift fails, so it is claimed
                     here. *)
                  match
                    read_body ~routine:r ~current:routine ~resolve entry.e_body
                  with
                  | art ->
                      plan.Warm.donors.(r) <-
                        Some
                          {
                            Warm.d_art = art;
                            d_callees = entry.e_callees;
                            d_exported = entry.e_exported;
                            d_is_main = entry.e_is_main;
                          };
                      Hashtbl.replace claimed routine.name ()
                  | exception Codec.Corrupt _ -> ()
                end)
          program;
        (* An entry that is neither reused nor a lift candidate belonged
           to a routine that was edited or deleted: the routines it
           called may have lost a caller, so their exits must re-seed in
           phase 2. *)
        List.iter
          (fun (name, entry) ->
            if not (Hashtbl.mem claimed name) then
              List.iter
                (fun callee ->
                  match resolve callee with
                  | Some r -> plan.Warm.exit_seeds.(r) <- true
                  | None -> ())
                entry.e_callees)
          entries;
        Spike_obs.Metrics.add c_hits !hits;
        Spike_obs.Metrics.add c_misses !misses;
        Spike_obs.Metrics.add c_invalidated !invalidated;
        { plan; hits = !hits; misses = !misses; invalidated = !invalidated;
          degraded = None }

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o777 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir (a : Analysis.t) =
  let arts =
    match a.Analysis.warm_capture with
    | Some arts -> arts
    | None -> invalid_arg "Store.save: analysis was run without ~capture:true"
  in
  Spike_obs.Trace.with_span "store.save" @@ fun () ->
  let program = a.Analysis.program in
  let externals = a.Analysis.externals in
  let main_index =
    match Program.find_index program (Program.main program) with
    | Some i -> i
    | None -> assert false (* guaranteed by Program.make *)
  in
  let payload = Buffer.create (1 lsl 20) in
  Codec.write_int payload (Array.length arts);
  let body_buf = Buffer.create (1 lsl 16) in
  Array.iteri
    (fun r (art : Warm.routine_art) ->
      let routine = Program.get program r in
      Codec.write_string payload routine.Routine.name;
      Codec.write_raw payload (Fingerprint.routine ~externals program routine);
      (* The phase-2 exit seeds depend on these two flags but the local
         fragment does not carry them, so a lift must compare them. *)
      Codec.write_bool payload routine.Routine.exported;
      Codec.write_bool payload (r = main_index);
      Codec.write_list Codec.write_string payload
        (callee_names program art.a_local);
      Buffer.clear body_buf;
      write_body program body_buf art;
      Codec.write_int payload (Buffer.length body_buf);
      Buffer.add_buffer payload body_buf)
    arts;
  let payload = Buffer.contents payload in
  let header = Buffer.create 64 in
  Codec.write_raw header magic;
  Codec.write_int header Fingerprint.format_version;
  Codec.write_raw header
    (Fingerprint.config_key ~branch_nodes:a.Analysis.branch_nodes
       ~callee_saved_filter:a.Analysis.callee_saved_filter);
  Codec.write_raw header
    (int64_raw (Codec.checksum payload ~pos:0 ~len:(String.length payload)));
  Codec.write_int header (String.length payload);
  mkdir_p dir;
  let path = Filename.concat dir file_name in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" file_name (Unix.getpid ()))
  in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Buffer.contents header);
      Out_channel.output_string oc payload);
  Sys.rename tmp path

(* --- In-memory sessions ---------------------------------------------------

   The disk path pays a decode cost proportional to the whole artifact
   graph; a resident driver (editor daemon, watch mode) can skip it by
   retaining the previous run's captured artifacts and re-planning against
   the edited program directly.  Reuse is sound because a warm run never
   mutates retained structure: the stitch copies the immutable register
   sets out of the local fragments into fresh mutable PSG records. *)

type retained = {
  t_fp : string;
  t_callees : string list;
  t_art : Warm.routine_art;
  t_routine : int;  (* index in the session's program *)
}

type session = {
  s_config : string;
  s_program : Program.t;
  s_entries : (string, retained) Hashtbl.t;
}

let retain (a : Analysis.t) =
  let arts =
    match a.Analysis.warm_capture with
    | Some arts -> arts
    | None -> invalid_arg "Store.retain: analysis was run without ~capture:true"
  in
  Spike_obs.Trace.with_span "store.retain" @@ fun () ->
  let program = a.Analysis.program in
  let externals = a.Analysis.externals in
  let entries = Hashtbl.create (Array.length arts) in
  Array.iteri
    (fun r (art : Warm.routine_art) ->
      let routine = Program.get program r in
      Hashtbl.replace entries routine.Routine.name
        {
          t_fp = Fingerprint.routine ~externals program routine;
          t_callees = callee_names program art.a_local;
          t_art = art;
          t_routine = r;
        })
    arts;
  {
    s_config =
      Fingerprint.config_key ~branch_nodes:a.Analysis.branch_nodes
        ~callee_saved_filter:a.Analysis.callee_saved_filter;
    s_program = program;
    s_entries = entries;
  }

(* Retained fragments carry routine indices of the session's program;
   node kinds the routine's own index, call targets their callees'.  An
   edit that inserts or deletes a routine shifts both, so they are
   remapped by name — exactly what {!read_body} does for the disk path.
   The common case (indices unchanged) shares the retained arrays
   outright. *)
let rekind ~routine = function
  | Psg.Entry { label; _ } -> Psg.Entry { routine; label }
  | Psg.Exit { block; _ } -> Psg.Exit { routine; block }
  | Psg.Call { block; _ } -> Psg.Call { routine; block }
  | Psg.Return { call_block; block; _ } -> Psg.Return { routine; call_block; block }
  | Psg.Branch { block; _ } -> Psg.Branch { routine; block }
  | Psg.Unknown_exit { block; _ } -> Psg.Unknown_exit { routine; block }

let fixup_art ~old_program ~resolve ~r ~(current : Routine.t) (t : retained) :
    Warm.routine_art =
  let art = t.t_art in
  let remap = function
    | Psg.Target_external _ as tg -> tg
    | Psg.Target_routine old_r -> (
        let name = (Program.get old_program old_r).Routine.name in
        match resolve name with
        | Some nr -> Psg.Target_routine nr
        | None -> corrupt "call target %S not in program" name)
  in
  let target_unmoved = function
    | Psg.Target_external _ -> true
    | Psg.Target_routine old_r -> (
        match resolve (Program.get old_program old_r).Routine.name with
        | Some nr -> nr = old_r
        | None -> false)
  in
  let unmoved =
    t.t_routine = r
    && Array.for_all
         (fun (c : Psg_build.local_call) ->
           match c.lc_targets with
           | None -> true
           | Some targets -> List.for_all target_unmoved targets)
         art.a_local.l_calls
  in
  let a_cfg = { art.a_cfg with Cfg.routine = current } in
  if unmoved then { art with a_cfg }
  else
    let l = art.a_local in
    let a_local =
      {
        l with
        Psg_build.l_kinds = Array.map (rekind ~routine:r) l.l_kinds;
        l_calls =
          Array.map
            (fun (c : Psg_build.local_call) ->
              { c with lc_targets = Option.map (List.map remap) c.lc_targets })
            l.l_calls;
      }
    in
    { art with a_cfg; a_local }

let replan session ?(branch_nodes = true) ?(externals = fun _ -> None)
    ?(callee_saved_filter = true) program =
  Spike_obs.Trace.with_span "store.replan" @@ fun () ->
  let n = Program.routine_count program in
  let config = Fingerprint.config_key ~branch_nodes ~callee_saved_filter in
  if not (String.equal config session.s_config) then begin
    Spike_obs.Metrics.incr c_degradations;
    Spike_obs.Metrics.add c_misses n;
    Printf.eprintf
      "spike-store: retained session has a different analysis \
       configuration, falling back to cold run\n\
       %!";
    {
      plan = Warm.cold program;
      hits = 0;
      misses = n;
      invalidated = 0;
      degraded = Some "analysis configuration mismatch";
    }
  end
  else begin
    let resolve name = Program.find_index program name in
    let old_program = session.s_program in
    let old_main =
      match Program.find_index old_program (Program.main old_program) with
      | Some i -> i
      | None -> assert false (* guaranteed by Program.make *)
    in
    let plan = Warm.cold program in
    let claimed = Hashtbl.create n in
    let hits = ref 0 and misses = ref 0 and invalidated = ref 0 in
    Program.iter
      (fun r (routine : Routine.t) ->
        match Hashtbl.find_opt session.s_entries routine.name with
        | None -> incr misses
        | Some t -> (
            let stale =
              not
                (String.equal t.t_fp
                   (Fingerprint.routine ~externals program routine))
            in
            if stale then incr invalidated;
            (* A stale retained artifact still remaps into a lift
               candidate, mirroring the disk path. *)
            match fixup_art ~old_program ~resolve ~r ~current:routine t with
            | art when not stale ->
                plan.Warm.arts.(r) <- Some art;
                Hashtbl.replace claimed routine.name ();
                incr hits
            | art ->
                plan.Warm.donors.(r) <-
                  Some
                    {
                      Warm.d_art = art;
                      d_callees = t.t_callees;
                      d_exported =
                        (Program.get old_program t.t_routine).Routine.exported;
                      d_is_main = t.t_routine = old_main;
                    };
                Hashtbl.replace claimed routine.name ()
            | exception Codec.Corrupt _ -> if not stale then incr invalidated))
      program;
    Hashtbl.iter
      (fun name (t : retained) ->
        if not (Hashtbl.mem claimed name) then
          List.iter
            (fun callee ->
              match resolve callee with
              | Some r -> plan.Warm.exit_seeds.(r) <- true
              | None -> ())
            t.t_callees)
      session.s_entries;
    Spike_obs.Metrics.add c_hits !hits;
    Spike_obs.Metrics.add c_misses !misses;
    Spike_obs.Metrics.add c_invalidated !invalidated;
    { plan; hits = !hits; misses = !misses; invalidated = !invalidated;
      degraded = None }
  end
