open Spike_support

type writer = Buffer.t

type reader = { buf : string; mutable cur : int; stop : int }

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let reader ?(pos = 0) ?len buf =
  let stop = match len with None -> String.length buf | Some l -> pos + l in
  if pos < 0 || stop > String.length buf || pos > stop then
    corrupt "reader: bad window %d+%d" pos (stop - pos);
  { buf; cur = pos; stop }

let pos r = r.cur
let at_end r = r.cur >= r.stop

let need r n =
  if n < 0 || r.stop - r.cur < n then
    corrupt "truncated: need %d bytes at %d, have %d" n r.cur (r.stop - r.cur)

let read_byte r =
  need r 1;
  let b = Char.code (String.unsafe_get r.buf r.cur) in
  r.cur <- r.cur + 1;
  b

(* Zigzag LEB128: small magnitudes of either sign stay short. *)
let write_int w v =
  let u = (v lsl 1) lxor (v asr (Sys.int_size - 1)) in
  let rec go u =
    if u land lnot 0x7f = 0 then Buffer.add_char w (Char.chr u)
    else begin
      Buffer.add_char w (Char.chr (0x80 lor (u land 0x7f)));
      go (u lsr 7)
    end
  in
  go u

let read_int_slow r first =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint too long at %d" r.cur;
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let u = go 7 first in
  (u lsr 1) lxor (-(u land 1))

let read_int r =
  (* Fast path: most stored integers fit one byte. *)
  let cur = r.cur in
  if cur >= r.stop then corrupt "truncated: need 1 byte at %d, have 0" cur;
  let b = Char.code (String.unsafe_get r.buf cur) in
  if b < 0x80 then begin
    r.cur <- cur + 1;
    (b lsr 1) lxor (-(b land 1))
  end
  else begin
    r.cur <- cur + 1;
    read_int_slow r (b land 0x7f)
  end

let write_bool w b = Buffer.add_char w (if b then '\001' else '\000')

let read_bool r =
  match read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> corrupt "bad bool byte %d at %d" b (r.cur - 1)

let write_raw w s = Buffer.add_string w s

let read_raw r n =
  need r n;
  let s = String.sub r.buf r.cur n in
  r.cur <- r.cur + n;
  s

let write_string w s =
  write_int w (String.length s);
  Buffer.add_string w s

let read_string r =
  let n = read_int r in
  if n < 0 then corrupt "negative string length at %d" r.cur;
  read_raw r n

let add_u32 w v =
  Buffer.add_char w (Char.unsafe_chr (v land 0xff));
  Buffer.add_char w (Char.unsafe_chr ((v lsr 8) land 0xff));
  Buffer.add_char w (Char.unsafe_chr ((v lsr 16) land 0xff));
  Buffer.add_char w (Char.unsafe_chr ((v lsr 24) land 0xff))

let read_u32 r =
  need r 4;
  let b i = Char.code (String.unsafe_get r.buf (r.cur + i)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.cur <- r.cur + 4;
  v

let write_regset w s =
  add_u32 w (Regset.lo_bits s);
  add_u32 w (Regset.hi_bits s)

(* Decoded register sets are immutable and extremely repetitive (a few
   dozen distinct values cover most of a program), so a direct-mapped
   cache shares one record per recurring value.  Sharing avoids both the
   allocation and — because the cached record is already on the major
   heap — the write-barrier traffic of storing a fresh minor-heap record
   into a major-heap array, which otherwise dominates decoding.  Sound
   because {!Regset.t} is immutable; single-domain like the rest of the
   store. *)
let memo_bits = 12
let memo : Regset.t array = Array.make (1 lsl memo_bits) Regset.empty

let memo_regset ~lo ~hi =
  let slot = (lo lxor (hi * 0x9e3779b1)) land ((1 lsl memo_bits) - 1) in
  let c = Array.unsafe_get memo slot in
  if Regset.lo_bits c = lo && Regset.hi_bits c = hi then c
  else begin
    let s = Regset.of_bits ~lo ~hi in
    Array.unsafe_set memo slot s;
    s
  end

let read_regset r =
  let lo = read_u32 r in
  let hi = read_u32 r in
  memo_regset ~lo ~hi

let write_option f w = function
  | None -> write_bool w false
  | Some v ->
      write_bool w true;
      f w v

let read_option f r = if read_bool r then Some (f r) else None

let write_list f w l =
  write_int w (List.length l);
  List.iter (f w) l

let read_len r =
  let n = read_int r in
  (* Every element costs at least one byte, so a length beyond the bytes
     remaining is corrupt — reject before allocating. *)
  if n < 0 || n > r.stop - r.cur then corrupt "bad container length %d at %d" n r.cur;
  n

(* [List.init]/[Array.init] leave the evaluation order of [f]
   unspecified; a stateful reader needs strictly increasing reads. *)
let read_list f r =
  let n = read_len r in
  let rec go k = if k = 0 then [] else let v = f r in v :: go (k - 1) in
  go n

let write_array f w a =
  write_int w (Array.length a);
  Array.iter (f w) a

let read_array f r =
  let n = read_len r in
  if n = 0 then [||]
  else begin
    let a = Array.make n (f r) in
    for i = 1 to n - 1 do
      a.(i) <- f r
    done;
    a
  end

let unsafe_u32 buf pos =
  let b i = Char.code (String.unsafe_get buf (pos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let read_regset_at buf pos =
  memo_regset ~lo:(unsafe_u32 buf pos) ~hi:(unsafe_u32 buf (pos + 4))

let write_regset_array w a =
  write_int w (Array.length a);
  Array.iter (fun s -> write_regset w s) a

let read_regset_array r =
  let n = read_int r in
  if n < 0 || n > (r.stop - r.cur) / 8 then
    corrupt "bad regset array length %d at %d" n r.cur;
  let buf = r.buf and pos = r.cur in
  let a = Array.init n (fun i -> read_regset_at buf (pos + (i * 8))) in
  r.cur <- pos + (n * 8);
  a

(* Packed unsigned-32 arrays: the converged-solution payloads live as
   flat int arrays (each register set two consecutive words), so they
   round-trip without boxing anything. *)
let write_u32_array w a =
  write_int w (Array.length a);
  Array.iter (fun v -> add_u32 w v) a

let read_u32_array r =
  let n = read_int r in
  if n < 0 || n > (r.stop - r.cur) / 4 then
    corrupt "bad u32 array length %d at %d" n r.cur;
  let buf = r.buf and pos = r.cur in
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.unsafe_set a i (unsafe_u32 buf (pos + (i * 4)))
  done;
  r.cur <- pos + (n * 4);
  a

let write_sets3_array w a =
  write_int w (Array.length a);
  Array.iter
    (fun (x, y, z) ->
      write_regset w x;
      write_regset w y;
      write_regset w z)
    a

let read_sets3_array r =
  let n = read_int r in
  if n < 0 || n > (r.stop - r.cur) / 24 then
    corrupt "bad sets3 array length %d at %d" n r.cur;
  let buf = r.buf and pos = r.cur in
  let a =
    Array.init n (fun i ->
        let p = pos + (i * 24) in
        (read_regset_at buf p, read_regset_at buf (p + 8), read_regset_at buf (p + 16)))
  in
  r.cur <- pos + (n * 24);
  a

(* 64-bit FNV-1a, eight bytes per step; byte-at-a-time over the tail. *)
let checksum s ~pos ~len =
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h v) fnv_prime in
  let words = len / 8 in
  for k = 0 to words - 1 do
    mix (String.get_int64_le s (pos + (k * 8)))
  done;
  for i = pos + (words * 8) to pos + len - 1 do
    mix (Int64.of_int (Char.code (String.unsafe_get s i)))
  done;
  !h
