(** Bounds-checked binary encoding for the persistent summary store.

    The writer appends to a {!Buffer.t}; the reader walks a [string] with
    an explicit cursor and raises {!Corrupt} — never an out-of-bounds
    exception — on any malformed input: truncated data, negative or
    absurd lengths, unknown constructor tags.  {!Store} catches [Corrupt]
    wholesale and degrades to a cold run, so decoding code can be written
    straight-line.

    Integers use zigzag LEB128 (small magnitudes, either sign, are one
    byte); register sets are their two raw 32-bit halves; strings and
    containers are length-prefixed. *)

type writer = Buffer.t

type reader

exception Corrupt of string

val reader : ?pos:int -> ?len:int -> string -> reader

val pos : reader -> int

val at_end : reader -> bool

(** {2 Primitives} *)

val write_int : writer -> int -> unit
val read_int : reader -> int

val write_bool : writer -> bool -> unit
val read_bool : reader -> bool

val write_string : writer -> string -> unit
val read_string : reader -> string

val write_raw : writer -> string -> unit
(** No length prefix; for fixed-width fields like digests. *)

val read_raw : reader -> int -> string

val write_regset : writer -> Spike_support.Regset.t -> unit
val read_regset : reader -> Spike_support.Regset.t

(** {2 Containers} *)

val write_option : (writer -> 'a -> unit) -> writer -> 'a option -> unit
val read_option : (reader -> 'a) -> reader -> 'a option

val write_list : (writer -> 'a -> unit) -> writer -> 'a list -> unit
val read_list : (reader -> 'a) -> reader -> 'a list

val write_array : (writer -> 'a -> unit) -> writer -> 'a array -> unit

val read_array : (reader -> 'a) -> reader -> 'a array
(** Length-checked: refuses lengths that exceed the bytes remaining, so a
    corrupt length cannot trigger a huge allocation. *)

(** {2 Bulk register-set arrays}

    Register sets are the store's dominant payload (hundreds of thousands
    per program), so arrays of them get fixed-width raw encodings decoded
    by a tight loop with one bounds check — several times faster than
    going through [read_array read_regset]. *)

val write_regset_array : writer -> Spike_support.Regset.t array -> unit
val read_regset_array : reader -> Spike_support.Regset.t array

val write_u32_array : writer -> int array -> unit
(** Flat array of unsigned 32-bit values — the packed form the warm plan
    keeps converged solutions in.  Values must fit 32 bits. *)

val read_u32_array : reader -> int array

val write_sets3_array :
  writer ->
  (Spike_support.Regset.t * Spike_support.Regset.t * Spike_support.Regset.t) array ->
  unit

val read_sets3_array :
  reader ->
  (Spike_support.Regset.t * Spike_support.Regset.t * Spike_support.Regset.t) array

val checksum : string -> pos:int -> len:int -> int64
(** Fast 64-bit content hash (word-wide FNV-1a variant).  Not
    cryptographic — it guards against truncation and bit rot, while
    content identity is established by the MD5 fingerprints inside. *)
