open Spike_support
open Spike_isa
open Spike_ir

type t = { def : Regset.t array; ubd : Regset.t array }

let block_sets insns first last =
  let def = ref Regset.empty and ubd = ref Regset.empty in
  let upper =
    if last >= first && Insn.is_call insns.(last) then last - 1 else last
  in
  for i = first to upper do
    let insn = insns.(i) in
    ubd := Regset.union !ubd (Regset.diff (Insn.uses insn) !def);
    def := Regset.union !def (Insn.defs insn)
  done;
  (!def, !ubd)

let compute (g : Cfg.t) =
  let insns = g.Cfg.routine.Routine.insns in
  let n = Cfg.block_count g in
  let def = Array.make n Regset.empty and ubd = Array.make n Regset.empty in
  Array.iteri
    (fun i (b : Cfg.block) ->
      let d, u = block_sets insns b.Cfg.first b.Cfg.last in
      def.(i) <- d;
      ubd.(i) <- u)
    g.Cfg.blocks;
  { def; ubd }

let of_arrays ~def ~ubd =
  if Array.length def <> Array.length ubd then
    invalid_arg "Defuse.of_arrays: length mismatch";
  { def; ubd }

let def t b = t.def.(b)
let ubd t b = t.ubd.(b)
