(** Per-block DEF and UBD sets.

    DEF[B] is the set of registers defined in block [B]; UBD[B] the set of
    registers used in [B] before any definition in [B].  These are the
    inputs to the Figure-6 dataflow that labels PSG flow-summary edges, and
    to the baseline supergraph analysis.  Computing them is the paper's
    "Initialization" stage (Figure 13), kept separate from CFG
    construction so the two can be timed independently.

    A terminating call instruction is excluded from its block's sets: the
    call's own register effect (defining [ra]; an indirect call also reads
    the target register) is folded into the call-return edge so that it
    composes correctly with the callee's summary. *)

open Spike_support

type t = private {
  def : Regset.t array;  (** indexed by block id *)
  ubd : Regset.t array;
}

val compute : Cfg.t -> t

val of_arrays : def:Regset.t array -> ubd:Regset.t array -> t
(** Rehydrate previously computed sets (e.g. from a persistent store).
    Raises [Invalid_argument] if the array lengths differ; the caller is
    responsible for the sets actually matching the routine's blocks. *)

val def : t -> int -> Regset.t
val ubd : t -> int -> Regset.t
