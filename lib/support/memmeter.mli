(** Live-heap measurement for the memory-usage experiments (Table 2,
    Figure 15).

    The paper reports megabytes of memory needed by the dataflow analysis.
    We measure the growth of the live OCaml heap across a computation: a
    major collection before and after, and the difference in live words.
    This attributes exactly the retained analysis structures (CFGs, PSG,
    dataflow sets) to the measurement, ignoring transient garbage. *)

val live_bytes : unit -> int
(** Bytes of live heap after a forced full major collection. *)

val measure : (unit -> 'a) -> 'a * int
(** [measure f] is [(f (), bytes)] where [bytes] is the growth in live heap
    retained by [f]'s result (non-negative). *)

val sample_bytes : unit -> int
(** Bytes of major heap right now, from [Gc.quick_stat] — no collection,
    no heap walk, so it is cheap enough to sample from inside spans and
    stage boundaries for continuous heap gauges.  An upper bound of
    {!live_bytes} (it counts the heap footprint, garbage included). *)

val megabytes : int -> float
(** Bytes to MB, for reporting alongside the paper's numbers. *)
