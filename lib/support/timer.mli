(** Elapsed-time stage accumulation.

    The paper reports the fraction of total analysis time spent in each of
    five stages (CFG build, initialization, PSG build, phase 1, phase 2;
    Figure 13).  A {!t} accumulates seconds per named stage across repeated
    [record] calls so the analysis driver can attribute every stage of every
    routine to the right bucket. *)

type t

val create : unit -> t

val record : t -> string -> (unit -> 'a) -> 'a
(** [record t stage f] runs [f ()], adding its elapsed duration to
    [stage]'s accumulated total.  Elapsed time is the right attribution
    for stages that fan out over a {!Pool}: a parallel stage reports its
    elapsed time, not CPU time summed over domains. *)

val add : t -> string -> float -> unit
(** [add t stage secs] adds [secs] to [stage] directly. *)

val get : t -> string -> float
(** Accumulated seconds for a stage (0 if never recorded). *)

val total : t -> float
(** Sum over all stages. *)

val stages : t -> (string * float) list
(** Stages in first-recorded order with their accumulated seconds. *)

val reset : t -> unit

val now : unit -> float
(** Monotonic seconds ({!Spike_obs.Clock.now}, i.e. [CLOCK_MONOTONIC]) —
    the same source {!Spike_obs.Trace} spans use, so stage totals and
    trace spans are directly comparable, and deltas are safe under NTP
    wall-clock adjustment.  Only deltas are meaningful. *)
