(** A fixed-size pool of worker domains for embarrassingly parallel loops.

    The analysis front-end (CFG build, DEF/UBD computation, save/restore
    detection, per-routine PSG construction) is a sequence of independent
    per-routine computations, so it parallelizes with near-linear speedup on
    OCaml 5 multicore.  A pool spawns [jobs - 1] worker domains once and
    reuses them across every parallel operation, so the per-stage cost is a
    broadcast and a join, not domain creation.

    Work is dealt in contiguous index chunks through a shared atomic
    counter: results land at the same index as their input (ordering is
    preserved by construction), and a fast worker steals the chunks a slow
    one never claims.  The first exception raised by any worker (or by the
    calling domain) aborts the remaining chunks and is re-raised, with its
    backtrace, on the calling domain.

    With [jobs = 1] no domains are spawned and every operation degrades to
    a plain sequential loop, so a pool can be threaded through code
    unconditionally.

    The user-supplied functions run concurrently on several domains; they
    must not share unsynchronized mutable state.  All functions of this
    module except {!parallel_map_array} and {!parallel_init} themselves
    must be called from the domain that created the pool.

    When {!Spike_obs.Trace} is enabled, every executed chunk is recorded
    as a ["pool.chunk"] span on the executing domain's lane, and the
    ["pool.items"] / ["pool.chunks"] counters accumulate when
    {!Spike_obs.Metrics} is enabled.  Item totals are identical for every
    [jobs] value; chunk totals depend on the partition. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [[1, 16]] — the
    default parallelism for the analysis driver, CLI and bench harness. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs] is clamped to
    [[1, 64]]).  Call {!shutdown} (or use {!with_pool}) when done; a live
    pool pins its domains. *)

val jobs : t -> int
(** The clamped parallelism degree, including the calling domain. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent.  Outstanding
    operations must have completed. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] is [f (create ~jobs)] with a guaranteed
    {!shutdown}, whether [f] returns or raises. *)

val parallel_map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array pool f items] is [Array.map f items], with the
    calls to [f] distributed over the pool's domains.  [f] must be safe to
    call concurrently from several domains. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init pool n f] is [Array.init n f], distributed likewise. *)

val run_dag :
  t -> dependents:int array array -> dep_counts:int array -> (int -> unit) -> unit
(** [run_dag pool ~dependents ~dep_counts body] executes [body i] exactly
    once for every task [i] in [0 .. n - 1] (where [n] is the array
    length), never starting a task before all of its dependencies have
    completed.  [dep_counts.(i)] is the number of dependencies of [i];
    [dependents.(j)] lists the tasks whose counter drops when [j]
    completes.  Neither array is modified.

    Ready tasks are dispatched to whichever domain is idle, so independent
    tasks run concurrently; the dependency edges are also publication
    edges (each hand-off goes through the pool mutex), which makes it safe
    for a task to read state its dependencies wrote without further
    synchronization.  This is what schedules the per-SCC dataflow
    fixpoints: components of the call-graph condensation are tasks, the
    condensation edges the dependencies.

    The first exception raised by any task aborts the remaining ones and
    is re-raised on the calling domain.  [body] must be safe to call
    concurrently from several domains for independent tasks.
    @raise Invalid_argument when the graph has a cycle (some tasks can
    never start) or the arrays disagree in length. *)
