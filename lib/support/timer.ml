type t = {
  totals : (string, float ref) Hashtbl.t;
  order : string Vec.t;
}

let create () = { totals = Hashtbl.create 8; order = Vec.create () }
let now () = Spike_obs.Clock.now ()

let bucket t stage =
  match Hashtbl.find_opt t.totals stage with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add t.totals stage r;
      Vec.push t.order stage;
      r

let add t stage secs =
  let r = bucket t stage in
  r := !r +. secs

let record t stage f =
  let t0 = now () in
  let result = f () in
  add t stage (now () -. t0);
  result

let get t stage = match Hashtbl.find_opt t.totals stage with Some r -> !r | None -> 0.0
let total t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.totals 0.0
let stages t = Vec.to_list (Vec.map (fun s -> (s, get t s)) t.order)

let reset t =
  Hashtbl.reset t.totals;
  Vec.clear t.order
