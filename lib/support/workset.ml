type t = {
  ring : int array;
  queued : Bytes.t;
  mutable head : int;  (* next pop position *)
  mutable tail : int;  (* next push position *)
  mutable count : int;
}

let create n =
  let capacity = max n 1 in
  {
    ring = Array.make capacity 0;
    queued = Bytes.make capacity '\000';
    head = 0;
    tail = 0;
    count = 0;
  }

let is_empty t = t.count = 0
let length t = t.count
let capacity t = Array.length t.ring

let clear t =
  (* O(queued), not O(capacity): only the ids still on the ring have their
     membership bit set. *)
  while t.count > 0 do
    let id = t.ring.(t.head) in
    t.head <- (if t.head + 1 = Array.length t.ring then 0 else t.head + 1);
    t.count <- t.count - 1;
    Bytes.unsafe_set t.queued id '\000'
  done;
  t.head <- 0;
  t.tail <- 0

let push t id =
  (* [unsafe_get] below elides the per-push bounds check the fixpoints pay
     millions of times; this single range test keeps an out-of-range id an
     error instead of a silent out-of-bounds read. *)
  if id < 0 || id >= Bytes.length t.queued then
    invalid_arg
      (Printf.sprintf "Workset.push: id %d out of range [0, %d)" id
         (Bytes.length t.queued));
  if Bytes.unsafe_get t.queued id = '\000' then begin
    Bytes.unsafe_set t.queued id '\001';
    t.ring.(t.tail) <- id;
    t.tail <- (if t.tail + 1 = Array.length t.ring then 0 else t.tail + 1);
    t.count <- t.count + 1
  end

let pop t =
  if t.count = 0 then invalid_arg "Workset.pop: empty";
  let id = t.ring.(t.head) in
  t.head <- (if t.head + 1 = Array.length t.ring then 0 else t.head + 1);
  t.count <- t.count - 1;
  Bytes.unsafe_set t.queued id '\000';
  id
