type t = {
  count : int;
  comp_of : int array;
  members : int array array;
  succs : int array array;
  preds : int array array;
}

(* Tarjan, with the recursion turned into an explicit frame stack.  A
   frame is a vertex plus the index of the next successor to examine;
   "returning" from a child is the moment the child's frame is popped,
   which is when the parent folds the child's lowlink into its own. *)
let compute ~succs:graph =
  let n = Array.length graph in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Bytes.make (max n 1) '\000' in
  let comp_of = Array.make n (-1) in
  let stack = Array.make (max n 1) 0 in
  let stack_top = ref 0 in
  (* Explicit DFS stack, parallel arrays. *)
  let frame_v = Array.make (max n 1) 0 in
  let frame_child = Array.make (max n 1) 0 in
  let frame_top = ref 0 in
  let next_index = ref 0 in
  (* DFS finish times order the members of a component: ascending finish
     is exact postorder, successors-before-predecessors on the
     component's acyclic part. *)
  let finish = Array.make n 0 in
  let next_finish = ref 0 in
  let members_rev = ref [] in
  let count = ref 0 in
  let discover v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack.(!stack_top) <- v;
    incr stack_top;
    Bytes.unsafe_set on_stack v '\001';
    frame_v.(!frame_top) <- v;
    frame_child.(!frame_top) <- 0;
    incr frame_top
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      discover root;
      while !frame_top > 0 do
        let f = !frame_top - 1 in
        let v = frame_v.(f) in
        let ci = frame_child.(f) in
        let out = graph.(v) in
        if ci < Array.length out then begin
          frame_child.(f) <- ci + 1;
          let w = out.(ci) in
          if index.(w) < 0 then discover w
          else if Bytes.unsafe_get on_stack w = '\001' then
            lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          decr frame_top;
          finish.(v) <- !next_finish;
          incr next_finish;
          if !frame_top > 0 then begin
            let parent = frame_v.(!frame_top - 1) in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end;
          if lowlink.(v) = index.(v) then begin
            (* [v] roots a component: everything above it on the vertex
               stack belongs to it.  Every member has finished by now ([v]
               just did, last), so sorting by finish time is well defined;
               the members come out in postorder, which consumers
               scheduling dependency propagation inside the component
               want. *)
            let base = ref !stack_top in
            let continue = ref true in
            while !continue do
              decr base;
              let w = stack.(!base) in
              Bytes.unsafe_set on_stack w '\000';
              comp_of.(w) <- !count;
              if w = v then continue := false
            done;
            let comp = Array.sub stack !base (!stack_top - !base) in
            Array.sort (fun a b -> Int.compare finish.(a) finish.(b)) comp;
            stack_top := !base;
            members_rev := comp :: !members_rev;
            incr count
          end
        end
      done
    end
  done;
  let count = !count in
  let members = Array.make (max count 1) [||] in
  List.iteri (fun i comp -> members.(count - 1 - i) <- comp) !members_rev;
  let members = Array.sub members 0 count in
  (* Condensation adjacency: sorted, deduplicated, self loops dropped. *)
  let succ_acc = Array.make (max count 1) [] in
  let pred_acc = Array.make (max count 1) [] in
  for u = 0 to n - 1 do
    let cu = comp_of.(u) in
    Array.iter
      (fun v ->
        let cv = comp_of.(v) in
        if cv <> cu then begin
          succ_acc.(cu) <- cv :: succ_acc.(cu);
          pred_acc.(cv) <- cu :: pred_acc.(cv)
        end)
      graph.(u)
  done;
  let dedup acc =
    Array.init count (fun c -> Array.of_list (List.sort_uniq Int.compare acc.(c)))
  in
  { count; comp_of; members; succs = dedup succ_acc; preds = dedup pred_acc }

let is_trivial t = Array.for_all (fun m -> Array.length m <= 1) t.members

let largest t =
  Array.fold_left (fun best m -> max best (Array.length m)) 0 t.members

let topological t =
  let out = ref [] in
  for c = t.count - 1 downto 0 do
    for k = Array.length t.members.(c) - 1 downto 0 do
      out := t.members.(c).(k) :: !out
    done
  done;
  !out
