(** Strongly-connected components and the condensation DAG.

    The interprocedural phases schedule their fixpoints over the call
    graph's SCC condensation: each component is a maximal set of mutually
    recursive routines, and the condensation — one vertex per component,
    an edge when any member calls into another component — is acyclic, so
    components can be processed in topological order with iteration
    confined to the inside of each component.

    The computation is Tarjan's algorithm with an {e explicit} DFS stack:
    call chains in real programs reach depths that would exhaust the
    runtime stack of a recursive traversal (and do, on runtimes without
    growable native stacks), so no function here recurses.

    Everything is deterministic: component numbering, member order and
    condensation adjacency depend only on the input graph, never on
    timing or hashing. *)

type t = {
  count : int;  (** number of components *)
  comp_of : int array;
      (** vertex [->] component index.  Numbering is reverse topological:
          every edge [u -> v] crossing components has
          [comp_of.(v) < comp_of.(u)], so components [0, 1, ...] list
          successors (callees) before their predecessors (callers). *)
  members : int array array;
      (** component index [->] member vertices, in DFS postorder
          (ascending finish time, the component's root last): inside a
          component, successors-before-predecessors wherever its internal
          structure is acyclic — the seed order dependency-propagating
          consumers want. *)
  succs : int array array;
      (** condensation: component [->] distinct successor components,
          sorted ascending.  Every entry is smaller than its source. *)
  preds : int array array;
      (** inverse of [succs], sorted ascending *)
}

val compute : succs:int array array -> t
(** [compute ~succs] decomposes the directed graph whose vertex [v] has
    successor list [succs.(v)] ([0 .. n - 1] where [n] is the array
    length).  Self edges and duplicate edges are tolerated; both are
    dropped from the condensation.  O(V + E) plus the sort of the
    condensation adjacency. *)

val is_trivial : t -> bool
(** No component has more than one member — the graph is acyclic. *)

val largest : t -> int
(** Size of the largest component; 0 when the graph is empty. *)

val topological : t -> int list
(** The vertices, component by component in [0 .. count - 1] order —
    successors before predecessors (for a call graph: callees before
    callers), with [members] order inside a component, so the whole list
    approximates a global DFS postorder. *)
