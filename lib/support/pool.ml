(* Worker domains block on [work_ready] until the generation counter moves,
   execute the current job's chunk-stealing loop, check in under the mutex,
   and go back to waiting.  The submitting domain participates in the loop
   itself, then waits for every worker to check in — so a job's results are
   published to the submitter by the final mutex handover, and no worker
   can still be touching a job when the next one is posted. *)

type job = {
  execute : unit -> unit;  (* chunk-stealing loop; must not raise *)
  mutable pending : int;  (* workers that have not checked in yet *)
}

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable current : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (min 16 (Domain.recommended_domain_count ()))
let jobs t = t.n_jobs

(* Observability: every claimed chunk becomes one span on the lane of the
   domain that executed it — that is what makes the parallel front-end's
   per-domain utilization visible in a Chrome trace — and the item/chunk
   counters let jobs=1 and jobs=N runs be compared (item totals are
   partition-invariant; chunk totals are not). *)
let span_chunk = "pool.chunk"
let span_task = "pool.task"
let c_items = Spike_obs.Metrics.counter "pool.items"
let c_chunks = Spike_obs.Metrics.counter "pool.chunks"
let c_tasks = Spike_obs.Metrics.counter "pool.tasks"

let rec worker_loop t last_generation =
  Mutex.lock t.mutex;
  while (not t.stop) && t.generation = last_generation do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let generation = t.generation in
    let job = match t.current with Some j -> j | None -> assert false in
    Mutex.unlock t.mutex;
    job.execute ();
    Mutex.lock t.mutex;
    job.pending <- job.pending - 1;
    if job.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.mutex;
    worker_loop t generation
  end

let create ~jobs =
  let n_jobs = max 1 (min jobs 64) in
  let t =
    {
      n_jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      current = None;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Post [execute] as the current job, run it on the calling domain too, and
   wait until every worker has checked in.  The final mutex handover
   publishes all of the job's writes to the submitter. *)
let submit t execute =
  let job = { execute; pending = t.n_jobs - 1 } in
  Mutex.lock t.mutex;
  t.current <- Some job;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  execute ();
  Mutex.lock t.mutex;
  while job.pending > 0 do
    Condition.wait t.work_done t.mutex
  done;
  t.current <- None;
  Mutex.unlock t.mutex

(* Run [body i] for every [i] in [0 .. n - 1], distributed over the pool. *)
let run t n body =
  if n = 0 then ()
  else if t.n_jobs = 1 || n = 1 then begin
    Spike_obs.Metrics.add c_items n;
    Spike_obs.Metrics.incr c_chunks;
    Spike_obs.Trace.with_span span_chunk (fun () ->
        for i = 0 to n - 1 do
          body i
        done)
  end
  else begin
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    (* Small chunks relative to n/jobs so an unlucky run of expensive items
       (one huge routine) rebalances onto idle workers. *)
    let chunk = max 1 (n / (t.n_jobs * 8)) in
    let execute () =
      let continue = ref true in
      while !continue do
        if Atomic.get error <> None then continue := false
        else begin
          let start = Atomic.fetch_and_add next chunk in
          if start >= n then continue := false
          else
            let stop = min n (start + chunk) in
            Spike_obs.Metrics.add c_items (stop - start);
            Spike_obs.Metrics.incr c_chunks;
            try
              Spike_obs.Trace.with_span span_chunk (fun () ->
                  for i = start to stop - 1 do
                    body i
                  done)
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set error None (Some (e, bt)))
        end
      done
    in
    submit t execute;
    match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let run_dag t ~dependents ~dep_counts body =
  let n = Array.length dep_counts in
  if n <> Array.length dependents then
    invalid_arg "Pool.run_dag: dependents and dep_counts lengths differ";
  if n > 0 then begin
    let pending = Array.copy dep_counts in
    let exec i =
      Spike_obs.Metrics.incr c_tasks;
      Spike_obs.Trace.with_span span_task (fun () -> body i)
    in
    if t.n_jobs = 1 then begin
      (* Sequential: an explicit ready stack, no locks.  A DAG always has
         a ready task while any remain, so the stack only runs dry at the
         end; a cyclic input is reported rather than looping forever. *)
      let ready = Array.make n 0 in
      let top = ref 0 in
      let push i =
        ready.(!top) <- i;
        incr top
      in
      Array.iteri (fun i d -> if d = 0 then push i) pending;
      let done_ = ref 0 in
      while !top > 0 do
        decr top;
        let i = ready.(!top) in
        exec i;
        incr done_;
        Array.iter
          (fun j ->
            pending.(j) <- pending.(j) - 1;
            if pending.(j) = 0 then push j)
          dependents.(i)
      done;
      if !done_ <> n then invalid_arg "Pool.run_dag: dependency graph has a cycle"
    end
    else begin
      (* Parallel: a mutex-guarded ready stack drained by every domain.
         Completing a task decrements its dependents under the mutex and
         broadcasts, which both wakes idle drainers and publishes the
         task's writes to whichever domain picks a dependent up. *)
      let ready = Array.make n 0 in
      let top = ref 0 in
      let remaining = ref n in
      let executing = ref 0 in
      let cycle = ref false in
      let error = Atomic.make None in
      let cond = Condition.create () in
      Array.iteri
        (fun i d ->
          if d = 0 then begin
            ready.(!top) <- i;
            incr top
          end)
        pending;
      let drain () =
        Mutex.lock t.mutex;
        let continue = ref true in
        while !continue do
          if !remaining = 0 || !cycle || Atomic.get error <> None then
            continue := false
          else if !top = 0 then
            if !executing = 0 then begin
              (* Nothing ready, nothing running, tasks remain: every one of
                 them waits on another — the input was not a DAG. *)
              cycle := true;
              Condition.broadcast cond
            end
            else Condition.wait cond t.mutex
          else begin
            decr top;
            let i = ready.(!top) in
            incr executing;
            Mutex.unlock t.mutex;
            (try exec i
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set error None (Some (e, bt))));
            Mutex.lock t.mutex;
            decr executing;
            decr remaining;
            if Atomic.get error = None then
              Array.iter
                (fun j ->
                  pending.(j) <- pending.(j) - 1;
                  if pending.(j) = 0 then begin
                    ready.(!top) <- j;
                    incr top
                  end)
                dependents.(i);
            Condition.broadcast cond
          end
        done;
        Mutex.unlock t.mutex
      in
      submit t drain;
      (match Atomic.get error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      if !cycle then invalid_arg "Pool.run_dag: dependency graph has a cycle"
    end
  end

let parallel_init t n f =
  if n = 0 then [||]
  else if t.n_jobs = 1 || n = 1 then begin
    (* Mirrors [run]'s sequential path so item totals and chunk spans are
       recorded whatever the degree, without boxing the results. *)
    Spike_obs.Metrics.add c_items n;
    Spike_obs.Metrics.incr c_chunks;
    Spike_obs.Trace.with_span span_chunk (fun () -> Array.init n f)
  end
  else begin
    let results = Array.make n None in
    run t n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map_array t f items =
  parallel_init t (Array.length items) (fun i -> f items.(i))
