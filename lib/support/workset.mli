(** Allocation-free FIFO worklists over dense integer ids.

    The dataflow fixpoints push and pop millions of node ids; a [Queue]
    allocates a cell per push.  A workset is a fixed ring buffer plus a
    membership bitmap: an id on the list is never enqueued twice, so a
    capacity of the id-space size can never overflow. *)

type t

val create : int -> t
(** [create n] handles ids in [0 .. n - 1]. *)

val push : t -> int -> unit
(** Enqueue an id; no-op if it is already queued.
    @raise Invalid_argument when the id is outside [0 .. n - 1]. *)

val pop : t -> int
(** Dequeue the oldest id and clear its membership.
    @raise Invalid_argument when empty. *)

val is_empty : t -> bool
val length : t -> int

val capacity : t -> int
(** The id-space size given to {!create}. *)

val clear : t -> unit
(** Empty the set, in time proportional to its current length.  The set is
    afterwards indistinguishable from a fresh one — the SCC schedulers
    reuse one workset per worker across many per-component fixpoints. *)
