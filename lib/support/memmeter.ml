let word_bytes = Sys.word_size / 8

let live_bytes () =
  Gc.full_major ();
  let s = Gc.stat () in
  s.Gc.live_words * word_bytes

let measure f =
  let before = live_bytes () in
  let result = f () in
  let after = live_bytes () in
  (result, max 0 (after - before))

let sample_bytes () =
  let s = Gc.quick_stat () in
  s.Gc.heap_words * word_bytes

let megabytes bytes = float_of_int bytes /. (1024.0 *. 1024.0)
